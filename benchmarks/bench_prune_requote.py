"""Re-quote pruning benchmark: bound passes vs exact quotes.

Three sections, one JSON report:

* **ladder** — sparse-touch streams over markets of ~10³ → 10⁴
  candidate loops.  For each rung the pruned service (``prune_top_k``)
  is compared against the unpruned oracle: the top-K book must be
  bit-identical, the pruned + exact counts must add up to exactly the
  loops dirtied, and the exact-quote reduction must clear
  ``MIN_QUOTE_REDUCTION`` (the headline claim: pruning makes re-quoting
  sublinear in the dirty set).
* **weighted** — the same comparison on a mixed CPMM/weighted market,
  where exact quotes run the iterative chain-rule solver and the bound
  pass is where wall-clock is actually won.  Wall-clock speedup is
  asserted in full mode only (CI smoke machines are too noisy to gate
  timings).
* **replay** — :class:`~repro.replay.ReplayDriver` with ``prune=True``
  against the unpruned driver: per-block reports bit-identical
  (``same_numbers``), with a conservative evaluation-reduction gate
  (replay prunes at threshold 0 — only provably-unprofitable loops).

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_prune_requote.py --smoke --json out.json

or the full ladder::

    PYTHONPATH=src python benchmarks/bench_prune_requote.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from repro.amm import WeightedPool
from repro.amm.registry import PoolRegistry
from repro.data.snapshot import MarketSnapshot
from repro.replay import ReplayDriver, generate_event_stream
from repro.service import OpportunityService, log_source, make_workload

#: ladder cases: (n_tokens, n_pools, n_blocks) — token counts are kept
#: low relative to pools so the loop universe is dense (10³–10⁴ loops)
FULL_LADDER = [(20, 150, 30), (30, 300, 15), (25, 400, 10)]
SMOKE_LADDER = [(20, 150, 12), (30, 300, 8)]

#: weighted wall-clock case: (n_tokens, n_pools, n_blocks)
FULL_WEIGHTED = (25, 250, 25)
SMOKE_WEIGHTED = (20, 150, 10)

#: replay case: (n_tokens, n_pools, n_blocks)
FULL_REPLAY = (15, 40, 40)
SMOKE_REPLAY = (15, 40, 15)

EVENTS_PER_BLOCK = 6
POOLS_PER_BLOCK = 2  # sparse touch: the regime real blocks live in
PRUNE_K = 10
WEIGHTED_FRACTION = 0.4

#: the headline gate: unpruned exact quotes (= loops dirtied) must be
#: at least this multiple of the pruned run's exact quotes
MIN_QUOTE_REDUCTION = 5.0
#: replay prunes only provably-unprofitable loops, so its gate is modest
MIN_REPLAY_REDUCTION = 1.3


def with_weighted_pools(market, fraction, seed):
    """Replace a seeded fraction of CPMM pools with 60/40 weighted
    pools (same tokens, reserves, fee, and pool id) so exact quotes go
    through the iterative solver."""
    import numpy as np

    rng = np.random.default_rng(seed)
    pools = sorted(market.registry, key=lambda p: p.pool_id)
    convert = set(
        rng.choice(len(pools), size=int(len(pools) * fraction), replace=False)
    )
    registry = PoolRegistry()
    for index, pool in enumerate(pools):
        if index in convert:
            registry.add(
                WeightedPool(
                    pool.token0, pool.token1,
                    pool.reserve0, pool.reserve1,
                    weight0=0.6, weight1=0.4,
                    fee=pool.fee, pool_id=pool.pool_id,
                )
            )
        else:
            registry.add(pool.copy())
    return MarketSnapshot(
        registry=registry, prices=market.prices, label=market.label
    )


def run_service(market, log, *, prune_top_k):
    service = OpportunityService(
        market, n_shards=1, backend="inline", prune_top_k=prune_top_k
    )
    t0 = time.perf_counter()
    report = asyncio.run(service.run(log_source(log)))
    wall_s = time.perf_counter() - t0
    return {
        "wall_s": wall_s,
        "evaluations": report.evaluations,
        "loops_pruned": report.loops_pruned,
        "total_loops": service.total_loops,
        "top": [(o.profit_usd, o.loop_id) for o in report.book.top(PRUNE_K)],
    }


def best_of(n, fn):
    best = None
    for _ in range(max(1, n)):
        result = fn()
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def compare_runs(market, log, repeats, label):
    """Pruned vs unpruned service on the same workload; returns the
    comparison row after the parity and accounting asserts."""
    pruned = best_of(repeats, lambda: run_service(market, log, prune_top_k=PRUNE_K))
    exact = best_of(repeats, lambda: run_service(market, log, prune_top_k=None))
    assert pruned["top"] == exact["top"], (
        f"{label}: pruned top-{PRUNE_K} book diverged from the unpruned oracle"
    )
    assert pruned["evaluations"] + pruned["loops_pruned"] == exact["evaluations"], (
        f"{label}: exact + pruned ({pruned['evaluations']} + "
        f"{pruned['loops_pruned']}) != loops dirtied ({exact['evaluations']})"
    )
    reduction = exact["evaluations"] / max(1, pruned["evaluations"])
    speedup = exact["wall_s"] / pruned["wall_s"] if pruned["wall_s"] > 0 else 0.0
    return {
        "total_loops": pruned["total_loops"],
        "loops_dirtied": exact["evaluations"],
        "exact_quotes": pruned["evaluations"],
        "loops_pruned": pruned["loops_pruned"],
        "quote_reduction": reduction,
        "wall_s_pruned": pruned["wall_s"],
        "wall_s_unpruned": exact["wall_s"],
        "wall_speedup": speedup,
    }


def run_ladder(cases, seed, repeats):
    results = []
    for n_tokens, n_pools, n_blocks in cases:
        market, log = make_workload(
            n_tokens, n_pools, n_blocks, EVENTS_PER_BLOCK, seed,
            pools_per_block=POOLS_PER_BLOCK, price_ticks_per_block=0,
        )
        row = compare_runs(market, log, repeats, f"ladder {n_pools} pools")
        row.update(n_tokens=n_tokens, n_pools=n_pools, n_blocks=n_blocks)
        results.append(row)
        print(
            f"{n_pools:>5} pools / {row['total_loops']:>6} loops: "
            f"{row['loops_dirtied']:>6} dirtied -> "
            f"{row['exact_quotes']:>5} exact quotes "
            f"({row['quote_reduction']:.1f}x fewer), "
            f"wall {row['wall_s_unpruned']:.3f}s -> {row['wall_s_pruned']:.3f}s"
        )
        assert row["quote_reduction"] >= MIN_QUOTE_REDUCTION, (
            f"ladder at {n_pools} pools: quote reduction "
            f"{row['quote_reduction']:.2f}x below the "
            f"{MIN_QUOTE_REDUCTION:.0f}x gate"
        )
    return results


def run_weighted(case, seed, repeats, gate_wall):
    n_tokens, n_pools, n_blocks = case
    market, _ = make_workload(
        n_tokens, n_pools, n_blocks, EVENTS_PER_BLOCK, seed,
        pools_per_block=POOLS_PER_BLOCK, price_ticks_per_block=0,
    )
    market = with_weighted_pools(market, WEIGHTED_FRACTION, seed)
    log = generate_event_stream(
        market, n_blocks=n_blocks, events_per_block=EVENTS_PER_BLOCK,
        seed=seed, pools_per_block=POOLS_PER_BLOCK, price_ticks_per_block=0,
    )
    row = compare_runs(market, log, repeats, "weighted")
    row.update(n_tokens=n_tokens, n_pools=n_pools, n_blocks=n_blocks)
    print(
        f"weighted ({WEIGHTED_FRACTION:.0%} of {n_pools} pools, "
        f"{row['total_loops']} loops): {row['loops_dirtied']} dirtied -> "
        f"{row['exact_quotes']} exact quotes "
        f"({row['quote_reduction']:.1f}x fewer), "
        f"wall {row['wall_s_unpruned']:.3f}s -> {row['wall_s_pruned']:.3f}s "
        f"({row['wall_speedup']:.2f}x)"
    )
    if gate_wall:
        assert row["wall_speedup"] > 1.0, (
            f"weighted: pruning did not win wall-clock "
            f"({row['wall_speedup']:.2f}x)"
        )
    return row


def run_replay(case, seed, repeats):
    n_tokens, n_pools, n_blocks = case
    market, log = make_workload(
        n_tokens, n_pools, n_blocks, EVENTS_PER_BLOCK, seed,
        pools_per_block=POOLS_PER_BLOCK, price_ticks_per_block=1,
    )

    def run(prune):
        driver = ReplayDriver(market, prune=prune)
        t0 = time.perf_counter()
        result = driver.replay(log)
        return result, time.perf_counter() - t0

    best = None
    for _ in range(max(1, repeats)):
        pruned_result, t_pruned = run(True)
        exact_result, t_exact = run(False)
        if best is None or t_pruned < best[1]:
            best = (pruned_result, t_pruned, exact_result, t_exact)
    pruned_result, t_pruned, exact_result, t_exact = best

    assert all(
        a.same_numbers(b)
        for a, b in zip(exact_result.reports, pruned_result.reports)
    ), "replay: pruned reports diverged from the unpruned driver"
    reduction = exact_result.evaluations() / max(1, pruned_result.evaluations())
    print(
        f"replay ({n_pools} pools, {n_blocks} blocks): "
        f"{exact_result.evaluations()} -> {pruned_result.evaluations()} "
        f"exact quotes ({reduction:.1f}x fewer), "
        f"wall {t_exact:.3f}s -> {t_pruned:.3f}s"
    )
    assert reduction >= MIN_REPLAY_REDUCTION, (
        f"replay: evaluation reduction {reduction:.2f}x below the "
        f"{MIN_REPLAY_REDUCTION}x gate"
    )
    return {
        "n_tokens": n_tokens,
        "n_pools": n_pools,
        "n_blocks": n_blocks,
        "evaluations_unpruned": exact_result.evaluations(),
        "evaluations_pruned": pruned_result.evaluations(),
        "reduction": reduction,
        "wall_s_pruned": t_pruned,
        "wall_s_unpruned": t_exact,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("--json", help="write results to a JSON file")
    parser.add_argument("--seed", type=int, default=20240601)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timings keep the best of N runs")
    args = parser.parse_args(argv)

    ladder = run_ladder(
        SMOKE_LADDER if args.smoke else FULL_LADDER, args.seed, args.repeats
    )
    weighted = run_weighted(
        SMOKE_WEIGHTED if args.smoke else FULL_WEIGHTED,
        args.seed, args.repeats, gate_wall=not args.smoke,
    )
    replay = run_replay(
        SMOKE_REPLAY if args.smoke else FULL_REPLAY, args.seed, args.repeats
    )

    if args.json:
        payload = {
            "benchmark": "prune_requote",
            "smoke": args.smoke,
            "prune_top_k": PRUNE_K,
            "min_quote_reduction": MIN_QUOTE_REDUCTION,
            "ladder": ladder,
            "weighted": weighted,
            "replay": replay,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    worst = min(row["quote_reduction"] for row in ladder)
    print(
        f"OK: quote reduction >= {worst:.1f}x across the ladder, "
        f"books identical everywhere"
    )
    return 0


# pytest entry point: the benchmark doubles as a slow regression test
def test_prune_requote_smoke():
    assert main(["--smoke", "--repeats", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
