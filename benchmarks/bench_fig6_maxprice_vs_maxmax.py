"""Bench + check Fig. 6: MaxPrice vs MaxMax scatter.

Expected shape: no point above the line, and at least some strictly
below — the paper's evidence that MaxPrice is unreliable.
"""

from __future__ import annotations

from repro.analysis import fig6_maxprice_vs_maxmax


def test_fig6_scatter(benchmark, market):
    result = benchmark.pedantic(
        fig6_maxprice_vs_maxmax, args=(market,), rounds=1, iterations=1
    )
    assert result.stats.n >= 100  # one point per profitable loop
    assert result.stats.frac_below_or_on == 1.0
    assert result.stats.frac_strictly_below > 0.0
    assert result.stats.max_rel_gap > 0.001
