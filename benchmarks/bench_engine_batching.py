"""Bench + check the batched evaluation engine against the seed path.

Three timings on the acceptance workload — a Fig. 2-style full-grid
sweep (101 price points × 4 strategies: three traditional anchors +
MaxMax) over the §V loop:

* ``scalar``   — the seed code path: one ``strategy.evaluate`` per
  (strategy, point), no cache, no vectorization;
* ``batched``  — ``EvaluationEngine`` with the vectorized numpy grid
  kernels and the shared rotation cache (the default everywhere now);
* ``parallel`` — the same grid forced down the scalar path but fanned
  over a ``ProcessPoolExecutor`` (chunked, deterministic order).

Checks: batched matches scalar within 1e-9 relative tolerance at every
point (in practice they are bit-identical) and is >= 3x faster — the
PR's acceptance criterion; the parallel executor agrees exactly with
the serial order.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.example import TOKEN_X, section5_loop, section5_prices
from repro.engine import EvaluationEngine, ParallelExecutor
from repro.strategies import MaxMaxStrategy, TraditionalStrategy

GRID = np.linspace(0.0, 20.0, 101)
GRID[0] = 1e-9


def _strategies():
    loop = section5_loop()
    strategies = {
        f"start_{token.symbol}": TraditionalStrategy(start_token=token)
        for token in loop.tokens
    }
    strategies["maxmax"] = MaxMaxStrategy()
    return loop, strategies


def _scalar_sweep(loop, strategies, base_prices):
    """The seed path: a fresh evaluate per (strategy, grid point)."""
    out = {}
    for label, strategy in strategies.items():
        series = []
        for price in GRID:
            prices = base_prices.with_price(TOKEN_X, float(price))
            series.append(strategy.evaluate(loop, prices))
        out[label] = series
    return out


def _engine_sweep(loop, strategies, base_prices):
    engine = EvaluationEngine()
    return engine.sweep_results(strategies, loop, base_prices, TOKEN_X, GRID)


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_engine_batching_speedup(benchmark):
    loop, strategies = _strategies()
    base_prices = section5_prices()

    scalar_s, scalar = _best_of(lambda: _scalar_sweep(loop, strategies, base_prices))
    batched = benchmark.pedantic(
        _engine_sweep,
        args=(loop, strategies, base_prices),
        rounds=3,
        iterations=1,
    )
    batched_s, _ = _best_of(lambda: _engine_sweep(loop, strategies, base_prices))

    # parity: every point of every series agrees to 1e-9 relative
    for label in strategies:
        for ref, got in zip(scalar[label], batched[label]):
            assert got.monetized_profit == (
                ref.monetized_profit
            ) or abs(got.monetized_profit - ref.monetized_profit) <= 1e-9 * max(
                1.0, abs(ref.monetized_profit)
            )
            assert got.start_token == ref.start_token
            assert got.amount_in == ref.amount_in

    speedup = scalar_s / batched_s
    print(
        f"\nfull-grid sweep ({GRID.size} points x {len(strategies)} strategies): "
        f"scalar {scalar_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    # acceptance criterion: >= 3x on the vectorizable strategies
    assert speedup >= 3.0


def test_parallel_executor_matches_serial():
    loop, strategies = _strategies()
    base_prices = section5_prices()
    serial = _engine_sweep(loop, strategies, base_prices)

    engine = EvaluationEngine(
        executor=ParallelExecutor(max_workers=2), vectorize=False
    )
    t0 = time.perf_counter()
    parallel = engine.sweep_results(strategies, loop, base_prices, TOKEN_X, GRID)
    parallel_s = time.perf_counter() - t0
    print(f"\nparallel scalar sweep: {parallel_s * 1e3:.1f} ms on 2 workers")

    for label in strategies:
        assert [r.monetized_profit for r in parallel[label]] == [
            r.monetized_profit for r in serial[label]
        ]
