"""Bench + check the batched evaluation engine against the seed path.

Three timings on the acceptance workload — a Fig. 2-style full-grid
sweep (101 price points × 4 strategies: three traditional anchors +
MaxMax) over the §V loop:

* ``scalar``   — the seed code path: one ``strategy.evaluate`` per
  (strategy, point), no cache, no vectorization;
* ``batched``  — ``EvaluationEngine`` with the vectorized numpy grid
  kernels and the shared rotation cache (the default everywhere now);
* ``parallel`` — the same grid forced down the scalar path but fanned
  over a ``ProcessPoolExecutor`` (chunked, deterministic order).

Checks: batched matches scalar within 1e-9 relative tolerance at every
point (in practice they are bit-identical) and is >= 3x faster — the
PR's acceptance criterion; the parallel executor agrees exactly with
the serial order.

Also micro-benchmarks ``rotation_state_key``: the static prefix (pool
ids, symbols, fees) is precomputed per loop, so a cache lookup only
gathers reserves — asserted no slower than the seed implementation
that rebuilt the whole key from the hops every call.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.example import TOKEN_X, section5_loop, section5_prices
from repro.engine import EvaluationEngine, ParallelExecutor
from repro.strategies import MaxMaxStrategy, TraditionalStrategy

GRID = np.linspace(0.0, 20.0, 101)
GRID[0] = 1e-9


def _strategies():
    loop = section5_loop()
    strategies = {
        f"start_{token.symbol}": TraditionalStrategy(start_token=token)
        for token in loop.tokens
    }
    strategies["maxmax"] = MaxMaxStrategy()
    return loop, strategies


def _scalar_sweep(loop, strategies, base_prices):
    """The seed path: a fresh evaluate per (strategy, grid point)."""
    out = {}
    for label, strategy in strategies.items():
        series = []
        for price in GRID:
            prices = base_prices.with_price(TOKEN_X, float(price))
            series.append(strategy.evaluate(loop, prices))
        out[label] = series
    return out


def _engine_sweep(loop, strategies, base_prices):
    engine = EvaluationEngine()
    return engine.sweep_results(strategies, loop, base_prices, TOKEN_X, GRID)


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_engine_batching_speedup(benchmark):
    loop, strategies = _strategies()
    base_prices = section5_prices()

    scalar_s, scalar = _best_of(lambda: _scalar_sweep(loop, strategies, base_prices))
    batched = benchmark.pedantic(
        _engine_sweep,
        args=(loop, strategies, base_prices),
        rounds=3,
        iterations=1,
    )
    batched_s, _ = _best_of(lambda: _engine_sweep(loop, strategies, base_prices))

    # parity: every point of every series agrees to 1e-9 relative
    for label in strategies:
        for ref, got in zip(scalar[label], batched[label]):
            assert got.monetized_profit == (
                ref.monetized_profit
            ) or abs(got.monetized_profit - ref.monetized_profit) <= 1e-9 * max(
                1.0, abs(ref.monetized_profit)
            )
            assert got.start_token == ref.start_token
            assert got.amount_in == ref.amount_in

    speedup = scalar_s / batched_s
    print(
        f"\nfull-grid sweep ({GRID.size} points x {len(strategies)} strategies): "
        f"scalar {scalar_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    # acceptance criterion: >= 3x on the vectorizable strategies
    assert speedup >= 3.0


def _rebuild_state_key(rotation, method):
    """The seed implementation of ``rotation_state_key``: rebuild the
    full key — statics included — from the hops on every call."""
    parts = [method]
    for token_in, _token_out, pool in rotation.hops():
        x, y = pool.reserves_oriented(token_in)
        parts.append((pool.pool_id, token_in.symbol, x, y, pool.fee))
    return tuple(parts)


def test_rotation_state_key_static_prefix_speedup():
    from repro.engine.cache import rotation_state_key

    loop = section5_loop()
    rotation = loop.rotations()[0]
    rotation_state_key(rotation, "closed_form")  # warm the loop statics
    iterations = 20_000

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iterations):
                fn(rotation, "closed_form")
            best = min(best, time.perf_counter() - t0)
        return best

    before_s = best_of(_rebuild_state_key)
    after_s = best_of(rotation_state_key)
    print(
        f"\nrotation_state_key x{iterations}: rebuild {before_s * 1e3:.1f} ms, "
        f"static-prefix {after_s * 1e3:.1f} ms "
        f"({before_s / after_s:.2f}x)"
    )
    # the new key does strictly less work per call (reserve gather
    # only); the 5% slack absorbs timer noise
    assert after_s <= before_s * 1.05


def test_parallel_executor_matches_serial():
    loop, strategies = _strategies()
    base_prices = section5_prices()
    serial = _engine_sweep(loop, strategies, base_prices)

    engine = EvaluationEngine(
        executor=ParallelExecutor(max_workers=2), vectorize=False
    )
    t0 = time.perf_counter()
    parallel = engine.sweep_results(strategies, loop, base_prices, TOKEN_X, GRID)
    parallel_s = time.perf_counter() - t0
    print(f"\nparallel scalar sweep: {parallel_s * 1e3:.1f} ms on 2 workers")

    for label in strategies:
        assert [r.monetized_profit for r in parallel[label]] == [
            r.monetized_profit for r in serial[label]
        ]
