"""Bench + check Fig. 2: rotation profits + MaxMax envelope vs Px.

Expected shape: MaxMax is the pointwise upper envelope of the three
rotation curves; the MaxPrice rotation is NOT the envelope everywhere
(the X rotation overtakes it at high Px).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fig2_rotation_sweep


def test_fig2_rotation_sweep(benchmark):
    series = benchmark.pedantic(fig2_rotation_sweep, rounds=1, iterations=1)
    mm = series.series("maxmax")
    rotations = {label: series.series(label) for label in ("start_X", "start_Y", "start_Z")}

    # envelope property at every grid point
    for values in rotations.values():
        assert np.all(mm >= values - 1e-9)
    # the envelope is tight: at every point MaxMax equals some rotation
    best = np.maximum.reduce(list(rotations.values()))
    assert np.allclose(mm, best, rtol=1e-9)

    # MaxPrice (= start_Z while Px < 20) is overtaken by start_X at high Px
    prices = series.prices()
    high = prices >= 15.0
    assert np.any(rotations["start_X"][high] > series.series("maxprice")[high] + 1.0)

    # Y and Z rotations do not depend on Px (their profit is in Y / Z)
    assert np.ptp(rotations["start_Y"]) < 1e-9
    assert np.ptp(rotations["start_Z"]) < 1e-9
