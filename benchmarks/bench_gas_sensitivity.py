"""Ablation: how many §VI loops survive gas costs?

The paper's profits are gross; a searcher nets out gas.  This bench
counts the profitable 3-loops that remain profitable after execution
costs at several gas-price regimes — the reason small loops go
unharvested on mainnet.
"""

from __future__ import annotations

import pytest

from repro.analysis import profitable_loops
from repro.execution import GasModel
from repro.strategies import MaxMaxStrategy


def survivors(market, gas_price_gwei: float) -> tuple[int, int]:
    _snapshot, loops = profitable_loops(market, 3)
    strategy = MaxMaxStrategy()
    model = GasModel(gas_price_gwei=gas_price_gwei)
    results = [strategy.evaluate(loop, market.prices) for loop in loops]
    alive = sum(1 for r in results if model.is_profitable_after_gas(r))
    return alive, len(loops)


@pytest.mark.parametrize("gwei", [5.0, 20.0, 100.0])
def test_gas_sensitivity(benchmark, market, gwei):
    alive, total = benchmark.pedantic(
        survivors, args=(market, gwei), rounds=1, iterations=1
    )
    assert 0 <= alive <= total
    if gwei <= 5.0:
        assert alive > 0  # cheap gas: some loops survive
    # higher gas can only reduce the survivor count (checked across
    # the parametrization by monotonicity of the cost model)
    model_low = GasModel(gas_price_gwei=5.0)
    model_high = GasModel(gas_price_gwei=100.0)
    assert model_high.cost_usd(3) > model_low.cost_usd(3)
