"""Bench + check: the §V worked example's in-text numbers.

Paper values: 33.7$/201.1$/205.6$ per rotation, MaxMax 205.6$,
Convex 206.1$ keeping ~5 Y and ~7.7 Z.
"""

from __future__ import annotations

import pytest

from repro.analysis import section5_numbers
from repro.data import SECTION5_PAPER_NUMBERS


def test_section5_numbers(benchmark):
    ours = benchmark.pedantic(section5_numbers, rounds=1, iterations=1)
    paper = SECTION5_PAPER_NUMBERS
    assert ours["monetized_from_X"] == pytest.approx(paper["monetized_from_X"], abs=0.1)
    assert ours["monetized_from_Y"] == pytest.approx(paper["monetized_from_Y"], abs=0.1)
    assert ours["monetized_from_Z"] == pytest.approx(paper["monetized_from_Z"], abs=0.1)
    assert ours["maxmax"] == pytest.approx(paper["maxmax"], abs=0.1)
    assert ours["convex"] == pytest.approx(paper["convex"], abs=0.1)
    assert ours["convex_profit_Y"] == pytest.approx(paper["convex_profit_Y"], abs=0.1)
    assert ours["convex_profit_Z"] == pytest.approx(paper["convex_profit_Z"], abs=0.1)
    assert ours["input_X"] == pytest.approx(paper["input_X"], abs=0.1)
    assert ours["input_Y"] == pytest.approx(paper["input_Y"], abs=0.1)
    assert ours["input_Z"] == pytest.approx(paper["input_Z"], abs=0.1)
