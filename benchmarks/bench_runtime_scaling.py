"""Bench + check §VII: runtime of MaxMax vs Convex as loops lengthen.

Expected shape: MaxMax stays at millisecond level through length 10;
the convex solve is consistently slower and its disadvantage does not
shrink with length.  (The paper reports *seconds* for cvxpy at length
10; our purpose-built solver is faster in absolute terms, but the
ordering and the growth trend are the claims under test.)
"""

from __future__ import annotations

from repro.analysis import runtime_scaling


def test_runtime_scaling(benchmark):
    result = benchmark.pedantic(
        runtime_scaling,
        kwargs={"lengths": (3, 4, 6, 8, 10), "repeats": 3},
        rounds=1,
        iterations=1,
    )
    # paper: "for an arbitrage loop with a length of 10, the time
    # required is in milliseconds level" (MaxMax)
    assert result.maxmax_seconds[-1] < 0.05
    # convex is slower at every length
    for mm, cv in zip(result.maxmax_seconds, result.convex_seconds):
        assert cv > mm
    # and slower by a meaningful factor at length 10
    assert result.speedup()[-1] > 1.3
