"""Overhead benchmark for the telemetry layer.

The instrumentation lives permanently in the hot path — block ingest,
shard apply/bounds/quote, kernel passes, publish — so its cost is a
contract, not a nice-to-have:

* **disabled** (the default) must be free: the no-op fast path is
  asserted structurally (one shared context manager, no allocation)
  and its per-call cost is measured and reported;
* **enabled** (``--trace`` / ``--metrics-port``) must stay within
  ``MAX_ENABLED_OVERHEAD`` of the untraced pipeline.

Wall-clocking a ~0.1 s asyncio pipeline A/B cannot resolve a 5 % gate
on shared hardware (run-to-run noise is 10-50 %), so the gate uses the
**implied overhead**: spans recorded by a traced run × the measured
per-span cost (a tight-loop microbenchmark, stable to ~1 %) over the
run's wall time.  That is exactly the quantity the design controls —
spans are block- and pass-granular, never per-loop — and it fails
loudly if either the span cost or the instrumentation density
regresses.  The direct A/B wall times are measured and reported too,
gated only by ``--strict`` (quiet dedicated hardware).

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time

from repro.service import OpportunityService, log_source, make_workload
from repro.telemetry import trace
from repro.telemetry.trace import Tracer

#: Implied-overhead gate: span cost must stay under this fraction of
#: the traced run's wall time.
MAX_ENABLED_OVERHEAD = 0.05

#: Span names an enabled service run must have recorded.
EXPECTED_SPANS = {
    "ingest.block",
    "shard.queue_wait",
    "shard.block",
    "shard.apply",
    "shard.quote",
    "publish.book",
}

FULL_CASE = (40, 300, 24, 10)  # tokens, pools, blocks, events/block
SMOKE_CASE = (30, 120, 10, 8)

MICRO_ITERS = 20_000


def span_cost_us(enabled: bool) -> float:
    """Tight-loop per-span cost (µs), best of 3 batches.

    A private tracer keeps the process-wide one untouched; attrs and a
    ``set`` call mirror a realistic call site.
    """
    tracer = Tracer()
    if enabled:
        tracer.enable()
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(MICRO_ITERS):
            with tracer.span("bench.span", loops=8) as sp:
                sp.set(quoted=4)
        best = min(best, (time.perf_counter() - t0) / MICRO_ITERS)
        tracer.clear()
    return best * 1e6


def run_pipeline(market, log, *, traced: bool) -> dict:
    if traced:
        trace.clear()
        trace.enable()
    else:
        trace.disable()
    service = OpportunityService(market, n_shards=2, queue_size=64)
    t0 = time.perf_counter()
    report = asyncio.run(service.run(log_source(log)))
    wall_s = time.perf_counter() - t0
    names = {s.name for s in trace.spans()}
    n_spans = len(trace.spans())
    trace.disable()
    trace.clear()
    return {
        "wall_s": wall_s,
        "n_spans": n_spans,
        "span_names": sorted(names),
        "book": [(o.profit_usd, o.loop_id) for o in report.book.entries],
    }


def median_run(n: int, market, log, *, traced: bool) -> dict:
    runs = [run_pipeline(market, log, traced=traced) for _ in range(max(1, n))]
    walls = sorted(r["wall_s"] for r in runs)
    result = dict(runs[-1])
    result["wall_s"] = statistics.median(walls)
    result["wall_s_min"] = walls[0]
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("--json", help="write results to a JSON file")
    parser.add_argument("--seed", type=int, default=20240601)
    parser.add_argument("--repeats", type=int, default=5,
                        help="pipeline wall times take the median of N runs")
    parser.add_argument("--strict", action="store_true",
                        help="additionally gate the direct A/B wall-time "
                        "ratio (needs quiet dedicated hardware)")
    args = parser.parse_args(argv)

    n_tokens, n_pools, n_blocks, per_block = (
        SMOKE_CASE if args.smoke else FULL_CASE
    )
    market, log = make_workload(
        n_tokens, n_pools, n_blocks, per_block, args.seed
    )

    ok = True

    # 1. the disabled fast path is structurally free
    if trace.span("x", a=1) is not trace.NOOP:
        print("FAIL: disabled span() allocates", file=sys.stderr)
        ok = False
    cost_off_us = span_cost_us(enabled=False)
    cost_on_us = span_cost_us(enabled=True)
    print(
        f"per-span cost: disabled {cost_off_us:.2f}us (no-op path), "
        f"enabled {cost_on_us:.2f}us"
    )

    # 2. implied overhead: instrumentation density x span cost
    run_pipeline(market, log, traced=False)  # warm-up
    untraced = median_run(args.repeats, market, log, traced=False)
    traced = median_run(args.repeats, market, log, traced=True)
    implied = traced["n_spans"] * cost_on_us * 1e-6 / traced["wall_s"]
    ab_ratio = traced["wall_s"] / untraced["wall_s"]
    print(
        f"traced run: {traced['n_spans']} spans over "
        f"{traced['wall_s'] * 1e3:.1f}ms "
        f"({traced['n_spans'] / n_blocks:.1f} spans/block) -> implied "
        f"overhead {implied:.2%} (gate {MAX_ENABLED_OVERHEAD:.0%})"
    )
    print(
        f"direct A/B medians: untraced {untraced['wall_s'] * 1e3:.1f}ms, "
        f"traced {traced['wall_s'] * 1e3:.1f}ms -> {ab_ratio:.3f}x "
        f"({'gated' if args.strict else 'reported, not gated'})"
    )

    if implied > MAX_ENABLED_OVERHEAD:
        print(
            f"FAIL: implied tracing overhead {implied:.2%} "
            f"(> {MAX_ENABLED_OVERHEAD:.0%} gate)",
            file=sys.stderr,
        )
        ok = False
    if args.strict and ab_ratio > 1.0 + MAX_ENABLED_OVERHEAD:
        print(
            f"FAIL (--strict): A/B wall ratio {ab_ratio:.3f}x "
            f"(> {1.0 + MAX_ENABLED_OVERHEAD:.2f}x gate)",
            file=sys.stderr,
        )
        ok = False

    # 3. the traced run actually traced, and observed without perturbing
    missing = EXPECTED_SPANS - set(traced["span_names"])
    if missing:
        print(f"FAIL: traced run missed spans: {sorted(missing)}", file=sys.stderr)
        ok = False
    if traced["book"] != untraced["book"]:
        print("FAIL: tracing changed the opportunity book", file=sys.stderr)
        ok = False

    if args.json:
        payload = {
            "benchmark": "telemetry_overhead",
            "smoke": args.smoke,
            "case": {
                "n_tokens": n_tokens,
                "n_pools": n_pools,
                "n_blocks": n_blocks,
                "events_per_block": per_block,
            },
            "span_cost_disabled_us": cost_off_us,
            "span_cost_enabled_us": cost_on_us,
            "untraced_wall_s": untraced["wall_s"],
            "traced_wall_s": traced["wall_s"],
            "n_spans": traced["n_spans"],
            "implied_overhead": implied,
            "ab_ratio": ab_ratio,
            "gate": MAX_ENABLED_OVERHEAD,
            "span_names": traced["span_names"],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if ok:
        print(
            f"OK: implied overhead {implied:.2%} within "
            f"{MAX_ENABLED_OVERHEAD:.0%}, no-op path free, full span "
            "taxonomy recorded, book identical"
        )
        return 0
    return 1


# pytest entry point: the benchmark doubles as a slow regression test
def test_telemetry_overhead_smoke():
    assert main(["--smoke", "--repeats", "3"]) == 0


if __name__ == "__main__":
    sys.exit(main())
