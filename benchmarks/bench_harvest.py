"""Extension bench: total extractable value of the §VI snapshot.

Sequential greedy harvest (execute best loop, re-detect, repeat) vs
the single-transaction independent bundle.  The bundle extracts less
per block but needs no re-evaluation; the harvest converges to the
market's total extractable value.
"""

from __future__ import annotations

from repro.analysis import greedy_harvest, independent_bundle, profitable_loops
from repro.strategies import MaxMaxStrategy


def test_greedy_harvest(benchmark, market):
    report = benchmark.pedantic(
        greedy_harvest,
        args=(market, MaxMaxStrategy()),
        kwargs={"min_profit_usd": 1.0, "max_rounds": 25},
        rounds=1,
        iterations=1,
    )
    assert report.total_usd > 0
    assert not any(r.reverted for r in report.rounds)
    # realized == predicted on a quiet market
    for round_ in report.rounds:
        assert abs(round_.realized_usd - round_.predicted_usd) < 1e-3


def test_independent_bundle(benchmark, market):
    _snapshot, loops = profitable_loops(market, 3)
    strategy = MaxMaxStrategy()
    results = [strategy.evaluate(loop, market.prices) for loop in loops]

    bundle = benchmark.pedantic(
        independent_bundle, args=(loops, results), rounds=1, iterations=1
    )
    assert len(bundle) >= 1
    # no two bundle loops share a pool
    seen: set[str] = set()
    for index in bundle:
        ids = {p.pool_id for p in loops[index].pools}
        assert not (ids & seen)
        seen |= ids
