"""Bench + check Fig. 1: the concave profit curve and its optimum.

Expected shape: concave curve with an interior maximum at input ~27.0
where the composed marginal rate crosses 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fig1_profit_curve


def test_fig1_profit_curve(benchmark):
    result = benchmark.pedantic(fig1_profit_curve, rounds=1, iterations=1)
    assert result.optimal_input == pytest.approx(27.0, abs=0.1)
    assert result.derivative_at_optimum == pytest.approx(1.0, rel=1e-9)
    # concavity and interior maximum
    peak = int(np.argmax(result.profits))
    assert 0 < peak < result.profits.size - 1
    assert np.all(np.diff(result.profits, 2) < 1e-9)
    # profit at the analytic optimum tops the sampled curve
    assert result.optimal_profit >= result.profits.max() - 1e-9
