"""Bench + check Fig. 7: Convex vs MaxMax scatter (3-loops).

Expected shape: points essentially ON the 45-degree line — Convex is
provably >= MaxMax, and empirically the two coincide to within a tiny
relative gap (the paper's central empirical finding).
"""

from __future__ import annotations

from repro.analysis import fig7_convex_vs_maxmax


def test_fig7_scatter(benchmark, market):
    result = benchmark.pedantic(
        fig7_convex_vs_maxmax, args=(market,), rounds=1, iterations=1
    )
    assert result.stats.n >= 100
    # x = convex, y = maxmax: maxmax never exceeds convex...
    assert result.stats.frac_below_or_on == 1.0
    # ...and the clouds coincide almost exactly
    assert result.stats.mean_rel_gap < 0.01
    assert result.stats.pearson_r > 0.999
