"""Throughput benchmark: per-loop scalar chain optimization vs the
batched stableswap quote kernel.

Builds complete token graphs of Curve-style amplified-invariant pools
(random amplifications, reserves near balance, stable fees) whose
length-3 loop universes ladder from ~10² to ~10³ loops — every loop
crosses stableswap hops, so every quote needs the iterative
chain-rule solver with the batched lockstep D/Y Newton iterations
(:func:`~repro.market.batched_stableswap_d` /
:func:`~repro.market.batched_stableswap_y`) rather than the closed
form.  Each universe is scored with MaxMax twice: loop by loop on the
scalar object path (per-hop ``calculate_d`` / ``calculate_y`` in
Python), and through :class:`~repro.market.BatchEvaluator`, whose
:func:`~repro.market.stableswap_quotes` kernel runs the same
bracketing and bisection on the whole loop array at once with a
converged mask.

Parity is checked before a timing counts.  Stableswap arithmetic is
``+ - * /`` only, so scalar and batch agree bit for bit on IEEE-754
float64; the check still allows the documented portable tolerance
(:data:`repro.market.STABLESWAP_PARITY_RTOL`) so the benchmark runs
on exotic FMA-contracting platforms too.  The acceptance criterion is
**batch ≥ 3× scalar at ~2×10³ stableswap loops** (the smoke ladder CI
runs ends on the same gate rung).

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_stableswap_quote.py --smoke --json out.json

or the full ladder::

    PYTHONPATH=src python benchmarks/bench_stableswap_quote.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.amm.registry import PoolRegistry
from repro.amm.stableswap import StableSwapPool
from repro.core.types import PriceMap, Token
from repro.engine import LoopUniverse
from repro.market import STABLESWAP_PARITY_RTOL, BatchEvaluator, MarketArrays
from repro.strategies import MaxMaxStrategy

#: n_tokens — complete stableswap graphs; loop count is C(n,3) * 2.
#: The inner Newton solves give the batch path a higher fixed dispatch
#: cost per probe than the weighted kernel's pow, so the kernel-vs-
#: scalar crossover sits around ~10³ loops and the gate rung is sized
#: past it.
FULL_CASES = [12, 20, 24]  # ~440 / ~2280 / ~4048 loops
SMOKE_CASES = [12, 20]

MIN_SPEEDUP = 3.0


def make_market(n_tokens: int, seed: int):
    """Complete graph of stableswap pools: near-balanced reserves (the
    pegged-pair regime the family models) with enough imbalance spread
    to make loops profitable, random amplifications across Curve's
    mainnet range, and stable-pool fees."""
    rng = np.random.default_rng(seed)
    tokens = [Token(f"S{i:02d}") for i in range(n_tokens)]
    registry = PoolRegistry()
    pid = 0
    for i in range(n_tokens):
        for j in range(i + 1, n_tokens):
            base = float(rng.uniform(1e4, 5e5))
            registry.add(
                StableSwapPool(
                    tokens[i],
                    tokens[j],
                    base,
                    base * float(rng.uniform(0.9, 1.1)),
                    amplification=float(rng.uniform(10.0, 400.0)),
                    fee=float(rng.uniform(0.0001, 0.002)),
                    pool_id=f"s{pid}",
                )
            )
            pid += 1
    prices = PriceMap({t: float(rng.uniform(0.98, 1.02)) for t in tokens})
    return registry, prices


def _assert_parity(scalar, batch):
    for k, (ref, got) in enumerate(zip(scalar, batch)):
        ok = got.monetized_profit == ref.monetized_profit or abs(
            got.monetized_profit - ref.monetized_profit
        ) <= STABLESWAP_PARITY_RTOL * max(1.0, abs(ref.monetized_profit))
        assert ok, f"parity at loop {k}: {got.monetized_profit} vs {ref.monetized_profit}"
        ok = got.amount_in == ref.amount_in or abs(
            got.amount_in - ref.amount_in
        ) <= STABLESWAP_PARITY_RTOL * max(1.0, abs(ref.amount_in))
        assert ok, f"parity at loop {k}: {got.amount_in} vs {ref.amount_in}"


def run_case(n_tokens: int, repeats: int, seed: int = 11) -> dict:
    registry, prices = make_market(n_tokens, seed)
    loops = list(LoopUniverse(registry, 3).candidates)
    strategy = MaxMaxStrategy()

    t0 = time.perf_counter()
    evaluator = BatchEvaluator(
        loops, arrays=MarketArrays.from_registry(registry)
    )
    compile_s = time.perf_counter() - t0
    assert evaluator.fallback_positions == []
    assert all(g.mixed for g in evaluator.groups)

    def best_of(fn):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    scalar_s, scalar = best_of(lambda: strategy.evaluate_many(loops, prices))
    batch_s, batch = best_of(lambda: evaluator.evaluate_many(strategy, prices))
    _assert_parity(scalar, batch)
    assert evaluator.stats.scalar_loops == 0  # every quote was kernel-routed

    return {
        "n_tokens": n_tokens,
        "n_pools": len(registry),
        "n_loops": len(loops),
        "compile_s": compile_s,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "scalar_loops_per_s": len(loops) / scalar_s if scalar_s > 0 else float("inf"),
        "batch_loops_per_s": len(loops) / batch_s if batch_s > 0 else float("inf"),
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes only (CI)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--json", help="write results to a JSON file")
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    results = []
    for n_tokens in cases:
        result = run_case(n_tokens, args.repeats)
        results.append(result)
        print(
            f"{result['n_loops']:>6} stableswap loops ({result['n_pools']} pools): "
            f"scalar {result['scalar_s'] * 1e3:8.1f} ms, "
            f"batch {result['batch_s'] * 1e3:7.1f} ms "
            f"(compile {result['compile_s'] * 1e3:.1f} ms) -> "
            f"{result['speedup']:.1f}x"
        )

    largest = results[-1]
    ok = largest["speedup"] >= MIN_SPEEDUP
    print(
        f"acceptance: batch >= {MIN_SPEEDUP:.0f}x scalar at "
        f"{largest['n_loops']} stableswap loops -> "
        f"{'PASS' if ok else 'FAIL'} ({largest['speedup']:.1f}x)"
    )
    if args.json:
        payload = {
            "benchmark": "stableswap_quote",
            "smoke": args.smoke,
            "min_speedup": MIN_SPEEDUP,
            "cases": results,
            "pass": ok,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def test_stableswap_quote_smoke():
    assert main(["--smoke", "--repeats", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
