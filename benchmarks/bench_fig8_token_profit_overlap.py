"""Bench + check Fig. 8: per-token profit vectors, Convex vs MaxMax.

Expected shape: the two strategies' profit vectors overlap loop by
loop — the largest per-token difference stays small relative to each
loop's own profit scale.
"""

from __future__ import annotations

from repro.analysis import fig8_token_profit_overlap


def test_fig8_overlap(benchmark, market):
    result = benchmark.pedantic(
        fig8_token_profit_overlap, args=(market,), rounds=1, iterations=1
    )
    assert len(result.loops) >= 100
    assert len(result.maxmax_profits) == len(result.convex_profits)
    assert result.max_component_gap < 0.2
