"""Throughput benchmark: incremental replay vs full recompute.

Streams a sparse-touch synthetic event log (a few pools touched per
block, no CEX ticks — the regime real blocks live in) through a
:class:`~repro.replay.ReplayDriver` twice, once per mode, at market
sizes from 10² to 10⁴ pools.  Reports events/sec and the speedup, and
asserts the PR's acceptance criterion: **incremental wins by ≥ 5×** on
every sparse-touch case.  Parity is asserted on the side — both modes
must produce bit-identical per-block reports before a timing counts.

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_replay_throughput.py --smoke --json out.json

or the full ladder (10⁴ pools takes a few seconds of setup)::

    PYTHONPATH=src python benchmarks/bench_replay_throughput.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.data import SyntheticMarketGenerator
from repro.replay import ReplayDriver, generate_event_stream

#: (n_tokens, n_pools, n_blocks) ladders; sparse touch throughout
FULL_CASES = [(40, 100, 20), (300, 1_000, 8), (2_500, 10_000, 3)]
SMOKE_CASES = [(40, 100, 8), (120, 300, 5)]

EVENTS_PER_BLOCK = 8
POOLS_PER_BLOCK = 2  # touch sparsity: at most 2 distinct pools per block
MIN_SPEEDUP = 5.0


def make_inputs(n_tokens: int, n_pools: int, n_blocks: int, seed: int):
    """Market + stream for one case (generated once, replayed N times)."""
    market = SyntheticMarketGenerator(
        n_tokens=n_tokens, n_pools=n_pools, seed=seed, price_noise=0.02
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=EVENTS_PER_BLOCK,
        seed=seed,
        pools_per_block=POOLS_PER_BLOCK,
        price_ticks_per_block=0,
    )
    return market, log


def run_case(market, log, n_tokens: int, n_pools: int, n_blocks: int) -> dict:
    # drivers are rebuilt per run (they mutate their market copy), but
    # their setup (universe enumeration + cache priming) is excluded
    # from the timings: it is paid once per topology, not per block
    incremental = ReplayDriver(market, mode="incremental")
    t0 = time.perf_counter()
    inc = incremental.replay(log)
    inc_s = time.perf_counter() - t0

    full = ReplayDriver(market, mode="full")
    t0 = time.perf_counter()
    ref = full.replay(log)
    full_s = time.perf_counter() - t0

    for a, b in zip(inc.reports, ref.reports, strict=True):
        assert a.same_numbers(b), (
            f"parity violation at block {a.block} ({n_pools} pools)"
        )

    events = inc.events_applied
    return {
        "n_tokens": n_tokens,
        "n_pools": n_pools,
        "n_blocks": n_blocks,
        "candidate_loops": incremental.total_loops,
        "events": events,
        "incremental_s": inc_s,
        "full_s": full_s,
        "incremental_events_per_s": events / inc_s if inc_s > 0 else float("inf"),
        "full_events_per_s": events / full_s if full_s > 0 else float("inf"),
        "incremental_evaluations": inc.evaluations(),
        "full_evaluations": ref.evaluations(),
        "speedup": full_s / inc_s if inc_s > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("--json", help="write results to a JSON file")
    parser.add_argument("--seed", type=int, default=20240601)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timings keep the best of N replays")
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    results = []
    failures = []
    for n_tokens, n_pools, n_blocks in cases:
        market, log = make_inputs(n_tokens, n_pools, n_blocks, args.seed)
        best: dict | None = None
        for _ in range(max(1, args.repeats)):
            result = run_case(market, log, n_tokens, n_pools, n_blocks)
            if best is None or result["incremental_s"] < best["incremental_s"]:
                best = result
        results.append(best)
        print(
            f"{best['n_pools']:>6} pools / {best['candidate_loops']:>5} loops / "
            f"{best['n_blocks']:>2} blocks: "
            f"incremental {best['incremental_events_per_s']:>10,.0f} ev/s "
            f"({best['incremental_evaluations']} evals), "
            f"full {best['full_events_per_s']:>9,.0f} ev/s "
            f"({best['full_evaluations']} evals)  ->  "
            f"{best['speedup']:.1f}x"
        )
        if best["speedup"] < MIN_SPEEDUP:
            failures.append(best)

    if args.json:
        payload = {
            "benchmark": "replay_throughput",
            "smoke": args.smoke,
            "events_per_block": EVENTS_PER_BLOCK,
            "pools_per_block": POOLS_PER_BLOCK,
            "min_speedup": MIN_SPEEDUP,
            "results": results,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if failures:
        sizes = ", ".join(str(f["n_pools"]) for f in failures)
        print(
            f"FAIL: incremental replay below the {MIN_SPEEDUP}x floor "
            f"at {sizes} pools",
            file=sys.stderr,
        )
        return 1
    print(f"OK: incremental >= {MIN_SPEEDUP}x at every size")
    return 0


# pytest entry point: the benchmark doubles as a slow regression test
def test_replay_throughput_smoke():
    assert main(["--smoke", "--repeats", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
