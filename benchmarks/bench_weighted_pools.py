"""Extension bench: the paper's strategies on weighted (G3M) loops.

Checks that the dominance chain and solver agreement survive beyond
constant-product pools, and times the generic chain-rule optimizer
against the CPMM closed form.
"""

from __future__ import annotations


from repro.amm import Pool, WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.optimize import optimize_rotation_chain
from repro.strategies import ConvexOptimizationStrategy, MaxMaxStrategy

X, Y, Z = Token("X"), Token("Y"), Token("Z")


def make_weighted_loop():
    return ArbitrageLoop(
        [X, Y, Z],
        [
            WeightedPool(X, Y, 100.0, 200.0, weight0=0.8, weight1=0.2, pool_id="bw-xy"),
            Pool(Y, Z, 300.0, 200.0, pool_id="bw-yz"),
            Pool(Z, X, 200.0, 400.0, pool_id="bw-zx"),
        ],
    )


PRICES = PriceMap({X: 2.0, Y: 10.2, Z: 20.0})


def test_chain_optimizer_speed(benchmark):
    loop = make_weighted_loop()
    rotation = loop.rotations()[0]
    result = benchmark(optimize_rotation_chain, rotation)
    assert result.x > 0
    assert result.converged


def test_maxmax_on_weighted_loop(benchmark):
    loop = make_weighted_loop()
    strategy = MaxMaxStrategy()
    result = benchmark(strategy.evaluate, loop, PRICES)
    assert result.monetized_profit > 0


def test_dominance_survives_weights(benchmark):
    def run():
        loop = make_weighted_loop()
        mm = MaxMaxStrategy().evaluate(loop, PRICES)
        cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, PRICES)
        return mm, cv

    mm, cv = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cv.monetized_profit >= mm.monetized_profit - 1e-6
