"""Bench + check Fig. 10 (appendix): length-4 loops, MaxMax vs Convex.

Expected shape: points nearly on the 45-degree line, none above.
"""

from __future__ import annotations

from repro.analysis import fig10_len4_maxmax


def test_fig10_scatter(benchmark, market):
    result = benchmark.pedantic(
        fig10_len4_maxmax, args=(market,), rounds=1, iterations=1
    )
    assert result.stats.n >= 100
    assert result.stats.frac_below_or_on == 1.0
    assert result.stats.mean_rel_gap < 0.02
    assert result.stats.pearson_r > 0.999
