"""Extension bench: when does Convex actually beat MaxMax?

The paper leaves the Convex-vs-MaxMax discrepancy "in theory" as
future work.  Empirically (this bench): the gap is zero at realistic
mispricing and only opens at §V-example-scale mispricing — which is
why Fig. 7's points all sit on the 45-degree line.
"""

from __future__ import annotations

import pytest

from repro.analysis import discrepancy_vs_noise


def test_discrepancy_vs_noise(benchmark):
    points = benchmark.pedantic(
        discrepancy_vs_noise,
        kwargs={"noise_levels": (0.01, 0.15, 0.4)},
        rounds=1,
        iterations=1,
    )
    low, mid, high = points
    assert low.mean_rel_gap == pytest.approx(0.0, abs=1e-9)
    assert high.max_rel_gap > 0.01
    # mispricing (log-rate) grows monotonically with the noise level
    assert low.mean_log_rate < mid.mean_log_rate < high.mean_log_rate
