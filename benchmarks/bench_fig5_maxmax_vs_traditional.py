"""Bench + check Fig. 5: MaxMax vs traditional scatter (3-loops).

Expected shape: every point on/below the 45-degree line (MaxMax is an
upper bound by construction); three points per loop; a substantial
fraction strictly below (rotation choice matters).
"""

from __future__ import annotations

from repro.analysis import fig5_maxmax_vs_traditional


def test_fig5_scatter(benchmark, market):
    result = benchmark.pedantic(
        fig5_maxmax_vs_traditional, args=(market,), rounds=1, iterations=1
    )
    assert result.stats.n % 3 == 0 and result.stats.n >= 300
    assert result.stats.frac_below_or_on == 1.0
    assert result.stats.max_rel_excess <= 1e-9
    assert result.stats.frac_strictly_below > 0.3
