"""Extension bench: arbitrage keeps DEX prices aligned with CEXs.

Runs identical retail flow with and without an aggressive MaxMax
arbitrageur on a mid-sized market and asserts the with-arbitrage run
has a lower mean mispricing index and fewer surviving loops — the
paper's economic premise, demonstrated dynamically.
"""

from __future__ import annotations

from repro.data import SyntheticMarketGenerator
from repro.simulation import efficiency_experiment


def test_market_efficiency(benchmark):
    market = SyntheticMarketGenerator(
        n_tokens=15, n_pools=40, seed=123, price_noise=0.015
    ).generate()

    without, with_arb = benchmark.pedantic(
        efficiency_experiment,
        args=(market,),
        kwargs={"n_blocks": 8},
        rounds=1,
        iterations=1,
    )
    assert with_arb.mean_mispricing() < without.mean_mispricing()
    assert with_arb.loop_series()[-1] <= without.loop_series()[-1]
    assert with_arb.agents[1].cumulative_usd > 0
