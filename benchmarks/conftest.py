"""Shared fixtures for the benchmark suite.

Heavy experiment benchmarks run via ``benchmark.pedantic(rounds=1)``:
they reproduce a whole paper figure per call, so statistical repeats
are wasteful; the interesting output is the figure's *shape*, which
each bench asserts after timing.
"""

from __future__ import annotations

import pytest

from repro.data import paper_market, section5_loop, section5_prices


@pytest.fixture(scope="session")
def market():
    """The default §VI-scale snapshot (51 tokens / 208 pools)."""
    return paper_market()


@pytest.fixture
def s5_loop():
    return section5_loop()


@pytest.fixture
def s5_prices():
    return section5_prices()
