"""Microbenchmarks of the hot kernels.

These are the operations a latency-sensitive searcher runs thousands
of times per block: single swap quotes, loop composition, the
closed-form optimum, and one full MaxMax evaluation.
"""

from __future__ import annotations

import pytest

from repro.amm import amount_out, compose_hops
from repro.data import section5_loop, section5_prices, synthetic_loop, synthetic_loop_prices
from repro.strategies import MaxMaxStrategy

S5_HOPS = [(100.0, 200.0, 0.003), (300.0, 200.0, 0.003), (200.0, 400.0, 0.003)]


def test_amount_out(benchmark):
    result = benchmark(amount_out, 100.0, 200.0, 10.0, 0.003)
    assert result > 0


def test_compose_three_hops(benchmark):
    comp = benchmark(compose_hops, S5_HOPS)
    assert comp.is_profitable


def test_closed_form_optimum(benchmark):
    comp = compose_hops(S5_HOPS)
    result = benchmark(comp.optimal_input)
    assert result == pytest.approx(26.96, abs=0.05)


def test_maxmax_single_loop(benchmark):
    loop = section5_loop()
    prices = section5_prices()
    strategy = MaxMaxStrategy()
    result = benchmark(strategy.evaluate, loop, prices)
    assert result.monetized_profit == pytest.approx(205.59, abs=0.05)


def test_maxmax_length10_loop(benchmark):
    """The paper's §VII claim: length-10 MaxMax is milliseconds."""
    loop = synthetic_loop(10)
    prices = synthetic_loop_prices(loop)
    strategy = MaxMaxStrategy()
    result = benchmark(strategy.evaluate, loop, prices)
    assert result.monetized_profit > 0
    assert benchmark.stats["mean"] < 0.05
