"""Ablation: exact integer (contract) arithmetic vs the float model.

Quantifies both the speed of each kernel and the worst relative
quoting discrepancy over a reserve grid — evidence that the float
analysis layer is faithful to on-chain execution at 18-decimal scale.
"""

from __future__ import annotations

from repro.amm import amount_out, get_amount_out

WAD = 10**18


def test_float_kernel(benchmark):
    out = benchmark(amount_out, 100.0, 200.0, 10.0, 0.003)
    assert out > 0


def test_integer_kernel(benchmark):
    out = benchmark(get_amount_out, 10 * WAD, 100 * WAD, 200 * WAD)
    assert out > 0


def test_worst_case_discrepancy(benchmark):
    def scan():
        worst = 0.0
        for ri in (10, 1_000, 1_000_000):
            for ro in (10, 1_000, 1_000_000):
                for frac in (0.001, 0.05, 0.5):
                    amount = max(1, int(ri * frac * WAD))
                    exact = get_amount_out(amount, ri * WAD, ro * WAD)
                    real = amount_out(float(ri * WAD), float(ro * WAD), float(amount), 0.003)
                    if exact > 0:
                        worst = max(worst, abs(exact - real) / exact)
        return worst

    worst = benchmark.pedantic(scan, rounds=1, iterations=1)
    assert worst < 1e-9  # the float model is 1e-9-faithful at WAD scale
