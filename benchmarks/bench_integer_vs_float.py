"""Ablation: exact integer (contract) arithmetic vs the float model,
and the batched integer kernel vs its sequential twin.

Two questions, one file:

* **fidelity** — the worst relative quoting discrepancy between the
  float hop map and floor-division contract arithmetic over a reserve
  grid: evidence that the float analysis layer is faithful to on-chain
  execution at 18-decimal scale (the pytest-benchmark cases at the
  top).

* **throughput** — scoring every loop's rotation in contract ints via
  :func:`repro.market.integer_batch_quotes` (object-dtype columns, one
  vectorized pass per hop) vs quoting loop by loop through
  :func:`repro.market.integer_hops` + :func:`repro.amm.loop_quote_out`
  (the sequential reference the parity suite pins the kernel to).
  Parity is asserted with ``==`` on every row before a timing counts.
  The acceptance criterion is **batch ≥ 3× sequential** at the largest
  case.

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_integer_vs_float.py --smoke --json out.json

or the full ladder::

    PYTHONPATH=src python benchmarks/bench_integer_vs_float.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.amm import amount_out, get_amount_out, loop_quote_out
from repro.amm.registry import PoolRegistry
from repro.core.types import Token
from repro.engine import LoopUniverse
from repro.market import (
    MarketArrays,
    base_units,
    compile_loops,
    integer_batch_quotes,
    integer_hops,
)

WAD = 10**18


def test_float_kernel(benchmark):
    out = benchmark(amount_out, 100.0, 200.0, 10.0, 0.003)
    assert out > 0


def test_integer_kernel(benchmark):
    out = benchmark(get_amount_out, 10 * WAD, 100 * WAD, 200 * WAD)
    assert out > 0


def test_worst_case_discrepancy(benchmark):
    def scan():
        worst = 0.0
        for ri in (10, 1_000, 1_000_000):
            for ro in (10, 1_000, 1_000_000):
                for frac in (0.001, 0.05, 0.5):
                    amount = max(1, int(ri * frac * WAD))
                    exact = get_amount_out(amount, ri * WAD, ro * WAD)
                    real = amount_out(float(ri * WAD), float(ro * WAD), float(amount), 0.003)
                    if exact > 0:
                        worst = max(worst, abs(exact - real) / exact)
        return worst

    worst = benchmark.pedantic(scan, rounds=1, iterations=1)
    assert worst < 1e-9  # the float model is 1e-9-faithful at WAD scale


# ----------------------------------------------------------------------
# batched vs sequential integer quoting
# ----------------------------------------------------------------------

#: (n_tokens, pools_per_pair) — complete graphs, like bench_batch_quote.
FULL_CASES = [(8, 1), (12, 1), (15, 1)]  # ~112 / ~440 / ~910 loops
SMOKE_CASES = [(8, 1), (12, 1)]

MIN_SPEEDUP = 3.0


def make_market(n_tokens: int, pools_per_pair: int, seed: int):
    rng = np.random.default_rng(seed)
    tokens = [Token(f"T{i:02d}") for i in range(n_tokens)]
    registry = PoolRegistry()
    pid = 0
    for i in range(n_tokens):
        for j in range(i + 1, n_tokens):
            for _ in range(pools_per_pair):
                registry.create(
                    tokens[i],
                    tokens[j],
                    float(rng.uniform(1e3, 5e4)),
                    float(rng.uniform(1e3, 5e4)),
                    pool_id=f"p{pid}",
                )
                pid += 1
    return registry


def run_case(n_tokens: int, pools_per_pair: int, repeats: int, seed: int = 7) -> dict:
    registry = make_market(n_tokens, pools_per_pair, seed)
    arrays = MarketArrays.from_registry(registry)
    loops = list(LoopUniverse(registry, 3).candidates)
    groups, fallback = compile_loops(loops, arrays)
    assert not fallback and len(groups) == 1
    group = groups[0]

    # quote 0.1% of each loop's entry reserve — a realistic trade size
    rotations = [loop.rotations()[0] for loop in loops]
    amounts = [
        base_units(pool.reserve_of(token_in) * 1e-3)
        for rotation in rotations
        for token_in, _token_out, pool in [next(iter(rotation.hops()))]
    ]

    def sequential():
        return [
            loop_quote_out(integer_hops(rotation), amount)
            for rotation, amount in zip(rotations, amounts)
        ]

    def batched():
        return integer_batch_quotes(arrays, group, 0, amounts)

    def best_of(fn):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    seq_s, seq = best_of(sequential)
    batch_s, batch = best_of(batched)

    # bit-identity before any timing counts — integer parity is ==
    for k, amounts_vec in enumerate(seq):
        assert batch.row(k) == amounts_vec, f"parity at loop {k}"

    return {
        "n_tokens": n_tokens,
        "pools_per_pair": pools_per_pair,
        "n_pools": len(registry),
        "n_loops": len(loops),
        "sequential_s": seq_s,
        "batch_s": batch_s,
        "sequential_loops_per_s": len(loops) / seq_s if seq_s > 0 else float("inf"),
        "batch_loops_per_s": len(loops) / batch_s if batch_s > 0 else float("inf"),
        "speedup": seq_s / batch_s if batch_s > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes only (CI)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--json", help="write results to a JSON file")
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    results = []
    for n_tokens, pools_per_pair in cases:
        result = run_case(n_tokens, pools_per_pair, args.repeats)
        results.append(result)
        print(
            f"{result['n_loops']:>6} loops ({result['n_pools']} pools): "
            f"sequential {result['sequential_s'] * 1e3:8.1f} ms, "
            f"batch {result['batch_s'] * 1e3:7.1f} ms -> "
            f"{result['speedup']:.1f}x"
        )

    largest = results[-1]
    ok = largest["speedup"] >= MIN_SPEEDUP
    print(
        f"acceptance: batch >= {MIN_SPEEDUP:.0f}x sequential at "
        f"{largest['n_loops']} loops -> "
        f"{'PASS' if ok else 'FAIL'} ({largest['speedup']:.1f}x)"
    )
    if args.json:
        payload = {
            "benchmark": "integer_vs_float",
            "smoke": args.smoke,
            "min_speedup": MIN_SPEEDUP,
            "cases": results,
            "pass": ok,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def test_integer_batch_smoke():
    assert main(["--smoke", "--repeats", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
