"""Ablation: closed-form vs bisection vs golden-section rotation optima.

DESIGN.md lists the 1-D optimizer choice as a design decision; this
bench quantifies it.  All three must agree on the optimum; closed form
should be the fastest (it is O(1) after composition).
"""

from __future__ import annotations

import pytest

from repro.data import section5_loop
from repro.strategies import optimize_rotation_by


@pytest.fixture(scope="module")
def rotation():
    return section5_loop().rotations()[0]


@pytest.mark.parametrize("method", ["closed_form", "bisection", "golden"])
def test_optimizer_method(benchmark, rotation, method):
    result = benchmark(optimize_rotation_by, rotation, method)
    assert result.x == pytest.approx(26.96, abs=0.05)
    assert result.value == pytest.approx(16.87, abs=0.01)
