"""Bench + check Fig. 3: Convex >= MaxMax across the Px sweep.

Expected shape: the convex curve sits on or above the MaxMax curve at
every grid point, with a small but strictly positive gap somewhere
(206.1$ vs 205.6$ at Px = 2$).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fig3_convex_vs_maxmax_sweep


def test_fig3_convex_vs_maxmax(benchmark):
    series = benchmark.pedantic(fig3_convex_vs_maxmax_sweep, rounds=1, iterations=1)
    mm = series.series("maxmax")
    cv = series.series("convex")
    assert np.all(cv >= mm - 1e-6)
    gap = cv - mm
    assert gap.max() > 0.1          # a real gap exists somewhere
    assert gap.max() < 0.05 * mm.max()  # ... but it is small (Fig. 7's story)
