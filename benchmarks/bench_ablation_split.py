"""Ablation: optimal split across parallel pools vs best-single-pool.

The detection pipeline routes each hop through one pool; the exact
KKT splitter shows what a router would gain by splitting.  The gain
grows with trade size (slippage makes the second-best pool worth
recruiting).
"""

from __future__ import annotations

import pytest

from repro.amm import amount_out
from repro.optimize import optimal_split

PARALLEL_POOLS = [
    (100_000.0, 201_000.0, 0.003),
    (80_000.0, 159_000.0, 0.003),
    (50_000.0, 100_500.0, 0.01),
]


def test_split_kernel_speed(benchmark):
    result = benchmark(optimal_split, PARALLEL_POOLS, 10_000.0)
    assert result.total_out > 0


@pytest.mark.parametrize("total", [100.0, 10_000.0, 50_000.0])
def test_split_gain_over_single_pool(benchmark, total):
    def run():
        split = optimal_split(PARALLEL_POOLS, total)
        single = max(amount_out(x, y, total, fee) for x, y, fee in PARALLEL_POOLS)
        return split.total_out, single

    split_out, single_out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert split_out >= single_out * (1.0 - 1e-12)
    if total >= 10_000.0:
        # at size, splitting wins by a real margin
        assert split_out > single_out * 1.001
