"""Bench + check Fig. 4: convex profit decomposed into token amounts.

Expected shape: the optimum's (X, Y, Z) profit composition moves in
discrete clusters as Px sweeps (the paper observes ~6 positions), the
amounts are non-negative, and monetizing each row with its sweep price
recovers the objective value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fig4_profit_composition


def test_fig4_profit_composition(benchmark):
    grid, rows, monetized = benchmark.pedantic(
        fig4_profit_composition, rounds=1, iterations=1
    )
    assert rows.shape == (grid.size, 3)
    assert np.all(rows >= -1e-8)
    for px, row, total in zip(grid, rows, monetized):
        assert total == pytest.approx(
            row[0] * px + row[1] * 10.2 + row[2] * 20.0, rel=1e-6, abs=1e-6
        )
    # optima cluster into few distinct positions (paper: ~6)
    distinct = {tuple(np.round(row, 1)) for row in rows}
    assert len(distinct) <= 12
