"""Throughput / latency benchmark for the streaming opportunity service.

Three sections, one JSON report:

* **ladder** — sustained events/sec and end-to-end p50/p99 latency of
  a 1-shard inline service over sparse-touch streams at 10² → 10⁴
  pools (the regime real blocks live in; smoke stops at 300 pools).
  Every ladder run asserts the book equals batch detection on the
  final state before its numbers count.
* **scaling** — 1 shard vs ≥2 shards, both process-backed, on a
  dense-touch stream (heavy per-block evaluation, where sharding is
  supposed to pay).  On a multi-core machine the multi-shard
  configuration must **beat** 1 shard; on a single core the ratio is
  reported but not asserted (there is nothing to parallelize onto).
  Shard counts never change the numbers — parity is asserted either
  way.
* **memory** — private-copy vs shared-memory market state, both
  process-backed, at 10³ → 10⁵ pools (smoke stops at 10³).  Each rung
  runs the same stream under both models and asserts (a) bit-identical
  books, (b) aggregate per-shard market state ≥ ``MEMORY_MIN_RATIO``×
  smaller under the shared model, and (c) throughput within
  ``MEMORY_MIN_THROUGHPUT_RATIO`` of the private model.  The ratio
  gates the *per-shard duplicated* state — what grows with shard
  count; the one shared segment is a non-scaling singleton, reported
  separately (``segment_nbytes``, ``total_ratio``).  Per-shard RSS
  high-water and seqlock epoch-wait / torn-read-retry counts land in
  the JSON artifact.

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke --json out.json

or the full ladder (10⁴ pools takes tens of seconds of setup)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

from repro.service import (
    OpportunityService,
    batch_detect_ranking,
    log_source,
    make_workload,
)

#: ladder cases: (n_tokens, n_pools, n_blocks), sparse touch
FULL_LADDER = [(40, 100, 20), (300, 1_000, 8), (2_500, 10_000, 3)]
SMOKE_LADDER = [(40, 100, 8), (120, 300, 5)]

#: scaling case: dense touch so per-block evaluation dominates IPC
FULL_SCALING = (40, 300, 12)
SMOKE_SCALING = (30, 120, 6)

LADDER_EVENTS_PER_BLOCK = 8
LADDER_POOLS_PER_BLOCK = 4
LADDER_TICKS_PER_BLOCK = 1  # ticks exercise the cache-hit re-monetize path
SCALING_EVENTS_PER_BLOCK = 24
SCALING_POOLS_PER_BLOCK = 12

#: memory cases: (n_tokens, n_pools, n_blocks), sparse touch
FULL_MEMORY = [(300, 1_000, 6), (2_500, 10_000, 3), (20_000, 100_000, 2)]
SMOKE_MEMORY = [(120, 1_000, 3)]
MEMORY_EVENTS_PER_BLOCK = 8
MEMORY_POOLS_PER_BLOCK = 4
#: shared model must shrink aggregate per-shard market state this much
MEMORY_MIN_RATIO = 5.0
#: ...without costing throughput.  0.7 leaves noise headroom on a
#: multi-core runner (measured parity is ~0.95); on a single core the
#: shared model's one writer serializes with every shard on the only
#: CPU, so the floor relaxes — matching the scaling section's
#: single-core treatment.
MEMORY_MIN_THROUGHPUT_RATIO = 0.7
MEMORY_MIN_THROUGHPUT_RATIO_1CPU = 0.55


def run_service(market, log, *, n_shards, backend, shared=False):
    service = OpportunityService(
        market, n_shards=n_shards, backend=backend, queue_size=64, shared=shared
    )
    t0 = time.perf_counter()
    try:
        report = asyncio.run(service.run(log_source(log)))
    finally:
        service.close()
    wall_s = time.perf_counter() - t0
    e2e = report.metrics["latencies"].get("end_to_end", {})
    counters = report.metrics["counters"]
    return {
        "n_shards": n_shards,
        "backend": backend,
        "shared": shared,
        "wall_s": wall_s,
        "events": report.events_ingested,
        "events_per_s": report.events_per_s,
        "evaluations": report.evaluations,
        "cache_hit_rate": report.cache_hit_rate,
        "e2e_p50_ms": e2e.get("p50_ms", 0.0),
        "e2e_p99_ms": e2e.get("p99_ms", 0.0),
        "shm_epoch_waits": counters.get("shm_epoch_waits", 0),
        "shm_torn_retries": counters.get("shm_torn_retries", 0),
        "memory": report.memory,
        "book": [(o.profit_usd, o.loop_id) for o in report.book.entries],
    }


def best_of(n, fn):
    best = None
    for _ in range(max(1, n)):
        result = fn()
        if best is None or result["events_per_s"] > best["events_per_s"]:
            best = result
    return best


def run_ladder(cases, seed, repeats):
    results = []
    for n_tokens, n_pools, n_blocks in cases:
        market, log = make_workload(
            n_tokens, n_pools, n_blocks, LADDER_EVENTS_PER_BLOCK, seed,
            pools_per_block=LADDER_POOLS_PER_BLOCK,
            price_ticks_per_block=LADDER_TICKS_PER_BLOCK,
        )
        expected = batch_detect_ranking(market, log)
        best = best_of(
            repeats, lambda: run_service(market, log, n_shards=1, backend="inline")
        )
        assert best["book"] == expected, (
            f"ladder parity violation at {n_pools} pools"
        )
        row = {k: v for k, v in best.items() if k not in ("book", "memory")}
        row.update(n_tokens=n_tokens, n_pools=n_pools, n_blocks=n_blocks)
        results.append(row)
        print(
            f"{n_pools:>6} pools / {n_blocks:>2} blocks: "
            f"{row['events_per_s']:>10,.0f} ev/s, "
            f"e2e p50 {row['e2e_p50_ms']:>7.2f}ms / "
            f"p99 {row['e2e_p99_ms']:>7.2f}ms, "
            f"{row['evaluations']} evals, "
            f"cache {row['cache_hit_rate']:.0%}"
        )
    return results


def run_scaling(case, seed, repeats, n_shards_multi):
    n_tokens, n_pools, n_blocks = case
    market, log = make_workload(
        n_tokens, n_pools, n_blocks, SCALING_EVENTS_PER_BLOCK, seed,
        pools_per_block=SCALING_POOLS_PER_BLOCK, price_ticks_per_block=0,
    )
    expected = batch_detect_ranking(market, log)
    single = best_of(
        repeats,
        lambda: run_service(market, log, n_shards=1, backend="process"),
    )
    multi = best_of(
        repeats,
        lambda: run_service(market, log, n_shards=n_shards_multi, backend="process"),
    )
    assert single["book"] == expected, "scaling parity violation (1 shard)"
    assert multi["book"] == expected, (
        f"scaling parity violation ({n_shards_multi} shards)"
    )
    speedup = (
        multi["events_per_s"] / single["events_per_s"]
        if single["events_per_s"] > 0
        else float("inf")
    )
    print(
        f"scaling at {n_pools} pools ({n_blocks} blocks, dense touch): "
        f"1 shard {single['events_per_s']:,.0f} ev/s vs "
        f"{n_shards_multi} shards {multi['events_per_s']:,.0f} ev/s "
        f"->  {speedup:.2f}x"
    )
    return {
        "n_tokens": n_tokens,
        "n_pools": n_pools,
        "n_blocks": n_blocks,
        "n_shards_multi": n_shards_multi,
        "single": {k: v for k, v in single.items() if k not in ("book", "memory")},
        "multi": {k: v for k, v in multi.items() if k not in ("book", "memory")},
        "speedup": speedup,
    }


def run_memory(cases, seed, repeats, n_shards):
    """Shared vs private market state, same stream, both process-backed."""
    results = []
    for n_tokens, n_pools, n_blocks in cases:
        market, log = make_workload(
            n_tokens, n_pools, n_blocks, MEMORY_EVENTS_PER_BLOCK, seed,
            pools_per_block=MEMORY_POOLS_PER_BLOCK, price_ticks_per_block=1,
        )
        private = best_of(
            repeats,
            lambda: run_service(
                market, log, n_shards=n_shards, backend="process", shared=False
            ),
        )
        shared = best_of(
            repeats,
            lambda: run_service(
                market, log, n_shards=n_shards, backend="process", shared=True
            ),
        )
        assert shared["book"] == private["book"], (
            f"memory-section parity violation at {n_pools} pools: "
            "shared book != private book"
        )
        if n_pools <= 10_000:  # batch oracle is O(loops) per block
            expected = batch_detect_ranking(market, log)
            assert private["book"] == expected, (
                f"memory-section parity violation at {n_pools} pools: "
                "private book != batch detection"
            )
        agg_private = private["memory"]["aggregate_shard_market_bytes"]
        agg_shared = shared["memory"]["aggregate_shard_market_bytes"]
        segment = shared["memory"].get("segment_nbytes", 0)
        agg_ratio = agg_private / agg_shared if agg_shared else float("inf")
        total = agg_shared + segment
        total_ratio = agg_private / total if total else float("inf")
        throughput_ratio = (
            shared["events_per_s"] / private["events_per_s"]
            if private["events_per_s"] > 0
            else float("inf")
        )
        row = {
            "n_tokens": n_tokens,
            "n_pools": n_pools,
            "n_blocks": n_blocks,
            "n_shards": n_shards,
            "private": {k: v for k, v in private.items() if k != "book"},
            "shared": {k: v for k, v in shared.items() if k != "book"},
            "agg_ratio": agg_ratio,
            "total_ratio": total_ratio,
            "throughput_ratio": throughput_ratio,
        }
        results.append(row)
        print(
            f"memory at {n_pools:>6} pools x {n_shards} shards: "
            f"private {agg_private:>12,}B vs shared {agg_shared:>10,}B "
            f"(+{segment:,}B segment, once) -> {agg_ratio:.2f}x smaller, "
            f"throughput {throughput_ratio:.2f}x, "
            f"epoch waits {shared['shm_epoch_waits']}, "
            f"torn retries {shared['shm_torn_retries']}"
        )
        assert agg_ratio >= MEMORY_MIN_RATIO, (
            f"memory gate: shared model only {agg_ratio:.2f}x smaller at "
            f"{n_pools} pools (need >= {MEMORY_MIN_RATIO}x)"
        )
        floor = (
            MEMORY_MIN_THROUGHPUT_RATIO
            if (os.cpu_count() or 1) >= 2
            else MEMORY_MIN_THROUGHPUT_RATIO_1CPU
        )
        assert throughput_ratio >= floor, (
            f"memory gate: shared throughput {throughput_ratio:.2f}x of "
            f"private at {n_pools} pools (need >= {floor}x)"
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("--json", help="write results to a JSON file")
    parser.add_argument("--seed", type=int, default=20240601)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timings keep the best of N runs")
    parser.add_argument("--shards", type=int, default=None,
                        help="multi-shard count for the scaling section "
                        "(default: min(4, cpu count), at least 2)")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    n_shards_multi = (
        args.shards if args.shards is not None else max(2, min(4, cpus))
    )

    ladder = run_ladder(
        SMOKE_LADDER if args.smoke else FULL_LADDER, args.seed, args.repeats
    )
    scaling = run_scaling(
        SMOKE_SCALING if args.smoke else FULL_SCALING,
        args.seed,
        args.repeats,
        n_shards_multi,
    )
    memory = run_memory(
        SMOKE_MEMORY if args.smoke else FULL_MEMORY,
        args.seed,
        args.repeats,
        n_shards_multi,
    )

    multi_core = cpus >= 2
    if args.json:
        payload = {
            "benchmark": "service_throughput",
            "smoke": args.smoke,
            "cpu_count": cpus,
            "ladder": ladder,
            "scaling": scaling,
            "memory": memory,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if multi_core and scaling["speedup"] <= 1.0:
        print(
            f"FAIL: {n_shards_multi} shards did not beat 1 shard on a "
            f"{cpus}-core machine ({scaling['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    if multi_core:
        print(
            f"OK: {n_shards_multi} shards beat 1 shard "
            f"({scaling['speedup']:.2f}x on {cpus} cores); parity held everywhere"
        )
    else:
        print(
            f"OK (single core: shard speedup {scaling['speedup']:.2f}x "
            "reported, not asserted); parity held everywhere"
        )
    return 0


# pytest entry point: the benchmark doubles as a slow regression test
def test_service_throughput_smoke():
    assert main(["--smoke", "--repeats", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
