"""Ablation: barrier vs SLSQP backends, eq. (7) vs eq. (8) linking.

The two backends must agree on the §V example's optimum (206.1$); the
equality-linked program (eq. 7) must fall back to the fixed-start
optimum (205.6$ via the MaxMax floor) — the paper's reduction claim.
"""

from __future__ import annotations

import pytest

from repro.data import section5_loop, section5_prices
from repro.strategies import ConvexOptimizationStrategy


@pytest.fixture(scope="module")
def prices():
    return section5_prices()


@pytest.mark.parametrize("backend", ["barrier", "slsqp"])
def test_backend(benchmark, prices, backend):
    strategy = ConvexOptimizationStrategy(backend=backend)

    def solve():
        return strategy.evaluate(section5_loop(), prices)

    result = benchmark(solve)
    assert result.monetized_profit == pytest.approx(206.1, abs=0.1)


def test_equality_linking_reduces_to_fixed_start(benchmark, prices):
    strategy = ConvexOptimizationStrategy(linking="equality")

    def solve():
        return strategy.evaluate(section5_loop(), prices)

    result = benchmark(solve)
    # eq. (7) (plus the MaxMax floor) lands on the fixed-start optimum
    assert result.monetized_profit == pytest.approx(205.6, abs=0.1)
