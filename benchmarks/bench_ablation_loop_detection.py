"""Ablation: loop-detection strategies on the §VI-scale market.

Compares exhaustive enumeration over all parallel pools vs the
best-pool-per-pair restriction, and the Moore–Bellman–Ford negative-
cycle detector that finds a single loop fast.
"""

from __future__ import annotations

from repro.graph import find_arbitrage_loops, find_negative_cycle


def test_enumerate_all_parallel_pools(benchmark, market):
    graph = market.graph()
    loops = benchmark(find_arbitrage_loops, graph, 3)
    assert len(loops) >= 100


def test_enumerate_best_pool_only(benchmark, market):
    graph = market.graph()
    loops = benchmark(find_arbitrage_loops, graph, 3, max_parallel=1)
    all_loops = find_arbitrage_loops(graph, 3)
    # restricting to one pool per pair can only lose loops
    assert len(loops) <= len(all_loops)
    assert len(loops) > 0


def test_bellman_ford_single_loop(benchmark, market):
    graph = market.graph()
    cycle = benchmark(find_negative_cycle, graph)
    # the market has arbitrage, so MBF must find a cycle
    assert cycle is not None
