"""Throughput benchmark: per-loop scalar evaluation vs the cross-loop
batch quote kernel.

Builds complete token graphs (optionally with parallel pools) whose
length-3 loop universes ladder from 10² to ~10⁴ loops, then scores
every loop with MaxMax twice — once loop by loop on the scalar object
path (the seed code path), once through
:class:`~repro.market.BatchEvaluator` (hop-index matrices over
structure-of-arrays reserves, one vectorized pass per rotation).

Parity is asserted with ``==`` on every loop before a timing counts —
the kernel's contract is bit-identical results, not a tolerance.  The
acceptance criterion is **batch ≥ 5× scalar at ~10⁴ loops** (≥ 3× at
the smaller smoke sizes CI runs).

Run standalone (CI runs the smoke variant and uploads the JSON)::

    PYTHONPATH=src python benchmarks/bench_batch_quote.py --smoke --json out.json

or the full ladder::

    PYTHONPATH=src python benchmarks/bench_batch_quote.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.amm.registry import PoolRegistry
from repro.core.types import PriceMap, Token
from repro.engine import LoopUniverse
from repro.market import BatchEvaluator, MarketArrays
from repro.strategies import MaxMaxStrategy

#: (n_tokens, pools_per_pair) — complete graphs; loop count is
#: C(n,3) * pools_per_pair^3 * 2 directions.
FULL_CASES = [(8, 1), (15, 1), (17, 2)]  # ~112 / ~910 / ~10880 loops
SMOKE_CASES = [(8, 1), (15, 1)]

MIN_SPEEDUP_FULL = 5.0  # at the 10^4-loop case
MIN_SPEEDUP_SMOKE = 3.0


def make_market(n_tokens: int, pools_per_pair: int, seed: int):
    """Complete pool graph over ``n_tokens`` with random reserves."""
    rng = np.random.default_rng(seed)
    tokens = [Token(f"T{i:02d}") for i in range(n_tokens)]
    registry = PoolRegistry()
    pid = 0
    for i in range(n_tokens):
        for j in range(i + 1, n_tokens):
            for _ in range(pools_per_pair):
                registry.create(
                    tokens[i],
                    tokens[j],
                    float(rng.uniform(1e3, 5e4)),
                    float(rng.uniform(1e3, 5e4)),
                    pool_id=f"p{pid}",
                )
                pid += 1
    prices = PriceMap(
        {t: float(rng.uniform(0.1, 100.0)) for t in tokens}
    )
    return registry, prices


def run_case(n_tokens: int, pools_per_pair: int, repeats: int, seed: int = 7) -> dict:
    registry, prices = make_market(n_tokens, pools_per_pair, seed)
    loops = list(LoopUniverse(registry, 3).candidates)
    strategy = MaxMaxStrategy()

    t0 = time.perf_counter()
    evaluator = BatchEvaluator(
        loops, arrays=MarketArrays.from_registry(registry)
    )
    compile_s = time.perf_counter() - t0

    def best_of(fn):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    scalar_s, scalar = best_of(lambda: strategy.evaluate_many(loops, prices))
    batch_s, batch = best_of(lambda: evaluator.evaluate_many(strategy, prices))

    for k, (ref, got) in enumerate(zip(scalar, batch)):
        assert got.monetized_profit == ref.monetized_profit, f"parity at loop {k}"
        assert got.amount_in == ref.amount_in, f"parity at loop {k}"
        assert got.hop_amounts == ref.hop_amounts, f"parity at loop {k}"

    return {
        "n_tokens": n_tokens,
        "pools_per_pair": pools_per_pair,
        "n_pools": len(registry),
        "n_loops": len(loops),
        "compile_s": compile_s,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "scalar_loops_per_s": len(loops) / scalar_s if scalar_s > 0 else float("inf"),
        "batch_loops_per_s": len(loops) / batch_s if batch_s > 0 else float("inf"),
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes only (CI)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--json", help="write results to a JSON file")
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    min_speedup = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP_FULL
    results = []
    for n_tokens, pools_per_pair in cases:
        result = run_case(n_tokens, pools_per_pair, args.repeats)
        results.append(result)
        print(
            f"{result['n_loops']:>6} loops ({result['n_pools']} pools): "
            f"scalar {result['scalar_s'] * 1e3:8.1f} ms, "
            f"batch {result['batch_s'] * 1e3:7.1f} ms "
            f"(compile {result['compile_s'] * 1e3:.1f} ms) -> "
            f"{result['speedup']:.1f}x"
        )

    largest = results[-1]
    ok = largest["speedup"] >= min_speedup
    print(
        f"acceptance: batch >= {min_speedup:.0f}x scalar at "
        f"{largest['n_loops']} loops -> "
        f"{'PASS' if ok else 'FAIL'} ({largest['speedup']:.1f}x)"
    )
    if args.json:
        payload = {
            "benchmark": "batch_quote",
            "smoke": args.smoke,
            "min_speedup": min_speedup,
            "cases": results,
            "pass": ok,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def test_batch_quote_smoke():
    assert main(["--smoke", "--repeats", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
