"""Bench + check Fig. 9 (appendix): length-4 loops, traditional vs Convex.

Expected shape: four points per loop, all on/below the 45-degree line.
"""

from __future__ import annotations

from repro.analysis import fig9_len4_traditional


def test_fig9_scatter(benchmark, market):
    result = benchmark.pedantic(
        fig9_len4_traditional, args=(market,), rounds=1, iterations=1
    )
    assert result.stats.n % 4 == 0 and result.stats.n >= 400
    assert result.stats.frac_below_or_on == 1.0
    assert result.stats.max_rel_excess <= 1e-6
