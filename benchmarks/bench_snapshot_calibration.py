"""Bench + check §VI calibration: the synthetic market matches the
paper's snapshot scale.

Paper (2023-09-01, post-filter): 51 tokens, 208 pools, 123 profitable
length-3 loops.
"""

from __future__ import annotations

from repro.analysis import snapshot_calibration


def test_snapshot_calibration(benchmark):
    result = benchmark.pedantic(
        snapshot_calibration, kwargs={"include_len4": False}, rounds=1, iterations=1
    )
    assert result.tokens == result.paper_tokens == 51
    assert result.pools == result.paper_pools == 208
    assert abs(result.profitable_loops_len3 - result.paper_loops_len3) <= 15
