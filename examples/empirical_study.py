#!/usr/bin/env python3
"""The paper's §VI empirical pipeline on a synthetic Uniswap-V2 market.

Generates the default paper-scale snapshot (51 tokens / 208 pools,
like the paper's 2023-09-01 data), detects every profitable 3-loop,
compares all four strategies per loop, and prints the scatter
statistics behind Figs. 5-7 plus the most profitable opportunities.

Run:  python examples/empirical_study.py [--seed N] [--length 3|4]
"""

import argparse

from repro import paper_market
from repro.analysis import (
    fig5_maxmax_vs_traditional,
    fig6_maxprice_vs_maxmax,
    fig7_convex_vs_maxmax,
    format_table,
    profitable_loops,
    render_scatter,
)
from repro.graph import graph_summary
from repro.strategies import MaxMaxStrategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=20230901)
    parser.add_argument("--length", type=int, default=3, choices=(3, 4))
    args = parser.parse_args()

    snapshot = paper_market(seed=args.seed)
    print(f"snapshot: {snapshot!r}")
    print(f"graph: {graph_summary(snapshot.graph(), snapshot.prices)}")

    snapshot, loops = profitable_loops(snapshot, args.length)
    print(f"\nprofitable length-{args.length} loops: {len(loops)} (paper found 123 for length 3)")

    strategy = MaxMaxStrategy()
    ranked = sorted(
        ((strategy.evaluate(loop, snapshot.prices), loop) for loop in loops),
        key=lambda pair: -pair[0].monetized_profit,
    )
    rows = [
        (
            f"${result.monetized_profit:,.2f}",
            result.start_token.symbol,
            " -> ".join(t.symbol for t in loop.tokens),
        )
        for result, loop in ranked[:10]
    ]
    print("\ntop 10 opportunities (MaxMax):")
    print(format_table(["monetized", "start", "loop"], rows))

    print("\n" + render_scatter(
        fig5_maxmax_vs_traditional(snapshot, args.length),
        title="Fig. 5: MaxMax vs traditional",
    ))
    print("\n" + render_scatter(
        fig6_maxprice_vs_maxmax(snapshot, args.length),
        title="Fig. 6: MaxPrice vs MaxMax",
    ))
    print("\n" + render_scatter(
        fig7_convex_vs_maxmax(snapshot, args.length),
        title="Fig. 7: Convex vs MaxMax",
    ))


if __name__ == "__main__":
    main()
