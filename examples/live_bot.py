#!/usr/bin/env python3
"""A simulated arbitrage bot running over a sequence of blocks.

Each block:

1. CEX prices drift (geometric random walk — :class:`RandomWalkOracle`);
2. retail traders fire random swaps into random pools, re-creating
   mispricings (the paper's source of recurring arbitrage);
3. the bot detects the best loop with Moore–Bellman–Ford, sizes the
   trade with its configured strategy, and executes atomically with a
   flash loan.

Two bots run side by side on identical market copies — one using
MaxMax, one using MaxPrice — demonstrating the paper's point that
MaxPrice systematically leaves money on the table.

Run:  python examples/live_bot.py [--blocks 50] [--seed 7]
"""

import argparse

import numpy as np

from repro import (
    ExecutionSimulator,
    MarketSnapshot,
    RandomWalkOracle,
    paper_market,
    plan_from_result,
)
from repro.analysis import format_table
from repro.graph import build_token_graph, find_negative_cycle, negative_cycle_to_loop
from repro.strategies import Strategy, make_strategy


class ArbitrageBot:
    """Detect-and-harvest bot bound to one market copy."""

    def __init__(self, name: str, strategy: Strategy, market: MarketSnapshot):
        self.name = name
        self.strategy = strategy
        self.market = market
        self.simulator = ExecutionSimulator(registry=market.registry)
        self.cumulative_usd = 0.0
        self.trades = 0
        self.reverts = 0

    def on_block(self, prices) -> float:
        graph = build_token_graph(self.market.registry)
        cycle = find_negative_cycle(graph)
        if cycle is None:
            return 0.0
        loop = negative_cycle_to_loop(cycle)
        result = self.strategy.evaluate(loop, prices)
        if result.monetized_profit <= 0 or not result.hop_amounts:
            return 0.0
        receipt = self.simulator.execute(
            plan_from_result(result, slippage_tolerance=0.05)
        )
        if receipt.reverted:
            self.reverts += 1
            return 0.0
        realized = receipt.monetized(prices)
        self.cumulative_usd += realized
        self.trades += 1
        return realized


def retail_flow(market: MarketSnapshot, rng: np.random.Generator, n_trades: int) -> None:
    """Random swaps that re-introduce mispricings."""
    pools = sorted(market.registry, key=lambda p: p.pool_id)
    for _ in range(n_trades):
        pool = pools[int(rng.integers(0, len(pools)))]
        token = pool.tokens[int(rng.integers(0, 2))]
        size = pool.reserve_of(token) * float(rng.uniform(0.001, 0.01))
        pool.swap(token, size)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=50)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    base = paper_market()
    oracle = RandomWalkOracle(base.prices, seed=args.seed, volatility=0.002)
    rng_a = np.random.default_rng(args.seed)
    rng_b = np.random.default_rng(args.seed)  # identical retail flow

    bots = [
        ArbitrageBot("maxmax-bot", make_strategy("maxmax"), base.copy()),
        ArbitrageBot("maxprice-bot", make_strategy("maxprice"), base.copy()),
    ]
    rngs = [rng_a, rng_b]

    for block in range(args.blocks):
        prices = oracle.step()
        for bot, rng in zip(bots, rngs):
            retail_flow(bot.market, rng, n_trades=5)
            bot.on_block(prices)

    print(f"after {args.blocks} blocks:")
    rows = [
        (bot.name, bot.trades, bot.reverts, f"${bot.cumulative_usd:,.2f}")
        for bot in bots
    ]
    print(format_table(["bot", "trades", "reverts", "cumulative profit"], rows))
    lead = bots[0].cumulative_usd - bots[1].cumulative_usd
    print(f"\nmaxmax-bot leads maxprice-bot by ${lead:,.2f}")


if __name__ == "__main__":
    main()
