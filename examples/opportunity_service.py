"""Run the streaming opportunity service end to end.

Walks the full service lifecycle:

1. generate a synthetic market and a seeded event stream;
2. start a sharded :class:`~repro.service.OpportunityService` with a
   live delta subscription on its top-K book;
3. stream the events through (watching sequenced deltas arrive as
   shards publish);
4. quiesce and verify the final book equals batch detection on the
   final market state — the service's parity guarantee;
5. print the top opportunities and the run's throughput / latency /
   cache metrics.

Run::

    PYTHONPATH=src python examples/opportunity_service.py --shards 4
"""

from __future__ import annotations

import argparse
import asyncio

from repro.data import SyntheticMarketGenerator
from repro.replay import generate_event_stream
from repro.service import OpportunityService, batch_detect_ranking, log_source


async def watch(subscription, seen: list) -> None:
    while True:
        delta = await subscription.next_delta()
        if delta is None:
            return
        seen.append(delta)


async def main_async(args) -> None:
    # 1. market + stream ------------------------------------------------
    market = SyntheticMarketGenerator(
        n_tokens=args.tokens, n_pools=args.pools, seed=args.seed,
        price_noise=0.015,
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=args.blocks,
        events_per_block=args.events_per_block,
        seed=args.seed,
    )
    print(f"market: {market}")
    print(f"stream: {log}")

    # 2. service + subscription -----------------------------------------
    service = OpportunityService(market, n_shards=args.shards)
    print(
        f"service: {service.n_shards} shard(s), "
        f"{service.total_loops} candidate loops, "
        f"loops per shard {service.plan.loops_per_shard()}"
    )
    subscription = service.book.subscribe(maxsize=4096)
    deltas: list = []

    # 3. stream through -------------------------------------------------
    report, _ = await asyncio.gather(
        service.run(log_source(log)), watch(subscription, deltas)
    )
    print(
        f"quiesced at book seq {report.book.seq}: "
        f"{report.events_ingested} events, {report.evaluations} loop "
        f"evaluations, {len(deltas)} deltas observed live"
    )

    # 4. parity with batch detection ------------------------------------
    expected = batch_detect_ranking(market, log)
    got = [(o.profit_usd, o.loop_id) for o in report.book.entries]
    assert got == expected, "service book diverged from batch detection!"
    print(f"parity with batch detect: OK ({len(got)} profitable loops)")

    # 5. top opportunities + metrics ------------------------------------
    print("top opportunities:")
    for i, opp in enumerate(report.top(args.top), start=1):
        print(f"  {i}. ${opp.profit_usd:>10,.2f}  {opp.path}  (block {opp.block})")
    e2e = report.metrics["latencies"]["end_to_end"]
    print(
        f"throughput {report.events_per_s:,.0f} ev/s, cache hit-rate "
        f"{report.cache_hit_rate:.1%}, end-to-end p50 "
        f"{e2e['p50_ms']:.2f}ms / p99 {e2e['p99_ms']:.2f}ms"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tokens", type=int, default=12)
    parser.add_argument("--pools", type=int, default=30)
    parser.add_argument("--blocks", type=int, default=10)
    parser.add_argument("--events-per-block", type=int, default=6)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--top", type=int, default=5)
    args = parser.parse_args()
    asyncio.run(main_async(args))


if __name__ == "__main__":
    main()
