#!/usr/bin/env python3
"""A searcher's playbook: from raw opportunities to an executable block.

Walks the extension layers on top of the paper's strategies:

1. detect every profitable 3-loop in a §VI-scale snapshot;
2. net out gas: which opportunities survive at the current gas price?
3. pack a single-block *bundle*: a maximum-weight set of loops that
   share no pool, so every prediction holds simultaneously;
4. execute the bundle atomically and reconcile realized vs predicted;
5. compare with exhaustive sequential harvesting (total extractable
   value of the snapshot).

Run:  python examples/searcher_playbook.py [--gwei 20]
"""

import argparse

from repro import paper_market
from repro.analysis import (
    format_table,
    greedy_harvest,
    independent_bundle,
    profitable_loops,
)
from repro.execution import ExecutionSimulator, GasModel, plan_from_result
from repro.strategies import MaxMaxStrategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gwei", type=float, default=20.0)
    args = parser.parse_args()

    market = paper_market()
    strategy = MaxMaxStrategy()
    gas = GasModel(gas_price_gwei=args.gwei)

    # 1. detect ---------------------------------------------------------
    _snapshot, loops = profitable_loops(market, 3)
    results = [strategy.evaluate(loop, market.prices) for loop in loops]
    print(f"opportunities: {len(loops)} profitable 3-loops")

    # 2. gas filter ------------------------------------------------------
    breakeven = gas.breakeven_gross_usd(3)
    survivors = [i for i, r in enumerate(results) if gas.is_profitable_after_gas(r)]
    print(
        f"gas: {args.gwei:g} gwei -> breakeven {breakeven:.2f}$ per loop; "
        f"{len(survivors)}/{len(loops)} loops survive"
    )

    # 3. bundle ----------------------------------------------------------
    bundle = [i for i in independent_bundle(loops, results) if i in set(survivors)]
    bundle_predicted = sum(results[i].monetized_profit for i in bundle)
    bundle_gas = sum(gas.cost_for_loop(loops[i]) for i in bundle)
    print(
        f"bundle: {len(bundle)} non-conflicting loops, "
        f"gross {bundle_predicted:,.2f}$, gas {bundle_gas:,.2f}$"
    )

    # 4. execute ----------------------------------------------------------
    simulator = ExecutionSimulator(registry=market.registry.copy())
    rows = []
    realized_total = 0.0
    for index in bundle[:10]:
        receipt = simulator.execute(
            plan_from_result(results[index], slippage_tolerance=1e-9)
        )
        realized = receipt.monetized(market.prices)
        realized_total += realized
        rows.append(
            (
                f"loop{index}",
                " -> ".join(t.symbol for t in loops[index].tokens),
                f"{results[index].monetized_profit:,.2f}$",
                f"{realized:,.2f}$",
                "revert" if receipt.reverted else "ok",
            )
        )
    print(format_table(["id", "loop", "predicted", "realized", "status"], rows))
    print(f"bundle realized (top 10 shown): {realized_total:,.2f}$")

    # 5. total extractable value -----------------------------------------
    report = greedy_harvest(
        market, strategy, min_profit_usd=breakeven, max_rounds=50
    )
    print(
        f"\nsequential harvest (floor = gas breakeven): {report} "
        f"(net of gas: {report.total_usd - gas.cost_usd(3) * len(report.rounds):,.2f}$)"
    )


if __name__ == "__main__":
    main()
