#!/usr/bin/env python3
"""The paper's §VII runtime comparison: MaxMax vs ConvexOptimization.

The paper reports that optimizing a length-10 loop takes milliseconds
with MaxMax (bisection per rotation) but seconds with the convex
program — a problem when Ethereum's block time is ~10 s.  This script
reproduces the scaling study on synthetic profitable rings.

Run:  python examples/runtime_study.py [--max-length 10] [--repeats 3]
"""

import argparse

from repro.analysis import render_runtime, runtime_scaling


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-length", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    lengths = tuple(
        length for length in (2, 3, 4, 5, 6, 8, 10, 12) if length <= args.max_length
    )
    result = runtime_scaling(lengths=lengths, repeats=args.repeats)
    print(render_runtime(result))
    print(
        "\npaper §VII: MaxMax stays at millisecond level for length 10; "
        "the convex solve is orders of magnitude slower — too slow for "
        "a 10 s block time at longer lengths."
    )


if __name__ == "__main__":
    main()
