#!/usr/bin/env python3
"""Quickstart: the paper's Section-V worked example, end to end.

Builds the three-pool loop X -> Y -> Z -> X, evaluates all four
strategies, and executes the best plan atomically through the
flash-loan simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    ArbitrageLoop,
    ConvexOptimizationStrategy,
    ExecutionSimulator,
    MaxMaxStrategy,
    MaxPriceStrategy,
    Pool,
    PoolRegistry,
    PriceMap,
    Token,
    TraditionalStrategy,
    plan_from_result,
)


def main() -> None:
    # --- 1. market state: three constant-product pools ----------------
    x, y, z = Token("X"), Token("Y"), Token("Z")
    pools = [
        Pool(x, y, 100.0, 200.0, pool_id="xy"),
        Pool(y, z, 300.0, 200.0, pool_id="yz"),
        Pool(z, x, 200.0, 400.0, pool_id="zx"),
    ]
    loop = ArbitrageLoop([x, y, z], pools)
    print(f"loop: {loop!r}")
    print(f"arbitrage criterion sum(log p) = {loop.log_rate_sum():.4f} (> 0)")

    # --- 2. CEX prices (the paper's monetization) ----------------------
    prices = PriceMap.from_symbols({"X": 2.0, "Y": 10.2, "Z": 20.0})

    # --- 3. evaluate every strategy ------------------------------------
    print("\nstrategy results:")
    strategies = [
        TraditionalStrategy(start_token=x),
        MaxPriceStrategy(),
        MaxMaxStrategy(),
        ConvexOptimizationStrategy(),
    ]
    results = {s.name: s.evaluate(loop, prices) for s in strategies}
    for name, result in results.items():
        print(f"  {result}")

    # --- 4. execute the convex plan atomically -------------------------
    best = results["convex"]
    registry = PoolRegistry(pools)
    simulator = ExecutionSimulator(registry=registry)  # flash loan built in
    receipt = simulator.execute(plan_from_result(best, slippage_tolerance=1e-9))
    print("\nexecution:")
    print(f"  reverted: {receipt.reverted}")
    print(f"  realized profit: {receipt.profit}")
    print(f"  realized monetized: ${receipt.monetized(prices):,.2f}")
    assert not receipt.reverted

    # --- 5. the opportunity is gone ------------------------------------
    print(f"\npost-trade criterion sum(log p) = {loop.log_rate_sum():.6f} (~ 0)")


if __name__ == "__main__":
    main()
