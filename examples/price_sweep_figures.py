#!/usr/bin/env python3
"""Regenerate the paper's Figs. 1-4 (the Section-V example analyses).

Fig. 1: the concave profit curve with its derivative-1 optimum.
Fig. 2: three rotation profits + the MaxMax envelope as Px sweeps 0-20$.
Fig. 3: ConvexOptimization vs MaxMax over the same sweep.
Fig. 4: the convex profit decomposed into (X, Y, Z) token amounts.

Series render as unicode sparklines; pass --csv-dir to export CSVs
suitable for exact re-plotting with matplotlib.

Run:  python examples/price_sweep_figures.py [--csv-dir out/]
"""

import argparse
from pathlib import Path

from repro.analysis import (
    fig1_profit_curve,
    fig2_rotation_sweep,
    fig3_convex_vs_maxmax_sweep,
    fig4_profit_composition,
    format_table,
    render_sweep,
    sparkline,
    sweep_to_csv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv-dir", type=Path, default=None)
    args = parser.parse_args()

    # Fig. 1 -------------------------------------------------------------
    fig1 = fig1_profit_curve()
    print("Fig. 1: profit(delta_x_in) for X -> Y -> Z -> X")
    print(f"  {sparkline(fig1.profits)}")
    print(
        f"  optimum at input={fig1.optimal_input:.3f} "
        f"profit={fig1.optimal_profit:.3f} "
        f"(d out/d in = {fig1.derivative_at_optimum:.6f})"
    )

    # Fig. 2 -------------------------------------------------------------
    fig2 = fig2_rotation_sweep()
    print("\n" + render_sweep(fig2, title="Fig. 2: rotations + MaxMax envelope"))

    # Fig. 3 -------------------------------------------------------------
    fig3 = fig3_convex_vs_maxmax_sweep()
    print("\n" + render_sweep(fig3, title="Fig. 3: Convex vs MaxMax"))
    gap = fig3.series("convex") - fig3.series("maxmax")
    print(f"convex - maxmax gap: min={gap.min():.4f}$ max={gap.max():.4f}$")

    # Fig. 4 -------------------------------------------------------------
    grid, rows, monetized = fig4_profit_composition()
    print("\nFig. 4: convex profit composition (every 2$ of Px):")
    table = [
        (f"{px:.1f}", f"{r[0]:.3f}", f"{r[1]:.3f}", f"{r[2]:.3f}", f"{m:.2f}")
        for px, r, m in zip(grid[::10], rows[::10], monetized[::10])
    ]
    print(format_table(["Px ($)", "X kept", "Y kept", "Z kept", "monetized ($)"], table))
    distinct = {tuple(r.round(1)) for r in rows}
    print(f"distinct optimum positions (rounded): {len(distinct)} (paper: ~6)")

    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        sweep_to_csv(fig2, args.csv_dir / "fig2.csv")
        sweep_to_csv(fig3, args.csv_dir / "fig3.csv")
        print(f"\nwrote CSVs to {args.csv_dir}/")


if __name__ == "__main__":
    main()
