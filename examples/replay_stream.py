"""Generate a market event stream and replay it incrementally.

Walks the full replay lifecycle:

1. generate a synthetic market and a seeded swap/mint/burn/tick stream;
2. save both to disk (JSON snapshot + JSONL event log) — the artifact
   pair every replay starts from;
3. reload and replay the stream block by block with dirty-set
   invalidation, reporting profit and mispricing per block;
4. replay again in full-recompute mode and verify bit-identical
   reports (the parity guarantee the test suite pins).

Run::

    PYTHONPATH=src python examples/replay_stream.py --blocks 10
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.data import MarketSnapshot, SyntheticMarketGenerator
from repro.replay import MarketEventLog, ReplayDriver, generate_event_stream
from repro.strategies import MaxMaxStrategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tokens", type=int, default=12)
    parser.add_argument("--pools", type=int, default=30)
    parser.add_argument("--blocks", type=int, default=10)
    parser.add_argument("--events-per-block", type=int, default=6)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out-dir", help="where to write the artifacts "
                        "(default: a temporary directory)")
    args = parser.parse_args()

    # 1. market + stream ------------------------------------------------
    market = SyntheticMarketGenerator(
        n_tokens=args.tokens, n_pools=args.pools, seed=args.seed,
        price_noise=0.015,
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=args.blocks,
        events_per_block=args.events_per_block,
        seed=args.seed,
    )
    print(f"market: {market}")
    print(f"stream: {log}")

    # 2. save the artifact pair -----------------------------------------
    out_dir = Path(args.out_dir) if args.out_dir else Path(tempfile.mkdtemp())
    snapshot_path = market.save(out_dir / "market.json")
    stream_path = log.save(out_dir / "stream.jsonl")
    print(f"saved {snapshot_path} and {stream_path}")

    # 3. reload + incremental replay ------------------------------------
    market = MarketSnapshot.load(snapshot_path)
    log = MarketEventLog.load(stream_path)
    driver = ReplayDriver(
        market, strategies={"maxmax": MaxMaxStrategy()}, mode="incremental"
    )
    result = driver.replay(log)
    print(f"\n{driver.total_loops} candidate loops; per-block surface:")
    for report in result.reports:
        print(
            f"  block {report.block}: {report.n_events} events, "
            f"{report.evaluated_loops}/{report.total_loops} loops re-evaluated, "
            f"{report.profitable_loops} profitable, "
            f"mispricing {report.mispricing_index:.5f}, "
            f"maxmax surface ${report.profit_usd['maxmax']:,.2f}"
        )
    print(
        f"total evaluations: {result.evaluations()} "
        f"(full recompute would be {driver.total_loops * len(result.reports)})"
    )

    # 4. parity against full recompute ----------------------------------
    reference = ReplayDriver(
        market, strategies={"maxmax": MaxMaxStrategy()}, mode="full"
    ).replay(log)
    assert all(
        a.same_numbers(b)
        for a, b in zip(result.reports, reference.reports, strict=True)
    ), "incremental diverged from full recompute"
    print("parity: incremental replay is bit-identical to full recompute")


if __name__ == "__main__":
    main()
