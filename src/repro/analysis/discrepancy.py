"""The Convex − MaxMax discrepancy study (the paper's future work).

The paper proves ``Convex >= MaxMax`` and observes empirically that
the two are *almost equal*, but explicitly leaves "the discrepancy
between these two kinds of strategies in theory" as future work.
This module measures the discrepancy empirically as a function of how
mispriced the market is:

* :func:`loop_discrepancy` — the relative gap on one loop;
* :func:`discrepancy_vs_noise` — sweep the market generator's
  mispricing sigma and summarize the gap distribution per level.

Findings on synthetic markets (see the bench): at §VI-like noise
(~1 %) the gap is numerically zero on almost every loop — the convex
optimum sits at a vertex where a single rotation is optimal.  The gap
only opens when mispricing is large relative to the fee (the §V
example, with its 2.67x round-trip rate, shows a 0.3 % gap), because
only then does holding a *mixture* of tokens beat the best single
rotation.  This quantifies why the paper's Fig. 7 shows points on the
45-degree line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap
from ..data.synthetic import SyntheticMarketGenerator
from ..graph.cycles import find_arbitrage_loops
from ..strategies.convexopt import ConvexOptimizationStrategy
from ..strategies.maxmax import MaxMaxStrategy

__all__ = ["DiscrepancyPoint", "loop_discrepancy", "discrepancy_vs_noise"]


@dataclass(frozen=True)
class DiscrepancyPoint:
    """Gap statistics at one mispricing level."""

    price_noise: float
    n_loops: int
    mean_rel_gap: float
    max_rel_gap: float
    frac_loops_with_gap: float
    mean_log_rate: float


def loop_discrepancy(
    loop: ArbitrageLoop,
    prices: PriceMap,
    backend: str = "slsqp",
) -> float:
    """Relative gap ``(convex - maxmax) / maxmax`` for one loop.

    Zero when MaxMax already attains the convex optimum; loops with
    zero MaxMax profit return 0 (both strategies find nothing, by the
    zero-solution theorem).
    """
    maxmax = MaxMaxStrategy().evaluate(loop, prices)
    if maxmax.monetized_profit <= 0:
        return 0.0
    convex = ConvexOptimizationStrategy(backend=backend).evaluate(loop, prices)
    gap = convex.monetized_profit - maxmax.monetized_profit
    return max(gap, 0.0) / maxmax.monetized_profit


def discrepancy_vs_noise(
    noise_levels: tuple[float, ...] = (0.01, 0.05, 0.15, 0.4),
    seed: int = 31,
    n_tokens: int = 15,
    n_pools: int = 40,
    gap_threshold: float = 1e-6,
) -> list[DiscrepancyPoint]:
    """Gap distribution per mispricing level on generated markets."""
    points = []
    for noise in noise_levels:
        market = SyntheticMarketGenerator(
            n_tokens=n_tokens, n_pools=n_pools, seed=seed, price_noise=noise
        ).generate()
        loops = find_arbitrage_loops(market.graph(), 3)
        gaps = [loop_discrepancy(loop, market.prices) for loop in loops]
        rates = [loop.log_rate_sum() for loop in loops]
        if gaps:
            arr = np.array(gaps)
            point = DiscrepancyPoint(
                price_noise=noise,
                n_loops=len(gaps),
                mean_rel_gap=float(arr.mean()),
                max_rel_gap=float(arr.max()),
                frac_loops_with_gap=float(np.mean(arr > gap_threshold)),
                mean_log_rate=float(np.mean(rates)),
            )
        else:
            point = DiscrepancyPoint(
                price_noise=noise,
                n_loops=0,
                mean_rel_gap=0.0,
                max_rel_gap=0.0,
                frac_loops_with_gap=0.0,
                mean_log_rate=0.0,
            )
        points.append(point)
    return points
