"""Parameter-sweep utilities.

Figures 2–4 sweep token X's CEX price from 0$ to 20$ and re-evaluate
every strategy at each point.  :func:`price_sweep` generalizes that:
sweep any one token's price over a grid and collect per-strategy
monetized profits (and optionally full results).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, Token
from ..engine import EvaluationEngine
from ..strategies.base import Strategy, StrategyResult

__all__ = ["SweepPoint", "SweepSeries", "price_sweep", "paper_px_grid"]


def paper_px_grid(max_price: float = 20.0, step: float = 0.2) -> np.ndarray:
    """The paper's grid: 0$ to ``max_price`` with interval ``step``
    (defaults reproduce Fig. 4's 0$–20$ at 0.2$).

    The first point is nudged off exact zero (1e-9) because a token
    with price exactly 0 never contributes monetized profit but keeps
    the optimization well-posed either way; the paper's plots start at
    0 too.
    """
    if max_price <= 0:
        raise ValueError(f"max_price must be positive, got {max_price:g}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step:g}")
    grid = np.arange(0.0, max_price + 1e-9, step)
    grid[0] = 1e-9
    return grid


@dataclass(frozen=True)
class SweepPoint:
    """All strategy results at one swept price."""

    price: float
    results: dict[str, StrategyResult]

    def monetized(self, strategy: str) -> float:
        return self.results[strategy].monetized_profit


@dataclass(frozen=True)
class SweepSeries:
    """A full sweep: one :class:`SweepPoint` per grid value."""

    token: Token
    points: tuple[SweepPoint, ...]

    def prices(self) -> np.ndarray:
        return np.array([p.price for p in self.points])

    def series(self, strategy: str) -> np.ndarray:
        """Monetized profits of one strategy across the sweep."""
        return np.array([p.monetized(strategy) for p in self.points])

    def strategies(self) -> tuple[str, ...]:
        return tuple(self.points[0].results) if self.points else ()


def price_sweep(
    loop: ArbitrageLoop,
    base_prices: PriceMap,
    token: Token,
    grid,
    strategies: dict[str, Strategy],
    engine: EvaluationEngine | None = None,
) -> SweepSeries:
    """Evaluate ``strategies`` on ``loop`` as ``token``'s price sweeps.

    ``strategies`` maps a label (used in figures) to a strategy
    instance; labels are free-form so the same strategy class can
    appear multiple times (e.g. three differently-anchored
    ``TraditionalStrategy`` instances for Fig. 2).

    The whole sweep is one :class:`~repro.engine.EvaluationEngine`
    job: closed-form strategies take the vectorized grid fast path,
    everything else falls back to the scalar walk (optionally
    parallelized by the engine's executor).  Pass ``engine`` to share
    its cache/executor across sweeps; the default builds a fresh
    serial engine.
    """
    engine = engine if engine is not None else EvaluationEngine()
    per_label = engine.sweep_results(strategies, loop, base_prices, token, grid)
    points = []
    for index, price in enumerate(grid):
        results = {label: per_label[label][index] for label in strategies}
        points.append(SweepPoint(price=float(price), results=results))
    return SweepSeries(token=token, points=tuple(points))
