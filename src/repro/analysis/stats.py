"""Statistics for the paper's scatter-plot comparisons.

Figures 5–7, 9, 10 are scatter plots of one strategy's monetized
profit against another's; their *message* is a geometric property of
the point cloud (all points on/below the 45-degree line; points nearly
on the line).  :class:`ScatterStats` quantifies those properties so
the benchmarks can assert them numerically instead of eyeballing
pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ScatterStats", "scatter_stats"]


@dataclass(frozen=True)
class ScatterStats:
    """Summary of points ``(x_i, y_i)`` vs the 45-degree line.

    Attributes
    ----------
    n:
        Number of points.
    frac_below_or_on:
        Fraction with ``y <= x`` (up to ``tol`` relative slack).
    frac_strictly_below:
        Fraction with ``y < x`` beyond tolerance — for Fig. 6 this is
        the share of loops where MaxPrice leaves money on the table.
    max_rel_gap:
        ``max((x - y)/max(x, eps))`` — the worst shortfall of y vs x.
    mean_rel_gap:
        Mean relative shortfall.
    max_rel_excess:
        ``max((y - x)/max(x, eps))`` — how far any point rises *above*
        the line (should be ~0 where theory says y <= x).
    pearson_r:
        Correlation of x and y (1.0 when the clouds coincide).
    """

    n: int
    frac_below_or_on: float
    frac_strictly_below: float
    max_rel_gap: float
    mean_rel_gap: float
    max_rel_excess: float
    pearson_r: float


def scatter_stats(
    x: Sequence[float],
    y: Sequence[float],
    tol: float = 1e-9,
) -> ScatterStats:
    """Compute :class:`ScatterStats` for paired samples.

    ``tol`` is the relative slack for "on the line" judgments, scaled
    by each point's ``max(|x|, 1)``.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(
            f"x and y must be equal-length 1-D sequences, got {xa.shape} and {ya.shape}"
        )
    if xa.size == 0:
        raise ValueError("scatter statistics need at least one point")
    scale = np.maximum(np.abs(xa), 1.0)
    below_or_on = ya <= xa + tol * scale
    strictly_below = ya < xa - tol * scale
    denom = np.maximum(xa, 1e-12)
    gap = np.maximum(xa - ya, 0.0) / denom
    excess = np.maximum(ya - xa, 0.0) / denom
    if xa.size >= 2 and np.std(xa) > 0 and np.std(ya) > 0:
        r = float(np.corrcoef(xa, ya)[0, 1])
    else:
        r = 1.0 if np.allclose(xa, ya) else 0.0
    return ScatterStats(
        n=int(xa.size),
        frac_below_or_on=float(np.mean(below_or_on)),
        frac_strictly_below=float(np.mean(strictly_below)),
        max_rel_gap=float(np.max(gap)),
        mean_rel_gap=float(np.mean(gap)),
        max_rel_excess=float(np.max(excess)),
        pearson_r=r,
    )
