"""Plain-text rendering of experiment results.

The paper's figures are matplotlib scatter/line plots; offline and in
CI we render the same series as ASCII tables and simple unicode spark
plots, and export CSV so anyone with a plotting stack can regenerate
the visuals verbatim.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .experiments import RuntimeResult, ScatterResult
from .stats import ScatterStats
from .sweep import SweepSeries

__all__ = [
    "format_table",
    "sparkline",
    "render_scatter",
    "render_sweep",
    "render_runtime",
    "scatter_to_csv",
    "sweep_to_csv",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width ASCII table (no external deps)."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e6 or abs(cell) < 1e-4:
            return f"{cell:.3e}"
        return f"{cell:,.4f}".rstrip("0").rstrip(".")
    return str(cell)


def sparkline(values: Sequence[float]) -> str:
    """Unicode mini-chart of a series (constant series render flat)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(np.min(arr)), float(np.max(arr))
    if hi - lo < 1e-15:
        return _SPARK_CHARS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(s))] for s in scaled)


def _stats_lines(stats: ScatterStats) -> list[str]:
    return [
        f"points                 : {stats.n}",
        f"on/below 45-deg line   : {stats.frac_below_or_on:.1%}",
        f"strictly below line    : {stats.frac_strictly_below:.1%}",
        f"max relative gap       : {stats.max_rel_gap:.3%}",
        f"mean relative gap      : {stats.mean_rel_gap:.3%}",
        f"max relative excess    : {stats.max_rel_excess:.3e}",
        f"pearson r              : {stats.pearson_r:.6f}",
    ]


def render_scatter(result: ScatterResult, title: str = "") -> str:
    """Human-readable summary of a scatter comparison."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"x = {result.x_label}, y = {result.y_label}")
    lines.extend(_stats_lines(result.stats))
    order = np.argsort(result.x)[::-1][:10]
    rows = [
        (result.loop_ids[i], result.point_labels[i], result.x[i], result.y[i])
        for i in order
    ]
    lines.append("")
    lines.append("top points by x:")
    lines.append(
        format_table(["loop", "label", result.x_label, result.y_label], rows)
    )
    return "\n".join(lines)


def render_sweep(series: SweepSeries, title: str = "") -> str:
    """Sparkline view of every strategy across a price sweep."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    prices = series.prices()
    lines.append(
        f"sweeping {series.token.symbol} price over "
        f"[{prices[0]:g}, {prices[-1]:g}] ({prices.size} points)"
    )
    for label in series.strategies():
        values = series.series(label)
        lines.append(
            f"{label:>12}: {sparkline(values)}  "
            f"min={values.min():,.2f} max={values.max():,.2f}"
        )
    return "\n".join(lines)


def render_runtime(result: RuntimeResult, title: str = "§VII runtime") -> str:
    rows = [
        (length, mm * 1e3, cv * 1e3, cv / mm if mm > 0 else float("inf"))
        for length, mm, cv in zip(
            result.lengths, result.maxmax_seconds, result.convex_seconds
        )
    ]
    table = format_table(
        ["loop length", "maxmax (ms)", "convex (ms)", "convex/maxmax"], rows
    )
    return f"{title}\n{'=' * len(title)}\n{table}"


def scatter_to_csv(result: ScatterResult, path: str | Path | None = None) -> str:
    """CSV of a scatter result; writes to ``path`` when given."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["loop_id", "label", result.x_label, result.y_label])
    for i in range(result.x.size):
        writer.writerow(
            [result.loop_ids[i], result.point_labels[i], result.x[i], result.y[i]]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def sweep_to_csv(series: SweepSeries, path: str | Path | None = None) -> str:
    """CSV of a sweep (price column + one column per strategy)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    labels = list(series.strategies())
    writer.writerow([f"price_{series.token.symbol}"] + labels)
    columns = {label: series.series(label) for label in labels}
    for i, price in enumerate(series.prices()):
        writer.writerow([price] + [columns[label][i] for label in labels])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
