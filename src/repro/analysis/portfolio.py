"""Multi-loop portfolio analysis: which loops can be harvested together?

The paper evaluates loops one at a time, but a searcher facing ~123
simultaneous opportunities must account for *interaction*: loops that
share a pool compete — executing one moves the reserves under the
other.  This module provides:

* :func:`conflict_graph` — loops as nodes, edges between loops sharing
  at least one pool;
* :func:`independent_bundle` — a greedy maximum-weight independent set
  of non-conflicting loops (safe to execute in one block without
  re-evaluation), greedy by monetized profit;
* :func:`greedy_harvest` — the sequential alternative: repeatedly
  execute the best remaining loop on the live market and re-detect,
  until profits fall below a floor (optionally a gas floor).

``greedy_harvest`` is also the library's answer to "what is the total
extractable value of a snapshot?", used by the harvest benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap
from ..data.snapshot import MarketSnapshot
from ..engine import EvaluationEngine
from ..execution.plan import plan_from_result
from ..execution.simulator import ExecutionSimulator
from ..strategies.base import Strategy, StrategyResult

__all__ = [
    "conflict_graph",
    "independent_bundle",
    "HarvestRound",
    "HarvestReport",
    "greedy_harvest",
]


def conflict_graph(loops: list[ArbitrageLoop]) -> nx.Graph:
    """Graph with one node per loop; edges join loops sharing a pool."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(loops)))
    pool_users: dict[str, list[int]] = {}
    for index, loop in enumerate(loops):
        for pool in loop.pools:
            pool_users.setdefault(pool.pool_id, []).append(index)
    for users in pool_users.values():
        for i, a in enumerate(users):
            for b in users[i + 1:]:
                graph.add_edge(a, b)
    return graph


def independent_bundle(
    loops: list[ArbitrageLoop],
    results: list[StrategyResult],
) -> list[int]:
    """Greedy max-weight independent set: loop indices that share no
    pool, picked in descending monetized profit.

    The returned bundle can be executed in a single transaction
    without any trade invalidating another's prediction.
    """
    if len(loops) != len(results):
        raise ValueError(
            f"{len(loops)} loops but {len(results)} results"
        )
    conflicts = conflict_graph(loops)
    order = sorted(
        range(len(loops)), key=lambda i: -results[i].monetized_profit
    )
    chosen: list[int] = []
    blocked: set[int] = set()
    for index in order:
        if index in blocked or results[index].monetized_profit <= 0:
            continue
        chosen.append(index)
        blocked.add(index)
        blocked.update(conflicts.neighbors(index))
    return chosen


@dataclass(frozen=True)
class HarvestRound:
    """One round of sequential harvesting."""

    loop: ArbitrageLoop
    predicted_usd: float
    realized_usd: float
    reverted: bool


@dataclass(frozen=True)
class HarvestReport:
    """Outcome of a full greedy harvest."""

    rounds: tuple[HarvestRound, ...]
    total_usd: float
    remaining_loops: int

    def __str__(self) -> str:
        return (
            f"harvested ${self.total_usd:,.2f} over {len(self.rounds)} rounds; "
            f"{self.remaining_loops} sub-floor loops remain"
        )


def greedy_harvest(
    snapshot: MarketSnapshot,
    strategy: Strategy,
    length: int = 3,
    min_profit_usd: float = 0.0,
    max_rounds: int = 1000,
    prices: PriceMap | None = None,
    engine: EvaluationEngine | None = None,
) -> HarvestReport:
    """Repeatedly execute the best loop until none clears the floor.

    Operates on a *copy* of the snapshot's pools; the input snapshot is
    left untouched.  Each round re-detects loops on the mutated market
    (executing a loop can create or destroy others through shared
    pools), evaluates ``strategy`` on each, executes the best
    atomically, and records predicted vs realized profit.

    Both per-round steps go through the evaluation engine: candidate
    loops are enumerated once (topology never changes mid-harvest) and
    only re-filtered on live reserves.  Batchable strategies re-score
    each round through the engine's memoized batch evaluator (hop
    matrices compiled once per topology, reserves refreshed per call);
    strategies on the scalar path reuse cached rotation quotes for
    every loop whose pools the previous round's execution did not
    touch.
    """
    prices = prices if prices is not None else snapshot.prices
    engine = engine if engine is not None else EvaluationEngine()
    registry = snapshot.registry.copy()
    simulator = ExecutionSimulator(registry=registry)
    rounds: list[HarvestRound] = []
    total = 0.0
    for _ in range(max_rounds):
        loops = engine.find_profitable_loops(registry, length)
        if not loops:
            break
        results = engine.evaluate_strategy(strategy, loops, prices)
        best_index = max(range(len(results)), key=lambda i: results[i].monetized_profit)
        best = results[best_index]
        if best.monetized_profit <= min_profit_usd:
            break
        receipt = simulator.execute(
            plan_from_result(best, slippage_tolerance=1e-9)
        )
        realized = 0.0 if receipt.reverted else receipt.monetized(prices)
        rounds.append(
            HarvestRound(
                loop=loops[best_index],
                predicted_usd=best.monetized_profit,
                realized_usd=realized,
                reverted=receipt.reverted,
            )
        )
        if receipt.reverted:
            break  # deterministic market: a revert means a logic bug
        total += realized
    remaining = engine.count_profitable_loops(registry, length)
    return HarvestReport(
        rounds=tuple(rounds), total_usd=total, remaining_loops=remaining
    )
