"""One harness function per paper figure (DESIGN.md §3).

Every function returns a plain result object holding exactly the
series the corresponding figure plots, so benchmarks, the CLI, tests
and EXPERIMENTS.md all consume the same source of truth.

Figure index (paper has no numbered tables):

========  ==========================================================
Fig. 1    profit curve of a rotation; optimum where d out/d in = 1
Fig. 2    Px sweep: three rotation curves + MaxMax envelope
Fig. 3    Px sweep: Convex vs MaxMax
Fig. 4    Px sweep: convex profit decomposed into token amounts
§V        the worked example's in-text numbers
Fig. 5    MaxMax vs traditional scatter (length-3 loops)
Fig. 6    MaxPrice vs MaxMax scatter
Fig. 7    Convex vs MaxMax scatter
Fig. 8    per-token profit vectors, Convex vs MaxMax
Fig. 9    length-4: traditional vs Convex scatter
Fig. 10   length-4: MaxMax vs Convex scatter
§VII      runtime scaling of MaxMax vs Convex with loop length
§VI       snapshot calibration counts
========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.loop import ArbitrageLoop
from ..core.types import Token
from ..data.example import TOKEN_X, section5_loop, section5_prices
from ..data.loops import synthetic_loop, synthetic_loop_prices
from ..data.snapshot import MarketSnapshot
from ..data.synthetic import paper_market
from ..engine import EvaluationEngine
from ..graph.cycles import find_arbitrage_loops
from ..strategies.base import Strategy
from ..strategies.convexopt import ConvexOptimizationStrategy
from ..strategies.maxmax import MaxMaxStrategy
from ..strategies.maxprice import MaxPriceStrategy
from ..strategies.traditional import TraditionalStrategy
from .stats import ScatterStats, scatter_stats
from .sweep import SweepSeries, paper_px_grid, price_sweep

__all__ = [
    "Fig1Result",
    "ScatterResult",
    "TokenProfitResult",
    "RuntimeResult",
    "CalibrationResult",
    "fig1_profit_curve",
    "fig2_rotation_sweep",
    "fig3_convex_vs_maxmax_sweep",
    "fig4_profit_composition",
    "section5_numbers",
    "fig5_maxmax_vs_traditional",
    "fig6_maxprice_vs_maxmax",
    "fig7_convex_vs_maxmax",
    "fig8_token_profit_overlap",
    "fig9_len4_traditional",
    "fig10_len4_maxmax",
    "runtime_scaling",
    "snapshot_calibration",
    "profitable_loops",
]


# ----------------------------------------------------------------------
# result containers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fig1Result:
    """Series of Fig. 1: profit vs input, plus the analytic optimum."""

    inputs: np.ndarray
    profits: np.ndarray
    optimal_input: float
    optimal_profit: float
    derivative_at_optimum: float


@dataclass(frozen=True)
class ScatterResult:
    """A scatter comparison: per-loop x/y monetized profits."""

    x_label: str
    y_label: str
    x: np.ndarray
    y: np.ndarray
    loop_ids: tuple[str, ...]
    point_labels: tuple[str, ...]
    stats: ScatterStats


@dataclass(frozen=True)
class TokenProfitResult:
    """Fig. 8 data: per-loop per-token profits under two strategies."""

    loops: tuple[str, ...]
    maxmax_profits: tuple[dict, ...]
    convex_profits: tuple[dict, ...]
    max_component_gap: float


@dataclass(frozen=True)
class RuntimeResult:
    """§VII data: per-length average runtimes (seconds)."""

    lengths: tuple[int, ...]
    maxmax_seconds: tuple[float, ...]
    convex_seconds: tuple[float, ...]
    repeats: int

    def speedup(self) -> tuple[float, ...]:
        """Convex time / MaxMax time per length."""
        return tuple(
            c / m if m > 0 else float("inf")
            for m, c in zip(self.maxmax_seconds, self.convex_seconds)
        )


@dataclass(frozen=True)
class CalibrationResult:
    """§VI counts for a generated snapshot."""

    tokens: int
    pools: int
    profitable_loops_len3: int
    profitable_loops_len4: int
    paper_tokens: int = 51
    paper_pools: int = 208
    paper_loops_len3: int = 123


# ----------------------------------------------------------------------
# Section V / Figs. 1-4 (worked example)
# ----------------------------------------------------------------------


def fig1_profit_curve(
    loop: ArbitrageLoop | None = None,
    start: Token | None = None,
    n_points: int = 200,
    max_input: float = 30.0,
) -> Fig1Result:
    """Fig. 1: the concave profit curve and its derivative-1 optimum."""
    loop = loop if loop is not None else section5_loop()
    start = start if start is not None else loop.tokens[0]
    comp = loop.rotation_from(start).composition()
    inputs = np.linspace(0.0, max_input, n_points)
    profits = np.array([comp.profit(t) for t in inputs])
    t_star = comp.optimal_input()
    return Fig1Result(
        inputs=inputs,
        profits=profits,
        optimal_input=t_star,
        optimal_profit=comp.profit(t_star) if t_star > 0 else 0.0,
        derivative_at_optimum=comp.derivative(t_star),
    )


def fig2_rotation_sweep(
    grid=None, engine: EvaluationEngine | None = None
) -> SweepSeries:
    """Fig. 2: per-rotation monetized profit + MaxMax, sweeping Px.

    The full grid is one engine job; all five series share one
    rotation-quote cache, so the three traditional anchors, MaxMax,
    and MaxPrice together cost three optimizations total.
    """
    loop = section5_loop()
    grid = paper_px_grid() if grid is None else grid
    strategies: dict[str, Strategy] = {
        f"start_{token.symbol}": TraditionalStrategy(start_token=token)
        for token in loop.tokens
    }
    strategies["maxmax"] = MaxMaxStrategy()
    strategies["maxprice"] = MaxPriceStrategy()
    return price_sweep(loop, section5_prices(), TOKEN_X, grid, strategies, engine=engine)


def fig3_convex_vs_maxmax_sweep(
    grid=None, backend: str = "slsqp", engine: EvaluationEngine | None = None
) -> SweepSeries:
    """Fig. 3: Convex vs MaxMax monetized profit, sweeping Px.

    MaxMax rides the vectorized fast path; the convex strategy is
    price-dependent and falls back to the scalar walk (its internal
    MaxMax floor still hits the shared cache).
    """
    loop = section5_loop()
    grid = paper_px_grid() if grid is None else grid
    strategies: dict[str, Strategy] = {
        "maxmax": MaxMaxStrategy(),
        "convex": ConvexOptimizationStrategy(backend=backend),
    }
    return price_sweep(loop, section5_prices(), TOKEN_X, grid, strategies, engine=engine)


def fig4_profit_composition(grid=None, backend: str = "slsqp"):
    """Fig. 4: convex profit as (X, Y, Z) token amounts along the sweep.

    Returns ``(prices, token_amount_rows, monetized)`` where each row
    is the net amount of (X, Y, Z) kept as profit at that Px.
    """
    loop = section5_loop()
    grid = paper_px_grid() if grid is None else grid
    strategy = ConvexOptimizationStrategy(backend=backend)
    rows = []
    monetized = []
    for px in grid:
        prices = section5_prices(px=float(px))
        result = strategy.evaluate(loop, prices)
        net = result.profit.as_mapping()
        rows.append(tuple(net.get(token, 0.0) for token in loop.tokens))
        monetized.append(result.monetized_profit)
    return np.asarray(grid, dtype=float), np.array(rows), np.array(monetized)


def section5_numbers(backend: str = "slsqp") -> dict:
    """The §V in-text numbers, recomputed."""
    loop = section5_loop()
    prices = section5_prices()
    out: dict = {}
    for token in loop.tokens:
        result = TraditionalStrategy(start_token=token).evaluate(loop, prices)
        out[f"input_{token.symbol}"] = result.amount_in
        out[f"profit_{token.symbol}"] = result.profit.as_mapping()[token]
        out[f"monetized_from_{token.symbol}"] = result.monetized_profit
    out["maxmax"] = MaxMaxStrategy().evaluate(loop, prices).monetized_profit
    out["maxprice"] = MaxPriceStrategy().evaluate(loop, prices).monetized_profit
    convex = ConvexOptimizationStrategy(backend=backend).evaluate(loop, prices)
    out["convex"] = convex.monetized_profit
    net = convex.profit.as_mapping()
    for token in loop.tokens:
        out[f"convex_profit_{token.symbol}"] = net.get(token, 0.0)
    out["spot_product_no_fee"] = 2.0 * (2.0 / 3.0) * 2.0
    return out


# ----------------------------------------------------------------------
# §VI empirical comparisons (Figs. 5-10)
# ----------------------------------------------------------------------


def profitable_loops(
    snapshot: MarketSnapshot | None = None, length: int = 3
) -> tuple[MarketSnapshot, list[ArbitrageLoop]]:
    """The §VI pipeline: snapshot -> filtered graph -> profitable loops."""
    snapshot = snapshot if snapshot is not None else paper_market()
    graph = snapshot.graph()
    loops = find_arbitrage_loops(graph, length)
    return snapshot, loops


def fig5_maxmax_vs_traditional(
    snapshot: MarketSnapshot | None = None,
    length: int = 3,
    engine: EvaluationEngine | None = None,
) -> ScatterResult:
    """Fig. 5 (Fig. 9 uses length=4): traditional points vs MaxMax.

    Each loop contributes ``length`` points — one per rotation — all
    sharing the loop's MaxMax value on the x-axis.  One engine job:
    the MaxMax pass fills the rotation cache, so every traditional
    point afterwards is a cache hit.
    """
    snapshot, loops = profitable_loops(snapshot, length)
    engine = engine if engine is not None else EvaluationEngine()
    mm_results = engine.evaluate_strategy(MaxMaxStrategy(), loops, snapshot.prices)
    xs, ys, loop_ids, labels = [], [], [], []
    for index, loop in enumerate(loops):
        mm = mm_results[index].monetized_profit
        for token in loop.tokens:
            trad = engine.evaluate(
                TraditionalStrategy(start_token=token), loop, snapshot.prices
            )
            xs.append(mm)
            ys.append(trad.monetized_profit)
            loop_ids.append(f"loop{index}")
            labels.append(token.symbol)
    return ScatterResult(
        x_label="maxmax",
        y_label="traditional",
        x=np.array(xs),
        y=np.array(ys),
        loop_ids=tuple(loop_ids),
        point_labels=tuple(labels),
        stats=scatter_stats(xs, ys),
    )


def fig6_maxprice_vs_maxmax(
    snapshot: MarketSnapshot | None = None,
    length: int = 3,
    engine: EvaluationEngine | None = None,
) -> ScatterResult:
    """Fig. 6: MaxPrice monetized profit vs MaxMax per loop.

    One batched engine job per strategy; the MaxPrice pass reuses the
    rotation quotes the MaxMax pass already computed.
    """
    snapshot, loops = profitable_loops(snapshot, length)
    engine = engine if engine is not None else EvaluationEngine()
    per_label = engine.evaluate_loops(
        {"maxmax": MaxMaxStrategy(), "maxprice": MaxPriceStrategy()},
        loops,
        snapshot.prices,
    )
    xs = [result.monetized_profit for result in per_label["maxmax"]]
    ys = [result.monetized_profit for result in per_label["maxprice"]]
    loop_ids = [f"loop{index}" for index in range(len(loops))]
    return ScatterResult(
        x_label="maxmax",
        y_label="maxprice",
        x=np.array(xs),
        y=np.array(ys),
        loop_ids=tuple(loop_ids),
        point_labels=tuple(loop_ids),
        stats=scatter_stats(xs, ys),
    )


def fig7_convex_vs_maxmax(
    snapshot: MarketSnapshot | None = None,
    length: int = 3,
    backend: str = "slsqp",
    engine: EvaluationEngine | None = None,
) -> ScatterResult:
    """Fig. 7 (Fig. 10 uses length=4): Convex vs MaxMax per loop.

    Batched: the convex pass's internal MaxMax warm start / floor and
    the explicit MaxMax pass share one rotation cache, halving the
    fixed-start work.
    """
    snapshot, loops = profitable_loops(snapshot, length)
    engine = engine if engine is not None else EvaluationEngine()
    per_label = engine.evaluate_loops(
        {
            "convex": ConvexOptimizationStrategy(backend=backend),
            "maxmax": MaxMaxStrategy(),
        },
        loops,
        snapshot.prices,
    )
    xs = [result.monetized_profit for result in per_label["convex"]]
    ys = [result.monetized_profit for result in per_label["maxmax"]]
    loop_ids = [f"loop{index}" for index in range(len(loops))]
    return ScatterResult(
        x_label="convex",
        y_label="maxmax",
        x=np.array(xs),
        y=np.array(ys),
        loop_ids=tuple(loop_ids),
        point_labels=tuple(loop_ids),
        stats=scatter_stats(xs, ys),
    )


def fig8_token_profit_overlap(
    snapshot: MarketSnapshot | None = None,
    length: int = 3,
    backend: str = "slsqp",
    engine: EvaluationEngine | None = None,
) -> TokenProfitResult:
    """Fig. 8: per-token profit vectors of Convex vs MaxMax.

    ``max_component_gap`` is the largest absolute per-token difference
    between the two strategies' profit vectors, normalized by the
    loop's MaxMax profit scale — the figure's visual 'overlap' claim
    made numeric.
    """
    snapshot, loops = profitable_loops(snapshot, length)
    engine = engine if engine is not None else EvaluationEngine()
    per_label = engine.evaluate_loops(
        {
            "maxmax": MaxMaxStrategy(),
            "convex": ConvexOptimizationStrategy(backend=backend),
        },
        loops,
        snapshot.prices,
    )
    loop_ids, mm_rows, cv_rows = [], [], []
    worst = 0.0
    for index, loop in enumerate(loops):
        mm = per_label["maxmax"][index]
        cv = per_label["convex"][index]
        mm_net = {t.symbol: a for t, a in mm.profit.as_mapping().items()}
        cv_net = {t.symbol: a for t, a in cv.profit.as_mapping().items()}
        loop_ids.append(f"loop{index}")
        mm_rows.append(mm_net)
        cv_rows.append(cv_net)
        scale = max(
            1e-12,
            max((abs(a) for a in mm_net.values()), default=0.0),
        )
        for symbol in set(mm_net) | set(cv_net):
            gap = abs(mm_net.get(symbol, 0.0) - cv_net.get(symbol, 0.0)) / scale
            worst = max(worst, gap)
    return TokenProfitResult(
        loops=tuple(loop_ids),
        maxmax_profits=tuple(mm_rows),
        convex_profits=tuple(cv_rows),
        max_component_gap=worst,
    )


def fig9_len4_traditional(
    snapshot: MarketSnapshot | None = None,
    engine: EvaluationEngine | None = None,
) -> ScatterResult:
    """Fig. 9: traditional vs Convex on length-4 loops."""
    snapshot, loops = profitable_loops(snapshot, 4)
    engine = engine if engine is not None else EvaluationEngine()
    cv_results = engine.evaluate_strategy(
        ConvexOptimizationStrategy(backend="slsqp"), loops, snapshot.prices
    )
    xs, ys, loop_ids, labels = [], [], [], []
    for index, loop in enumerate(loops):
        cv = cv_results[index].monetized_profit
        for token in loop.tokens:
            trad = engine.evaluate(
                TraditionalStrategy(start_token=token), loop, snapshot.prices
            )
            xs.append(cv)
            ys.append(trad.monetized_profit)
            loop_ids.append(f"loop{index}")
            labels.append(token.symbol)
    return ScatterResult(
        x_label="convex",
        y_label="traditional",
        x=np.array(xs),
        y=np.array(ys),
        loop_ids=tuple(loop_ids),
        point_labels=tuple(labels),
        stats=scatter_stats(xs, ys),
    )


def fig10_len4_maxmax(snapshot: MarketSnapshot | None = None) -> ScatterResult:
    """Fig. 10: MaxMax vs Convex on length-4 loops."""
    return fig7_convex_vs_maxmax(snapshot, length=4)


# ----------------------------------------------------------------------
# §VII runtime and §VI calibration
# ----------------------------------------------------------------------


def runtime_scaling(
    lengths: tuple[int, ...] = (3, 4, 5, 6, 8, 10),
    repeats: int = 3,
    backend: str = "slsqp",
    seed: int = 7,
) -> RuntimeResult:
    """§VII: wall-clock of MaxMax vs Convex as loop length grows."""
    maxmax = MaxMaxStrategy()
    convex = ConvexOptimizationStrategy(backend=backend)
    mm_times, cv_times = [], []
    for length in lengths:
        loop = synthetic_loop(length, seed=seed)
        prices = synthetic_loop_prices(loop, seed=seed)
        mm_best, cv_best = float("inf"), float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            maxmax.evaluate(loop, prices)
            mm_best = min(mm_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            convex.evaluate(loop, prices)
            cv_best = min(cv_best, time.perf_counter() - t0)
        mm_times.append(mm_best)
        cv_times.append(cv_best)
    return RuntimeResult(
        lengths=tuple(lengths),
        maxmax_seconds=tuple(mm_times),
        convex_seconds=tuple(cv_times),
        repeats=repeats,
    )


def snapshot_calibration(
    seed: int = 20230901, include_len4: bool = True
) -> CalibrationResult:
    """§VI: token/pool/profitable-loop counts of the generated market."""
    snapshot = paper_market(seed=seed)
    graph = snapshot.graph()
    loops3 = find_arbitrage_loops(graph, 3)
    loops4 = find_arbitrage_loops(graph, 4) if include_len4 else []
    return CalibrationResult(
        tokens=graph.number_of_nodes(),
        pools=graph.number_of_edges(),
        profitable_loops_len3=len(loops3),
        profitable_loops_len4=len(loops4),
    )
