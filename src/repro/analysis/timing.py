"""Micro-timing helpers shared by the runtime experiment and benches."""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["best_of", "Timer"]


def best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Best (minimum) wall-clock seconds over ``repeats`` calls.

    Minimum is the standard estimator for CPU-bound micro-timings: it
    filters scheduler noise, which only ever adds time.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        self.seconds = float("nan")
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._t0
