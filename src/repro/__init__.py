"""repro — reproduction of "Profit Maximization In Arbitrage Loops" (ICDCS 2024).

A production-quality Python library for monetized cyclic arbitrage on
constant-product AMMs (Uniswap V2 style):

* an AMM substrate with exact V2 swap math and a linear-fractional
  composition algebra giving closed-form single-rotation optima;
* token-graph construction and loop detection (exhaustive length-k
  enumeration and Moore–Bellman–Ford negative cycles);
* the paper's four strategies — traditional, MaxPrice, MaxMax,
  ConvexOptimization — with two independent convex solver backends;
* deterministic synthetic market data calibrated to the paper's §VI
  snapshot, a CEX price-oracle layer, and an atomic execution
  simulator with flash-loan semantics;
* an experiment harness regenerating every figure in the paper.

Quickstart::

    from repro import (
        Token, Pool, PriceMap, ArbitrageLoop,
        MaxMaxStrategy, ConvexOptimizationStrategy,
    )

    X, Y, Z = Token("X"), Token("Y"), Token("Z")
    loop = ArbitrageLoop(
        [X, Y, Z],
        [Pool(X, Y, 100, 200), Pool(Y, Z, 300, 200), Pool(Z, X, 200, 400)],
    )
    prices = PriceMap.from_symbols({"X": 2.0, "Y": 10.2, "Z": 20.0})
    print(MaxMaxStrategy().evaluate(loop, prices))
    print(ConvexOptimizationStrategy().evaluate(loop, prices))
"""

from .amm import (
    DEFAULT_FEE,
    BlockEvent,
    BurnEvent,
    MarketEvent,
    MintEvent,
    Pool,
    PoolRegistry,
    PriceTickEvent,
    SwapComposition,
    SwapEvent,
    compose_hops,
)
from .cex import PriceOracle, RandomWalkOracle, StaticPriceOracle, lognormal_prices
from .core import (
    ArbitrageLoop,
    PriceMap,
    ProfitVector,
    ReproError,
    Rotation,
    Token,
    TokenAmount,
)
from .data import (
    MarketSnapshot,
    SyntheticMarketGenerator,
    paper_market,
    section5_loop,
    section5_prices,
    section5_snapshot,
    synthetic_loop,
)
from .engine import (
    EvaluationBatch,
    EvaluationEngine,
    EvaluationRequest,
    ParallelExecutor,
    PoolStateCache,
    SerialExecutor,
)
from .execution import (
    ExecutionPlan,
    ExecutionReceipt,
    ExecutionSimulator,
    FlashLoanProvider,
    plan_from_result,
)
from .graph import (
    build_token_graph,
    find_arbitrage_loops,
    find_negative_cycle,
    graph_summary,
)
from .market import (
    BatchEvaluator,
    MarketArrays,
)
from .replay import (
    BlockReport,
    MarketEventLog,
    ReplayDriver,
    ReplayResult,
    generate_event_stream,
)
from .service import (
    Opportunity,
    OpportunityBook,
    OpportunityService,
    ServiceMetrics,
    ServiceReport,
    ShardPlan,
    ShardWorker,
)
from .strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
    Strategy,
    StrategyResult,
    TraditionalStrategy,
    make_strategy,
)

__version__ = "1.5.0"

__all__ = [
    "ArbitrageLoop",
    "BlockEvent",
    "BlockReport",
    "BurnEvent",
    "BatchEvaluator",
    "ConvexOptimizationStrategy",
    "DEFAULT_FEE",
    "EvaluationBatch",
    "EvaluationEngine",
    "EvaluationRequest",
    "ExecutionPlan",
    "ExecutionReceipt",
    "ExecutionSimulator",
    "FlashLoanProvider",
    "MarketArrays",
    "MarketEvent",
    "MarketEventLog",
    "MarketSnapshot",
    "MaxMaxStrategy",
    "MintEvent",
    "MaxPriceStrategy",
    "Opportunity",
    "OpportunityBook",
    "OpportunityService",
    "ParallelExecutor",
    "Pool",
    "PoolRegistry",
    "PoolStateCache",
    "PriceMap",
    "PriceOracle",
    "PriceTickEvent",
    "ProfitVector",
    "RandomWalkOracle",
    "ReplayDriver",
    "ReplayResult",
    "ReproError",
    "Rotation",
    "SerialExecutor",
    "ServiceMetrics",
    "ServiceReport",
    "ShardPlan",
    "ShardWorker",
    "StaticPriceOracle",
    "Strategy",
    "StrategyResult",
    "SwapComposition",
    "SwapEvent",
    "SyntheticMarketGenerator",
    "Token",
    "TokenAmount",
    "TraditionalStrategy",
    "__version__",
    "build_token_graph",
    "compose_hops",
    "find_arbitrage_loops",
    "find_negative_cycle",
    "generate_event_stream",
    "graph_summary",
    "lognormal_prices",
    "make_strategy",
    "paper_market",
    "plan_from_result",
    "section5_loop",
    "section5_prices",
    "section5_snapshot",
    "synthetic_loop",
]
