"""Shared event-application and invalidation-index primitives.

Both block-by-block consumers of a market event stream — the offline
:class:`~repro.replay.ReplayDriver` and the online sharded workers of
:mod:`repro.service` — need the same two building blocks:

* :func:`apply_event` — mutate a private market copy (and price map)
  according to one event, recording which pool / token it dirtied;
* :func:`apply_block_events` — a whole block of events at once,
  including dropping the pools' own event records and refreshing a
  columnar :class:`~repro.market.MarketArrays` mirror for the dirty
  pools, so the batch quote kernel sees the new reserves;
* :func:`build_loop_indices` — the inverted indices (pool id → loop
  positions, token → loop positions) that turn a dirty set into the
  exact set of loops whose stored results are stale.

Keeping them here means the service's per-shard dirty-set logic is the
*same code* whose incremental/full parity the replay test suite pins
down, not a reimplementation that could drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..amm.events import (
    BlockEvent,
    BurnEvent,
    MarketEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from ..amm.registry import PoolRegistry
from ..core.errors import UnknownPoolError
from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, Token

if TYPE_CHECKING:  # imported lazily to keep the layers decoupled
    from ..market import MarketArrays

__all__ = [
    "apply_block_events",
    "apply_event",
    "build_loop_indices",
    "rebind_loops",
]


def _pool(registry: PoolRegistry, pool_id: str):
    try:
        return registry[pool_id]
    except KeyError:
        raise UnknownPoolError(
            f"event references pool {pool_id!r} which is not in the market"
        ) from None


def apply_event(
    registry: PoolRegistry,
    prices: PriceMap,
    event: MarketEvent,
    dirty_pools: set[str],
    dirty_tokens: set[Token],
) -> PriceMap:
    """Apply one event to ``registry`` / ``prices``, tracking dirt.

    Pool events (swap / mint / burn) mutate the pool in place and add
    its id to ``dirty_pools``; a price tick adds the token to
    ``dirty_tokens`` and returns the updated price map (price maps are
    immutable, so the caller must keep the return value); block
    markers are boundary no-ops.
    """
    if isinstance(event, SwapEvent):
        _pool(registry, event.pool_id).swap(event.token_in, event.amount_in)
        dirty_pools.add(event.pool_id)
    elif isinstance(event, MintEvent):
        _pool(registry, event.pool_id).add_liquidity(event.amount0, event.amount1)
        dirty_pools.add(event.pool_id)
    elif isinstance(event, BurnEvent):
        _pool(registry, event.pool_id).remove_liquidity(event.fraction)
        dirty_pools.add(event.pool_id)
    elif isinstance(event, PriceTickEvent):
        prices = prices.with_price(event.token, event.price)
        dirty_tokens.add(event.token)
    elif isinstance(event, BlockEvent):
        pass  # boundary marker, no state change
    else:
        raise TypeError(f"cannot replay event of type {type(event).__name__}")
    return prices


def apply_block_events(
    registry: PoolRegistry,
    prices: PriceMap,
    events: Iterable[MarketEvent],
    arrays: "MarketArrays | None" = None,
) -> tuple[PriceMap, set[str], set[Token], int]:
    """Apply one block's events; return ``(prices, dirty_pools,
    dirty_tokens, n_events)``.

    The block-consumer boilerplate shared by the replay driver and the
    service's shard workers: every event goes through
    :func:`apply_event`, the mutated pools' own event records are
    dropped (the private pools record their mutations as they happen;
    nothing here reads those logs, so they must not mirror the whole
    input stream in memory), and — when the caller keeps a columnar
    ``arrays`` mirror for the batch quote kernels — the dirty pools'
    reserves are pulled into it.  The pull copies reserves straight
    off the mutated pool objects, so it is family-agnostic by
    construction: a weighted pool's G3M swap arithmetic happened on
    the object side, and the mirror can never re-apply CPMM math to
    it (the weighted replay regression suite pins this).
    """
    dirty_pools: set[str] = set()
    dirty_tokens: set[Token] = set()
    n_events = 0
    for event in events:
        prices = apply_event(registry, prices, event, dirty_pools, dirty_tokens)
        n_events += 1
    for pool_id in dirty_pools:
        registry[pool_id].discard_events_after(0)
    if arrays is not None and dirty_pools:
        arrays.pull(registry, dirty_pools)
    return prices, dirty_pools, dirty_tokens, n_events


def build_loop_indices(
    loops: Sequence[ArbitrageLoop],
) -> tuple[dict[str, tuple[int, ...]], dict[Token, tuple[int, ...]]]:
    """Inverted indices over ``loops``: pool id → positions, token →
    positions.  Positions are indices into the given sequence, so the
    same helper serves the driver's global universe and a shard's
    local slice."""
    pool_loops: dict[str, list[int]] = {}
    token_loops: dict[Token, list[int]] = {}
    for index, loop in enumerate(loops):
        for pool in set(loop.pools):
            pool_loops.setdefault(pool.pool_id, []).append(index)
        for token in loop.tokens:
            token_loops.setdefault(token, []).append(index)
    return (
        {k: tuple(v) for k, v in pool_loops.items()},
        {k: tuple(v) for k, v in token_loops.items()},
    )


def rebind_loops(
    loops: Sequence[ArbitrageLoop], registry: PoolRegistry
) -> tuple[ArbitrageLoop, ...]:
    """Re-point loops at another registry's pool objects (by pool id).

    Loop *topology* is registry-independent; only the live pool
    references differ between a market and its copies.  Rebinding a
    universe enumerated once onto each shard's private market copy is
    how the service avoids per-shard re-enumeration.
    """
    return tuple(
        ArbitrageLoop(
            loop.tokens, [_pool(registry, pool.pool_id) for pool in loop.pools]
        )
        for loop in loops
    )
