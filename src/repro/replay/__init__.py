"""Event-sourced market replay (tentpole of PR 2).

Real DEX markets arrive as an ordered stream of swap / mint / burn
events and CEX price ticks, block by block.  This package makes that
stream a first-class artifact and re-runs arbitrage detection
*incrementally* after every block:

* :class:`MarketEventLog` — a block-ordered, JSONL-serializable event
  stream (the events themselves live in :mod:`repro.amm.events`);
* :func:`generate_event_stream` — seeded synthetic streams scaled to
  N pools × M events;
* :class:`ReplayDriver` — applies events to a private market copy and
  re-evaluates only the loops whose pools (or token prices) changed,
  using the engine's reserve-keyed cache and topology-cached loop
  universe; a full-recompute mode provides the parity oracle;
* :class:`BlockReport` / :class:`ReplayResult` — per-block profit and
  mispricing reporting.

The ``repro-arb replay`` CLI command and the simulation engine's event
emission both build on this package; ``benchmarks/
bench_replay_throughput.py`` pins the incremental speedup.
"""

from .apply import (
    apply_block_events,
    apply_event,
    build_loop_indices,
    rebind_loops,
)
from .driver import BlockReport, ReplayDriver, ReplayResult
from .generator import generate_event_stream
from .log import MarketEventLog, event_from_dict, event_to_dict

__all__ = [
    "BlockReport",
    "MarketEventLog",
    "ReplayDriver",
    "ReplayResult",
    "apply_block_events",
    "apply_event",
    "build_loop_indices",
    "event_from_dict",
    "event_to_dict",
    "generate_event_stream",
    "rebind_loops",
]
