"""Block-by-block market replay with incremental invalidation.

:class:`ReplayDriver` streams a :class:`~repro.replay.MarketEventLog`
through a private copy of a :class:`~repro.data.snapshot.MarketSnapshot`
and re-runs arbitrage detection after every block.  Two modes, same
numbers:

* ``"incremental"`` (default) — dirty-set tracking.  The driver holds
  the engine's topology-cached :class:`~repro.engine.LoopUniverse` and
  two inverted indices (pool id → loops, token → loops).  A block's
  swaps/mints/burns mark their pools dirty; price ticks mark their
  tokens dirty.  Only loops over dirty pools are re-optimized (their
  reserve-keyed cache entries are stale by construction), only loops
  holding ticked tokens are re-monetized, and every other loop's
  stored result is carried over untouched, costing zero.  Re-quotes go
  through the cross-loop batch kernels (:mod:`repro.market`): the
  driver mirrors its private market in a columnar
  :class:`~repro.market.MarketArrays` (refreshed per block for the
  dirty pools — weighted rows included, so the mirror never drifts)
  and evaluates the whole dirty set in one vectorized pass per
  strategy, weighted loops through the batched chain-rule solver;
  only small dirty sets and non-batchable strategies fall back to
  the scalar cached path.
* ``"full"`` — every loop re-evaluated from scratch each block, no
  cache.  The parity oracle: per-block reports must be bit-identical
  to incremental mode, which the property and golden tests assert.

The equivalence rests on two facts the engine layer already pins down:
a loop's optimal trade depends only on its pools' reserves, and its
monetized profit additionally only on its own tokens' CEX prices.  An
untouched, untick-ed loop therefore cannot change its result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..amm.events import MarketEvent
from ..core.types import PriceMap
from ..data.snapshot import MarketSnapshot
from ..engine import EvaluationEngine
from ..simulation.metrics import mispricing_index
from ..strategies.base import Strategy, StrategyResult
from ..strategies.maxmax import MaxMaxStrategy
from ..market import pruned_zero_result
from ..telemetry import trace
from ..telemetry.metrics import MetricRegistry, get_registry
from .apply import apply_block_events, build_loop_indices
from .log import MarketEventLog

__all__ = ["BlockReport", "ReplayDriver", "ReplayResult"]

_MODES = ("incremental", "full")


@dataclass(frozen=True)
class BlockReport:
    """Arbitrage surface of the market at the end of one block.

    ``profit_usd`` / ``best_profit_usd`` map strategy labels to the sum
    and maximum of positive monetized profits over all candidate loops;
    ``evaluated_loops`` counts loops actually re-evaluated this block
    (the incremental mode's work, ``total_loops`` in full mode).
    """

    block: int
    n_events: int
    dirty_pools: tuple[str, ...]
    evaluated_loops: int
    total_loops: int
    profitable_loops: int
    mispricing_index: float
    profit_usd: dict[str, float]
    best_profit_usd: dict[str, float]

    def to_dict(self) -> dict:
        """JSON-ready form (used by the golden regression fixtures)."""
        return {
            "block": self.block,
            "n_events": self.n_events,
            "dirty_pools": list(self.dirty_pools),
            "evaluated_loops": self.evaluated_loops,
            "total_loops": self.total_loops,
            "profitable_loops": self.profitable_loops,
            "mispricing_index": self.mispricing_index,
            "profit_usd": dict(self.profit_usd),
            "best_profit_usd": dict(self.best_profit_usd),
        }

    def same_numbers(self, other: "BlockReport") -> bool:
        """Exact equality of everything except ``evaluated_loops`` —
        the one field that legitimately differs between modes."""
        return (
            self.block == other.block
            and self.n_events == other.n_events
            and self.dirty_pools == other.dirty_pools
            and self.total_loops == other.total_loops
            and self.profitable_loops == other.profitable_loops
            and self.mispricing_index == other.mispricing_index
            and self.profit_usd == other.profit_usd
            and self.best_profit_usd == other.best_profit_usd
        )


@dataclass(frozen=True)
class ReplayResult:
    """A finished replay: per-block reports plus stream totals."""

    mode: str
    reports: tuple[BlockReport, ...]
    events_applied: int

    def total_profit(self, label: str) -> float:
        return sum(r.profit_usd[label] for r in self.reports)

    def evaluations(self) -> int:
        """Total loop evaluations across the replay (the work metric
        the incremental mode minimizes)."""
        return sum(r.evaluated_loops for r in self.reports)

    def mispricing_series(self) -> list[float]:
        return [r.mispricing_index for r in self.reports]

    def __repr__(self) -> str:
        return (
            f"ReplayResult({self.mode}: {len(self.reports)} blocks, "
            f"{self.events_applied} events, {self.evaluations()} evaluations)"
        )


class ReplayDriver:
    """Apply an event stream to a market copy and re-detect per block.

    Parameters
    ----------
    market:
        Starting snapshot; the driver mutates a private copy.
    strategies:
        Labeled strategies to score every candidate loop with; default
        ``{"maxmax": MaxMaxStrategy()}``.
    length:
        Candidate loop length for the universe (default 3).
    mode:
        ``"incremental"`` or ``"full"`` (see module docstring).
    engine:
        Shared :class:`~repro.engine.EvaluationEngine`; a fresh one by
        default.  Incremental mode uses its ``PoolStateCache`` and
        topology-cached loop universe.
    prune:
        Two-phase re-quoting (incremental + vectorized only): before
        the exact kernel pass, a vectorized bound pass skips every
        dirty loop whose profit upper bound is non-positive — the
        bound proves its exact profit could only contribute zero to
        the block's sums — and stores a zero-profit placeholder
        instead.  Reports stay bit-identical to ``prune=False``;
        ``evaluated_loops`` then counts exact quotes only.
    """

    def __init__(
        self,
        market: MarketSnapshot,
        strategies: Mapping[str, Strategy] | None = None,
        length: int = 3,
        mode: str = "incremental",
        engine: EvaluationEngine | None = None,
        prune: bool = False,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.prune = prune
        self.market = market.copy()
        self.prices: PriceMap = market.prices
        self.strategies: dict[str, Strategy] = (
            dict(strategies) if strategies is not None else {"maxmax": MaxMaxStrategy()}
        )
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        self.engine = engine if engine is not None else EvaluationEngine()
        self.length = length

        universe = self.engine.loop_universe(self.market.registry, length)
        self._loops = universe.candidates
        self._pool_loops, self._token_loops = build_loop_indices(self._loops)

        # Columnar mirror of the private market for the batch kernel.
        # Full mode stays scalar on purpose: it is the parity oracle
        # the incremental+batch path is asserted bit-identical against.
        self._evaluator = None
        if self.mode == "incremental" and self.engine.vectorize:
            from ..market import BatchEvaluator, MarketArrays

            self._evaluator = BatchEvaluator(
                self._loops,
                arrays=MarketArrays.from_registry(self.market.registry),
            )
        if prune and self._evaluator is None:
            raise ValueError(
                "prune=True requires incremental mode with a vectorizing "
                "engine (the bound pass runs on the columnar mirror)"
            )

        # Per-loop state carried across blocks (incremental mode reuses
        # it; full mode overwrites it wholesale every block).  Priming
        # at construction time makes block 0 incremental too.
        self._log_rates: list[float] = [loop.log_rate_sum() for loop in self._loops]
        self._results: dict[str, list[StrategyResult]] = {}
        cache = self.engine.cache if self.mode == "incremental" else None
        for label, strategy in self.strategies.items():
            if self._evaluator is not None:
                self._results[label] = self._evaluator.evaluate_many(
                    strategy, self.prices, cache=cache
                )
            else:
                self._results[label] = [
                    strategy.evaluate_cached(loop, self.prices, cache)
                    for loop in self._loops
                ]
        self._block_reports: list[BlockReport] = []

    def __repr__(self) -> str:
        return (
            f"ReplayDriver({self.mode}, {len(self._loops)} candidate "
            f"loops over {len(self.market.registry)} pools)"
        )

    @property
    def total_loops(self) -> int:
        return len(self._loops)

    @property
    def reports(self) -> tuple[BlockReport, ...]:
        return tuple(self._block_reports)

    @property
    def evaluator_stats(self):
        """Batch-evaluator counters (kernel/scalar routing, bound
        passes, pruned loops); ``None`` on the scalar path."""
        return self._evaluator.stats if self._evaluator is not None else None

    def publish_metrics(self, registry: MetricRegistry | None = None) -> MetricRegistry:
        """Mirror the driver's lifetime counters into a telemetry
        registry (the process-wide one by default): blocks replayed,
        loop evaluations, batch-evaluator routing stats, and the
        engine cache counters.  Safe to call repeatedly — mirrored
        totals are ``set``, not re-added."""
        registry = registry if registry is not None else get_registry()
        registry.counter("replay_blocks", mode=self.mode).set(len(self._block_reports))
        registry.counter("replay_evaluations", mode=self.mode).set(
            sum(r.evaluated_loops for r in self._block_reports)
        )
        if self._evaluator is not None:
            self._evaluator.stats.publish(registry, layer="replay")
        self.engine.cache.publish(registry, layer="replay")
        return registry

    # ------------------------------------------------------------------
    # per-block evaluation
    # ------------------------------------------------------------------

    def apply_block(self, block: int, events: Iterable[MarketEvent]) -> BlockReport:
        """Apply one block's events, re-evaluate, and report.

        In incremental mode only loops whose pools moved are
        re-optimized and only loops whose tokens ticked are
        re-monetized; everything else reuses its stored result.
        """
        with trace.span("replay.apply", block=block):
            self.prices, dirty_pools, dirty_tokens, n_events = apply_block_events(
                self.market.registry,
                self.prices,
                events,
                arrays=(
                    self._evaluator.arrays if self._evaluator is not None else None
                ),
            )

        if self.mode == "full":
            reserve_dirty = range(len(self._loops))
            reeval = list(reserve_dirty)
            cache = None
        else:
            touched: set[int] = set()
            for pool_id in dirty_pools:
                touched.update(self._pool_loops.get(pool_id, ()))
            ticked: set[int] = set()
            for token in dirty_tokens:
                ticked.update(self._token_loops.get(token, ()))
            reserve_dirty = sorted(touched)
            reeval = sorted(touched | ticked)
            cache = self.engine.cache

        for index in reserve_dirty:
            self._log_rates[index] = self._loops[index].log_rate_sum()
        exact_quoted: set[int] = set()
        with trace.span("replay.quote", block=block, loops=len(reeval)):
            for label, strategy in self.strategies.items():
                results = self._results[label]
                if self._evaluator is not None:
                    # prune: threshold 0.0 skips the exact quote exactly
                    # when the bound proves the loop unprofitable — its
                    # contribution to every block total is zero, so the
                    # placeholder keeps the report sums bit-identical
                    threshold = 0.0 if self.prune else None
                    for index, result in zip(
                        reeval,
                        self._evaluator.evaluate_many(
                            strategy,
                            self.prices,
                            indices=reeval,
                            cache=cache,
                            threshold=threshold,
                        ),
                    ):
                        if result is None:
                            results[index] = pruned_zero_result(
                                strategy, self._loops[index], self.prices
                            )
                        else:
                            results[index] = result
                            exact_quoted.add(index)
                else:
                    for index in reeval:
                        results[index] = strategy.evaluate_cached(
                            self._loops[index], self.prices, cache
                        )
                    exact_quoted.update(reeval)

        # Totals are always recomputed over every loop in index order,
        # so both modes sum identical values in an identical order —
        # bit-identical reports, not just approximately equal ones.
        profit_usd: dict[str, float] = {}
        best_profit_usd: dict[str, float] = {}
        for label in self.strategies:
            total = 0.0
            best = 0.0
            for result in self._results[label]:
                monetized = result.monetized_profit
                if monetized > 0.0:
                    total += monetized
                    if monetized > best:
                        best = monetized
            profit_usd[label] = total
            best_profit_usd[label] = best

        report = BlockReport(
            block=block,
            n_events=n_events,
            dirty_pools=tuple(sorted(dirty_pools)),
            evaluated_loops=len(exact_quoted) if self.prune else len(reeval),
            total_loops=len(self._loops),
            profitable_loops=sum(1 for r in self._log_rates if r > 0.0),
            mispricing_index=mispricing_index(self.market, self.prices),
            profit_usd=profit_usd,
            best_profit_usd=best_profit_usd,
        )
        self._block_reports.append(report)
        return report

    def replay(self, log: MarketEventLog) -> ReplayResult:
        """Stream the whole log block by block.

        The result covers only this call's blocks (a driver can replay
        several logs in sequence; ``self.reports`` keeps the full
        history), so its totals and its event count stay consistent.
        """
        start = len(self._block_reports)
        events_applied = 0
        for block, events in log.iter_blocks():
            self.apply_block(block, events)
            events_applied += len(events)
        return ReplayResult(
            mode=self.mode,
            reports=tuple(self._block_reports[start:]),
            events_applied=events_applied,
        )
