"""The market event log: an ordered, replayable stream of events.

A :class:`MarketEventLog` is an append-only, block-ordered sequence of
:mod:`repro.amm.events` records with lossless JSONL (de)serialization —
one event per line, a ``type`` tag plus the event's fields.  Floats
round-trip exactly (JSON numbers are emitted with ``repr`` precision),
so a saved stream replays bit-identically to the in-memory one.

Format example::

    {"type": "block", "block": 0}
    {"type": "tick", "block": 0, "token": {"symbol": "WETH", ...}, "price": 1650.3}
    {"type": "swap", "block": 0, "pool_id": "syn-0007", "token_in": {...},
     "token_out": {...}, "amount_in": 12.5, "amount_out": 30.1}
    {"type": "mint", "block": 1, "pool_id": "syn-0002", "amount0": 5.0, "amount1": 9.1}
    {"type": "burn", "block": 1, "pool_id": "syn-0003", "fraction": 0.01,
     "amount0": 1.0, "amount1": 2.0}
"""

from __future__ import annotations

from itertools import groupby
from pathlib import Path
from typing import Iterable, Iterator
import json

from ..amm.events import (
    BlockEvent,
    BurnEvent,
    MarketEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from ..core.errors import EventLogFormatError, EventOrderError
from ..core.types import Token

__all__ = ["MarketEventLog", "event_from_dict", "event_to_dict"]

_TYPE_TAGS: dict[str, type[MarketEvent]] = {
    "swap": SwapEvent,
    "mint": MintEvent,
    "burn": BurnEvent,
    "tick": PriceTickEvent,
    "block": BlockEvent,
}
_TAGS_BY_TYPE = {cls: tag for tag, cls in _TYPE_TAGS.items()}


def _token_to_dict(token: Token) -> dict:
    return {
        "symbol": token.symbol,
        "decimals": token.decimals,
        "address": token.address,
    }


def _token_from_dict(data: dict) -> Token:
    return Token(
        symbol=data["symbol"],
        decimals=data.get("decimals", 18),
        address=data.get("address", ""),
    )


def event_to_dict(event: MarketEvent) -> dict:
    """Serialize one event to a JSON-ready dict with a ``type`` tag."""
    try:
        tag = _TAGS_BY_TYPE[type(event)]
    except KeyError:
        raise EventLogFormatError(
            f"cannot serialize event of type {type(event).__name__}"
        ) from None
    data: dict = {"type": tag, "block": event.block}
    if isinstance(event, SwapEvent):
        data.update(
            pool_id=event.pool_id,
            token_in=_token_to_dict(event.token_in),
            token_out=_token_to_dict(event.token_out),
            amount_in=event.amount_in,
            amount_out=event.amount_out,
        )
    elif isinstance(event, MintEvent):
        data.update(
            pool_id=event.pool_id, amount0=event.amount0, amount1=event.amount1
        )
    elif isinstance(event, BurnEvent):
        data.update(
            pool_id=event.pool_id,
            fraction=event.fraction,
            amount0=event.amount0,
            amount1=event.amount1,
        )
    elif isinstance(event, PriceTickEvent):
        data.update(token=_token_to_dict(event.token), price=event.price)
    return data


def event_from_dict(data: dict) -> MarketEvent:
    """Parse one event dict (inverse of :func:`event_to_dict`)."""
    try:
        tag = data["type"]
        cls = _TYPE_TAGS.get(tag)
        if cls is None:
            raise EventLogFormatError(f"unknown event type tag {tag!r}")
        block = int(data["block"])
        if cls is SwapEvent:
            return SwapEvent(
                pool_id=data["pool_id"],
                token_in=_token_from_dict(data["token_in"]),
                token_out=_token_from_dict(data["token_out"]),
                amount_in=float(data["amount_in"]),
                amount_out=float(data["amount_out"]),
                block=block,
            )
        if cls is MintEvent:
            return MintEvent(
                pool_id=data["pool_id"],
                amount0=float(data["amount0"]),
                amount1=float(data["amount1"]),
                block=block,
            )
        if cls is BurnEvent:
            return BurnEvent(
                pool_id=data["pool_id"],
                fraction=float(data["fraction"]),
                amount0=float(data.get("amount0", 0.0)),
                amount1=float(data.get("amount1", 0.0)),
                block=block,
            )
        if cls is PriceTickEvent:
            return PriceTickEvent(
                token=_token_from_dict(data["token"]),
                price=float(data["price"]),
                block=block,
            )
        return BlockEvent(block=block)
    except EventLogFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise EventLogFormatError(f"malformed event record: {exc}") from exc


class MarketEventLog:
    """Block-ordered sequence of market events.

    Appends enforce non-decreasing ``block`` numbers, so the log is
    always a valid time-ordered stream and per-block grouping
    (:meth:`iter_blocks`) is a single pass.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[MarketEvent] = ()):
        self._events: list[MarketEvent] = []
        self.extend(events)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[MarketEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarketEventLog):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:
        blocks = f"blocks {self._events[0].block}..{self._events[-1].block}" if self._events else "empty"
        return f"MarketEventLog({len(self._events)} events, {blocks})"

    @property
    def events(self) -> tuple[MarketEvent, ...]:
        return tuple(self._events)

    def events_since(self, index: int) -> tuple[MarketEvent, ...]:
        """Events appended at position ``index`` or later.

        Lets a consumer tail a growing log (e.g. the live simulation
        source) without copying the whole history each poll.
        """
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        return tuple(self._events[index:])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def append(self, event: MarketEvent) -> None:
        if not isinstance(event, MarketEvent):
            raise TypeError(f"expected a MarketEvent, got {event!r}")
        if self._events and event.block < self._events[-1].block:
            raise EventOrderError(
                f"event for block {event.block} appended after block "
                f"{self._events[-1].block}; logs are block-ordered"
            )
        self._events.append(event)

    def extend(self, events: Iterable[MarketEvent]) -> None:
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def iter_blocks(self) -> Iterator[tuple[int, tuple[MarketEvent, ...]]]:
        """Yield ``(block, events)`` groups in block order."""
        for block, group in groupby(self._events, key=lambda e: e.block):
            yield block, tuple(group)

    def blocks(self) -> tuple[int, ...]:
        """Distinct block numbers present, in order."""
        return tuple(block for block, _ in self.iter_blocks())

    def touched_pool_ids(self) -> frozenset[str]:
        """Pool ids referenced by any swap / mint / burn in the log."""
        return frozenset(
            e.pool_id
            for e in self._events
            if isinstance(e, (SwapEvent, MintEvent, BurnEvent))
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact JSON object per line, trailing newline included."""
        return "".join(
            json.dumps(event_to_dict(event), sort_keys=True) + "\n"
            for event in self._events
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "MarketEventLog":
        events = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogFormatError(
                    f"line {lineno}: invalid JSON: {exc}"
                ) from exc
            events.append(event_from_dict(data))
        try:
            return cls(events)
        except EventOrderError as exc:
            raise EventLogFormatError(str(exc)) from exc

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "MarketEventLog":
        return cls.from_jsonl(Path(path).read_text())
