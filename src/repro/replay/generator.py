"""Seeded synthetic market-event streams.

:func:`generate_event_stream` turns a :class:`~repro.data.snapshot.
MarketSnapshot` into an N-block stream of swaps, mints, burns and CEX
price ticks, scaled by ``n_blocks`` × ``events_per_block``.  Events are
produced by *executing* them against a private working copy of the
snapshot, so every recorded amount is consistent with the market state
at its point in the stream — replaying the log from the same snapshot
reproduces the working copy's final state bit-for-bit.

``pools_per_block`` controls touch sparsity: with 10⁴ pools and 2
touched pools per block, an incremental replay re-evaluates a handful
of loops while a full recompute re-evaluates them all — the regime the
throughput benchmark measures.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..amm.events import BlockEvent, PriceTickEvent
from ..data.snapshot import MarketSnapshot
from .log import MarketEventLog

__all__ = ["generate_event_stream"]


def generate_event_stream(
    market: MarketSnapshot,
    n_blocks: int = 20,
    events_per_block: int = 5,
    seed: int = 0,
    *,
    pools_per_block: int | None = None,
    mint_fraction: float = 0.1,
    burn_fraction: float = 0.1,
    price_ticks_per_block: int = 1,
    tick_sigma: float = 0.002,
    max_trade_fraction: float = 0.01,
    emit_block_markers: bool = True,
) -> MarketEventLog:
    """Generate a deterministic event stream for ``market``.

    Parameters
    ----------
    market:
        Starting snapshot.  Left untouched — events are staged on a
        private copy.
    n_blocks, events_per_block:
        Stream size: each block carries ``events_per_block`` pool
        events (swap / mint / burn) plus ``price_ticks_per_block``
        CEX ticks.
    seed:
        RNG seed; identical seeds give identical streams.
    pools_per_block:
        When set, each block's pool events concentrate on at most this
        many distinct pools (sparse-touch streams); ``None`` draws every
        event's pool uniformly.
    mint_fraction, burn_fraction:
        Probability that a pool event is a mint / burn (the remainder
        are swaps).
    price_ticks_per_block:
        CEX price updates per block (0 disables ticks).
    tick_sigma:
        Lognormal sigma of each tick (~0.2 % default).
    max_trade_fraction:
        Swap inputs are uniform in ``[1e-4, max_trade_fraction]`` of
        the input-side reserve.
    emit_block_markers:
        Emit a :class:`~repro.amm.events.BlockEvent` at each block
        start so empty blocks stay representable.
    """
    if n_blocks < 0:
        raise ValueError(f"n_blocks must be >= 0, got {n_blocks}")
    if events_per_block < 0:
        raise ValueError(f"events_per_block must be >= 0, got {events_per_block}")
    if pools_per_block is not None and pools_per_block < 1:
        raise ValueError(f"pools_per_block must be >= 1, got {pools_per_block}")
    if not 0.0 <= mint_fraction + burn_fraction <= 1.0:
        raise ValueError(
            f"mint_fraction + burn_fraction must be in [0, 1], got "
            f"{mint_fraction} + {burn_fraction}"
        )
    rng = np.random.default_rng(seed)
    staging = market.copy()
    pools = sorted(staging.registry, key=lambda p: p.pool_id)
    prices = dict(staging.prices.items())
    priced_tokens = sorted(prices, key=lambda t: t.symbol)
    log = MarketEventLog()

    for block in range(n_blocks):
        if emit_block_markers:
            log.append(BlockEvent(block=block))
        for _ in range(price_ticks_per_block):
            token = priced_tokens[int(rng.integers(0, len(priced_tokens)))]
            price = prices[token] * float(
                np.exp(tick_sigma * rng.standard_normal())
            )
            prices[token] = price
            log.append(PriceTickEvent(token=token, price=price, block=block))
        if pools_per_block is not None:
            chosen = rng.choice(
                len(pools), size=min(pools_per_block, len(pools)), replace=False
            )
            block_pools = [pools[int(i)] for i in chosen]
        else:
            block_pools = pools
        for _ in range(events_per_block):
            pool = block_pools[int(rng.integers(0, len(block_pools)))]
            roll = float(rng.random())
            if roll < mint_fraction:
                fraction = float(rng.uniform(0.005, 0.05))
                pool.add_liquidity(
                    pool.reserve_of(pool.token0) * fraction,
                    pool.reserve_of(pool.token1) * fraction,
                )
            elif roll < mint_fraction + burn_fraction:
                pool.remove_liquidity(float(rng.uniform(0.005, 0.05)))
            else:
                token = pool.tokens[int(rng.integers(0, 2))]
                fraction = float(rng.uniform(1e-4, max_trade_fraction))
                pool.swap(token, pool.reserve_of(token) * fraction)
            # the pool recorded the event; stamp it and drop the staging
            # copy so generation stays O(1) in memory per pool
            log.append(replace(pool.last_event, block=block))
            pool.discard_events_after(0)
    return log
