"""Agents for the block-by-block market simulation.

Three agent archetypes cover the behaviours the paper's setting
implies:

* :class:`RetailTrader` — uninformed flow: random swaps through random
  pools.  This is what re-creates mispricings (and hence arbitrage
  loops) block after block.
* :class:`LiquidityProvider` — deposits/withdraws proportional
  liquidity at random, changing pool depth (and therefore slippage and
  optimal trade sizes) without moving prices.
* :class:`Arbitrageur` — the paper's protagonist: detects a loop
  (Moore–Bellman–Ford), sizes the trade with a configurable strategy,
  executes atomically with a flash loan, and books monetized profit.

Agents act on a shared :class:`~repro.data.snapshot.MarketSnapshot`'s
registry through :meth:`Agent.on_block`; the engine (``engine.py``)
sequences them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..core.types import PriceMap
from ..data.snapshot import MarketSnapshot
from ..execution.plan import plan_from_result
from ..execution.simulator import ExecutionSimulator
from ..graph.build import build_token_graph
from ..graph.bellman_ford import find_negative_cycle, negative_cycle_to_loop
from ..strategies.base import Strategy

__all__ = ["Agent", "RetailTrader", "LiquidityProvider", "Arbitrageur"]


class Agent(abc.ABC):
    """A market participant invoked once per block."""

    name: str = "agent"

    @abc.abstractmethod
    def on_block(self, market: MarketSnapshot, prices: PriceMap, block: int) -> None:
        """Act on the market for one block."""


class RetailTrader(Agent):
    """Uninformed flow: ``trades_per_block`` random swaps per block.

    Trade sizes are uniform in ``[min_size, max_size]`` as a fraction
    of the input-side reserve, so pools of any depth get comparable
    relative price impact.
    """

    def __init__(
        self,
        seed: int,
        trades_per_block: int = 5,
        min_size: float = 0.001,
        max_size: float = 0.01,
        name: str = "retail",
    ):
        if not 0.0 < min_size <= max_size < 1.0:
            raise ValueError(
                f"need 0 < min_size <= max_size < 1, got ({min_size}, {max_size})"
            )
        self._rng = np.random.default_rng(seed)
        self.trades_per_block = trades_per_block
        self.min_size = min_size
        self.max_size = max_size
        self.name = name
        self.total_trades = 0

    def on_block(self, market: MarketSnapshot, prices: PriceMap, block: int) -> None:
        pools = sorted(market.registry, key=lambda p: p.pool_id)
        for _ in range(self.trades_per_block):
            pool = pools[int(self._rng.integers(0, len(pools)))]
            token = pool.tokens[int(self._rng.integers(0, 2))]
            fraction = float(self._rng.uniform(self.min_size, self.max_size))
            pool.swap(token, pool.reserve_of(token) * fraction)
            self.total_trades += 1


class LiquidityProvider(Agent):
    """Random proportional mints/burns: depth changes, prices don't."""

    def __init__(
        self,
        seed: int,
        actions_per_block: int = 1,
        max_fraction: float = 0.05,
        name: str = "lp",
    ):
        if not 0.0 < max_fraction < 1.0:
            raise ValueError(f"max_fraction must be in (0, 1), got {max_fraction}")
        self._rng = np.random.default_rng(seed)
        self.actions_per_block = actions_per_block
        self.max_fraction = max_fraction
        self.name = name
        self.mints = 0
        self.burns = 0

    def on_block(self, market: MarketSnapshot, prices: PriceMap, block: int) -> None:
        pools = sorted(market.registry, key=lambda p: p.pool_id)
        for _ in range(self.actions_per_block):
            pool = pools[int(self._rng.integers(0, len(pools)))]
            fraction = float(self._rng.uniform(0.0, self.max_fraction))
            if fraction <= 0.0:
                continue
            if self._rng.random() < 0.5:
                r0 = pool.reserve_of(pool.token0)
                r1 = pool.reserve_of(pool.token1)
                pool.add_liquidity(r0 * fraction, r1 * fraction)
                self.mints += 1
            else:
                pool.remove_liquidity(fraction)
                self.burns += 1


@dataclass
class Arbitrageur(Agent):
    """Detect-and-harvest agent with a configurable sizing strategy.

    Per block: find one negative cycle (fast MBF detection, like
    paper ref [5]); size it with ``strategy``; execute atomically.
    Repeats up to ``max_loops_per_block`` times, mirroring a searcher
    bundling several arbitrages into one block.

    ``cache`` is an optional
    :class:`~repro.engine.cache.PoolStateCache`: with one attached
    (the simulation engine wires its own in by default), sizing a loop
    whose pools did not move since a previous evaluation reuses the
    cached rotation quotes.  Reserve-keyed, so every executed trade
    invalidates exactly the loops it touched.
    """

    strategy: Strategy
    name: str = "arb"
    max_loops_per_block: int = 3
    slippage_tolerance: float = 0.05
    cumulative_usd: float = 0.0
    trades: int = 0
    reverts: int = 0
    profits_by_block: list = field(default_factory=list)
    cache: object | None = None

    def on_block(self, market: MarketSnapshot, prices: PriceMap, block: int) -> None:
        simulator = ExecutionSimulator(registry=market.registry)
        block_profit = 0.0
        for _ in range(self.max_loops_per_block):
            graph = build_token_graph(market.registry)
            cycle = find_negative_cycle(graph)
            if cycle is None:
                break
            loop = negative_cycle_to_loop(cycle)
            result = self.strategy.evaluate_cached(loop, prices, self.cache)
            if result.monetized_profit <= 0 or not result.hop_amounts:
                break
            receipt = simulator.execute(
                plan_from_result(result, slippage_tolerance=self.slippage_tolerance)
            )
            if receipt.reverted:
                self.reverts += 1
                break
            realized = receipt.monetized(prices)
            block_profit += realized
            self.cumulative_usd += realized
            self.trades += 1
        self.profits_by_block.append(block_profit)
