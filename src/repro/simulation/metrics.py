"""Per-block market metrics for the simulation engine.

The headline metric is the **mispricing index**: the mean absolute log
deviation of each pool's (fee-free) relative price from the CEX price
ratio of its tokens,

    index = mean_pools | log( (y/x) / (P_x / P_y) ) |.

Zero means every pool agrees with the CEX; arbitrage activity should
push the index toward the fee band.  ``loop_count`` tracks how many
profitable 3-loops remain — the supply of opportunities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.types import PriceMap
from ..data.snapshot import MarketSnapshot
from ..graph.build import build_token_graph
from ..graph.cycles import find_arbitrage_loops

__all__ = ["BlockMetrics", "mispricing_index", "collect_metrics"]


@dataclass(frozen=True)
class BlockMetrics:
    """Market health at the end of one block."""

    block: int
    mispricing_index: float
    profitable_loops: int
    total_tvl_usd: float


def mispricing_index(market: MarketSnapshot, prices: PriceMap) -> float:
    """Mean |log| deviation of pool prices from CEX parity."""
    deviations = []
    for pool in market.registry:
        token0, token1 = pool.tokens
        if token0 not in prices or token1 not in prices:
            continue
        p0, p1 = prices[token0], prices[token1]
        if p0 <= 0 or p1 <= 0:
            continue
        pool_price = pool.reserve_of(token1) / pool.reserve_of(token0)
        cex_price = p0 / p1
        deviations.append(abs(math.log(pool_price / cex_price)))
    if not deviations:
        return 0.0
    return sum(deviations) / len(deviations)


def collect_metrics(
    market: MarketSnapshot,
    prices: PriceMap,
    block: int,
    count_loops: bool = True,
    engine=None,
) -> BlockMetrics:
    """Snapshot the market's health after a block.

    When an :class:`~repro.engine.EvaluationEngine` is supplied, the
    profitable-loop count reuses its topology-cached
    :class:`~repro.engine.LoopUniverse`: candidate loops are
    enumerated once per simulation and only the ``sum(log p) > 0``
    filter runs per block (the agents move reserves, never the pool
    set).  The count is identical to the uncached detector.
    """
    loops = 0
    if count_loops:
        if engine is not None:
            loops = engine.count_profitable_loops(market.registry, 3)
        else:
            graph = build_token_graph(market.registry)
            loops = len(find_arbitrage_loops(graph, 3))
    tvl = sum(
        pool.tvl(prices)
        for pool in market.registry
        if all(token in prices for token in pool.tokens)
    )
    return BlockMetrics(
        block=block,
        mispricing_index=mispricing_index(market, prices),
        profitable_loops=loops,
        total_tvl_usd=tvl,
    )
