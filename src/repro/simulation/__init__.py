"""Block-by-block market simulation (extension of DESIGN.md S11/S12).

Agents (retail flow, liquidity providers, arbitrageurs) act on a
market each block while CEX prices random-walk; metrics track how far
pools drift from CEX parity and how many arbitrage loops exist.  The
:func:`~repro.simulation.engine.efficiency_experiment` shows the
paper's economic premise in motion: arbitrageurs keep DEX prices
aligned with CEXs.
"""

from .agents import Agent, Arbitrageur, LiquidityProvider, RetailTrader
from .engine import SimulationEngine, SimulationResult, efficiency_experiment
from .metrics import BlockMetrics, collect_metrics, mispricing_index

__all__ = [
    "Agent",
    "Arbitrageur",
    "BlockMetrics",
    "LiquidityProvider",
    "RetailTrader",
    "SimulationEngine",
    "SimulationResult",
    "collect_metrics",
    "efficiency_experiment",
    "mispricing_index",
]
