"""The block-by-block simulation engine.

:class:`SimulationEngine` advances a market through blocks: each block
the CEX prices step (random walk), every agent acts in registration
order, and end-of-block metrics are collected.  Determinism: given the
same seeds and agent order, a run is exactly reproducible.

Every agent action lands in the pools' typed event logs; the engine
stamps those events with block numbers and collects them — plus one
:class:`~repro.amm.events.PriceTickEvent` per oracle move — into a
canonical :class:`~repro.replay.MarketEventLog`.  A simulation run is
therefore a *replayable artifact*: feed ``result.event_log`` and
``result.initial_market`` to a :class:`~repro.replay.ReplayDriver` and
the replay reproduces the run's market trajectory bit-for-bit, without
re-running any agent logic.

The engine powers the market-efficiency experiment
(:func:`efficiency_experiment`): run the same retail flow with and
without an arbitrageur and compare mispricing indices — arbitrage
keeps pools near CEX parity, which is the economic premise of the
whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..amm.events import BlockEvent, PriceTickEvent
from ..cex.synthetic import RandomWalkOracle
from ..data.snapshot import MarketSnapshot
from ..engine import EvaluationEngine
from ..strategies.maxmax import MaxMaxStrategy
from .agents import Agent, Arbitrageur, RetailTrader
from .metrics import BlockMetrics, collect_metrics

if TYPE_CHECKING:  # runtime import stays lazy: replay depends on simulation
    from ..replay.log import MarketEventLog

__all__ = ["SimulationResult", "SimulationEngine", "efficiency_experiment"]


@dataclass(frozen=True)
class SimulationResult:
    """A finished run: metric series plus the final market state.

    ``event_log`` and ``initial_market`` make the run replayable: the
    log applied to the initial snapshot reproduces ``market`` exactly
    (``None`` when the engine ran with ``record_events=False``).
    """

    metrics: tuple[BlockMetrics, ...]
    market: MarketSnapshot
    agents: tuple[Agent, ...]
    event_log: MarketEventLog | None = None
    initial_market: MarketSnapshot | None = None

    def mispricing_series(self) -> list[float]:
        return [m.mispricing_index for m in self.metrics]

    def loop_series(self) -> list[int]:
        return [m.profitable_loops for m in self.metrics]

    def mean_mispricing(self) -> float:
        series = self.mispricing_series()
        return sum(series) / len(series) if series else 0.0


class SimulationEngine:
    """Advance a market copy through blocks with a set of agents.

    Parameters
    ----------
    market:
        The starting snapshot; the engine works on a private copy.
    agents:
        Agents invoked in order each block.
    price_seed, volatility:
        Parameters of the CEX random walk.
    count_loops:
        Whether metrics include the (more expensive) profitable-loop
        count each block.
    evaluation_engine:
        The shared :class:`~repro.engine.EvaluationEngine` backing the
        run.  Per-block loop counting reuses its topology-cached loop
        universe (agents move reserves, never the pool set), and any
        :class:`~repro.simulation.agents.Arbitrageur` without its own
        rotation cache is wired to the engine's.  Defaults to a fresh
        engine; results are identical with or without one.
    record_events:
        When True (default) every block's price ticks and pool
        mutations are collected into ``self.event_log`` and the
        starting snapshot is kept, making the run replayable.
    """

    def __init__(
        self,
        market: MarketSnapshot,
        agents: list[Agent],
        price_seed: int = 0,
        volatility: float = 0.002,
        count_loops: bool = True,
        evaluation_engine: EvaluationEngine | None = None,
        record_events: bool = True,
    ):
        self.market = market.copy()
        self.agents = list(agents)
        self.oracle = RandomWalkOracle(
            market.prices, seed=price_seed, volatility=volatility
        )
        self.count_loops = count_loops
        self.evaluation_engine = (
            evaluation_engine if evaluation_engine is not None else EvaluationEngine()
        )
        for agent in self.agents:
            if isinstance(agent, Arbitrageur) and agent.cache is None:
                agent.cache = self.evaluation_engine.cache
        self._block = 0
        self._metrics: list[BlockMetrics] = []
        self.event_log = None
        self._initial_market: MarketSnapshot | None = None
        self._events_seen: dict[str, int] = {}
        if record_events:
            # imported here: repro.replay depends on repro.simulation
            # (metrics), so the reverse edge must stay lazy
            from ..replay.log import MarketEventLog

            self.event_log = MarketEventLog()
            self._initial_market = market.copy()
            self._events_seen = {
                pool.pool_id: pool.event_count for pool in self.market.registry
            }

    @property
    def block(self) -> int:
        return self._block

    def _record_block(self, prices_before, prices_after) -> None:
        """Stamp and collect everything that happened this block."""
        self.event_log.append(BlockEvent(block=self._block))
        for token in sorted(prices_after, key=lambda t: t.symbol):
            if prices_after[token] != prices_before.get(token):
                self.event_log.append(
                    PriceTickEvent(
                        token=token, price=prices_after[token], block=self._block
                    )
                )
        for pool in sorted(self.market.registry, key=lambda p: p.pool_id):
            seen = self._events_seen.get(pool.pool_id, 0)
            count = pool.event_count
            if count == seen:
                continue
            for event in pool.events_after(seen):
                self.event_log.append(replace(event, block=self._block))
            self._events_seen[pool.pool_id] = count

    def step(self) -> BlockMetrics:
        """Advance one block; return its end-of-block metrics."""
        prices_before = self.oracle.snapshot()
        prices = self.oracle.step()
        for agent in self.agents:
            agent.on_block(self.market, prices, self._block)
        if self.event_log is not None:
            self._record_block(prices_before, prices)
        metrics = collect_metrics(
            self.market,
            prices,
            self._block,
            count_loops=self.count_loops,
            engine=self.evaluation_engine,
        )
        self._metrics.append(metrics)
        self._block += 1
        return metrics

    def run(self, n_blocks: int) -> SimulationResult:
        """Advance ``n_blocks`` and return the full result."""
        if n_blocks < 0:
            raise ValueError(f"n_blocks must be >= 0, got {n_blocks}")
        for _ in range(n_blocks):
            self.step()
        return SimulationResult(
            metrics=tuple(self._metrics),
            market=self.market,
            agents=tuple(self.agents),
            event_log=self.event_log,
            initial_market=self._initial_market,
        )


def efficiency_experiment(
    market: MarketSnapshot,
    n_blocks: int = 30,
    seed: int = 11,
) -> tuple[SimulationResult, SimulationResult]:
    """Identical retail flow with and without an arbitrageur.

    Returns ``(without_arb, with_arb)``.  The with-arbitrage run
    should exhibit a lower mean mispricing index: arbitrageurs are the
    mechanism that re-aligns pools with CEX prices.
    """
    without = SimulationEngine(
        market,
        [RetailTrader(seed=seed)],
        price_seed=seed,
    ).run(n_blocks)
    with_arb = SimulationEngine(
        market,
        [
            RetailTrader(seed=seed),  # identical flow (same seed)
            # an aggressive searcher: harvest until the block is clean
            Arbitrageur(strategy=MaxMaxStrategy(), max_loops_per_block=50),
        ],
        price_seed=seed,
    ).run(n_blocks)
    return without, with_arb
