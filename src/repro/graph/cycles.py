"""Loop enumeration over the token graph.

The paper's §VI pipeline "traversed all token loops with 3 tokens"
(and length 4 in the appendix) and kept those satisfying the arbitrage
criterion ``sum(log p_ij) > 0``.  This module provides:

* :func:`enumerate_token_cycles` — all simple token cycles of a given
  length, via a deterministic canonical DFS (each *undirected* cycle
  is produced exactly once);
* :func:`expand_cycle_to_loops` — turn one token cycle into concrete
  :class:`~repro.core.loop.ArbitrageLoop` objects: one per choice of
  pool on every hop (parallel pools multiply) and per direction;
* :func:`find_arbitrage_loops` — the full §VI detector: enumerate,
  expand, keep loops whose log-rate sum is positive.

Canonicalization: a cycle is emitted with its minimum token (by
symbol) first, and its second token smaller than its last token.  That
fixes both the rotation and the direction, so each undirected cycle
appears exactly once; :func:`expand_cycle_to_loops` then re-introduces
the two traversal directions explicitly.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..core.loop import ArbitrageLoop
from ..core.types import Token
from .build import TokenGraph

__all__ = [
    "enumerate_token_cycles",
    "expand_cycle_to_loops",
    "find_arbitrage_loops",
    "count_cycles",
]


def enumerate_token_cycles(graph: TokenGraph, length: int) -> Iterator[tuple[Token, ...]]:
    """Yield every simple token cycle with exactly ``length`` nodes.

    Deterministic: cycles are produced in lexicographic order of their
    canonical token-symbol tuples.
    """
    if length < 3:
        raise ValueError(f"token cycles need length >= 3, got {length}")
    nodes = sorted(graph.nodes, key=lambda t: t.symbol)
    adjacency: dict[Token, list[Token]] = {
        node: sorted(graph.neighbors(node), key=lambda t: t.symbol) for node in nodes
    }

    def extend(path: list[Token], visited: set[Token]) -> Iterator[tuple[Token, ...]]:
        start = path[0]
        if len(path) == length:
            # close the cycle; direction canon: path[1] < path[-1]
            if graph.has_edge(path[-1], start) and path[1].symbol < path[-1].symbol:
                yield tuple(path)
            return
        for nxt in adjacency[path[-1]]:
            # all cycle nodes must be strictly greater than the anchor
            if nxt.symbol <= start.symbol or nxt in visited:
                continue
            path.append(nxt)
            visited.add(nxt)
            yield from extend(path, visited)
            visited.discard(nxt)
            path.pop()

    for anchor in nodes:
        yield from extend([anchor], {anchor})


def expand_cycle_to_loops(
    graph: TokenGraph,
    cycle: Sequence[Token],
    directions: str = "both",
    max_parallel: int | None = None,
) -> Iterator[ArbitrageLoop]:
    """All concrete loops realizing one token cycle.

    Parameters
    ----------
    directions:
        ``"both"`` (default) yields forward and reverse traversals —
        at most one direction can be an arbitrage for a given pool
        choice; ``"forward"`` yields only the cycle's stored order.
    max_parallel:
        Cap on parallel pools considered per hop (sorted by pool id);
        ``None`` means all.  The §VI-style pipelines use all; the cap
        exists for the ablation that picks only the best pool.
    """
    if directions not in ("both", "forward"):
        raise ValueError(f"directions must be 'both' or 'forward', got {directions!r}")
    orders: list[tuple[Token, ...]] = [tuple(cycle)]
    if directions == "both":
        reverse = (cycle[0],) + tuple(reversed(cycle[1:]))
        orders.append(tuple(reverse))
    n = len(cycle)
    for order in orders:
        hop_pools = []
        for i in range(n):
            pools = graph.pools_between(order[i], order[(i + 1) % n])
            if max_parallel is not None:
                pools = pools[:max_parallel]
            hop_pools.append(pools)
        for combo in itertools.product(*hop_pools):
            yield ArbitrageLoop(order, combo)


def find_arbitrage_loops(
    graph: TokenGraph,
    length: int,
    tol: float = 0.0,
    directions: str = "both",
    max_parallel: int | None = None,
) -> list[ArbitrageLoop]:
    """Every length-``length`` loop currently admitting arbitrage.

    This is the paper's detector: a loop qualifies iff
    ``sum(log p_ij) > tol`` along its traversal direction.  The result
    is deterministic (canonical cycle order, pool-id order, forward
    before reverse).
    """
    found = []
    for cycle in enumerate_token_cycles(graph, length):
        for loop in expand_cycle_to_loops(
            graph, cycle, directions=directions, max_parallel=max_parallel
        ):
            if loop.log_rate_sum() > tol:
                found.append(loop)
    return found


def count_cycles(graph: TokenGraph, length: int) -> int:
    """Number of simple token cycles of the given length."""
    return sum(1 for _ in enumerate_token_cycles(graph, length))


def cycles_via_networkx(graph: TokenGraph, length: int) -> list[tuple[Token, ...]]:
    """Token cycles of exactly ``length`` via networkx's cycle finder.

    Independent implementation used by the test suite to validate
    :func:`enumerate_token_cycles` (same cycles up to rotation and
    direction).
    """
    import networkx as nx

    result = []
    for cycle in nx.simple_cycles(nx.Graph(graph), length_bound=length):
        if len(cycle) == length:
            result.append(tuple(cycle))
    return result
