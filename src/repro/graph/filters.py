"""Pool-quality filters (paper §VI).

The paper's empirical pipeline keeps only liquidity pools with

* TVL above thirty thousand dollars, and
* more than one hundred units of each token in reserve.

These predicates are composable callables over
:class:`~repro.amm.pool.Pool` so the snapshot pipeline (and tests) can
mix and match them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..amm.pool import Pool
from ..core.types import PriceMap

__all__ = [
    "PoolFilter",
    "min_tvl_filter",
    "min_reserve_filter",
    "paper_filters",
    "apply_filters",
    "PAPER_MIN_TVL_USD",
    "PAPER_MIN_RESERVE",
]

PoolFilter = Callable[[Pool], bool]

#: Paper §VI: "more than thirty thousand dollars TVL".
PAPER_MIN_TVL_USD = 30_000.0
#: Paper §VI: "the number of each token is larger than one hundred".
PAPER_MIN_RESERVE = 100.0


def min_tvl_filter(prices: PriceMap, min_tvl: float = PAPER_MIN_TVL_USD) -> PoolFilter:
    """Keep pools whose USD TVL is at least ``min_tvl``.

    Pools holding a token the price map does not quote are dropped
    (their TVL is unknowable, and the strategies could not monetize
    them anyway).
    """

    def accept(pool: Pool) -> bool:
        if any(token not in prices for token in pool.tokens):
            return False
        return pool.tvl(prices) >= min_tvl

    return accept


def min_reserve_filter(min_reserve: float = PAPER_MIN_RESERVE) -> PoolFilter:
    """Keep pools where both reserves exceed ``min_reserve`` units."""

    def accept(pool: Pool) -> bool:
        return all(pool.reserve_of(token) > min_reserve for token in pool.tokens)

    return accept


def paper_filters(prices: PriceMap) -> tuple[PoolFilter, ...]:
    """The exact filter pair of the paper's §VI pipeline."""
    return (min_tvl_filter(prices), min_reserve_filter())


def apply_filters(pools: Iterable[Pool], filters: Iterable[PoolFilter]) -> Iterator[Pool]:
    """Pools passing *every* filter, preserving input order."""
    filters = tuple(filters)
    for pool in pools:
        if all(f(pool) for f in filters):
            yield pool
