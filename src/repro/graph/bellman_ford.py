"""Moore–Bellman–Ford negative-cycle arbitrage detection.

Zhou et al. (paper ref [5]) detect arbitrage loops as negative cycles
in the directed graph whose edge weights are ``-log(p_ij)``: a cycle
has negative total weight exactly when the product of fee-adjusted
relative prices around it exceeds 1 — the paper's arbitrage criterion.

This is an *alternative detector* to the exhaustive enumeration in
:mod:`repro.graph.cycles`: it finds *some* arbitrage loop fast (or
proves none is reachable), rather than all loops of a given length.
Implemented from scratch (the classic relax-V-times algorithm with
predecessor tracing) because it is part of the paper's lineage; tests
cross-validate it against the exhaustive detector.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..amm.pool import Pool
from ..core.loop import ArbitrageLoop
from ..core.types import Token
from .build import TokenGraph

__all__ = ["directed_log_edges", "find_negative_cycle", "negative_cycle_to_loop"]


def directed_log_edges(graph: TokenGraph) -> Iterator[tuple[Token, Token, float, Pool]]:
    """Directed edges ``(u, v, -log p_uv, pool)`` for every pool, both ways.

    When several pools serve a pair, every one contributes both of its
    directions (each is a distinct arbitrage venue).
    """
    for u, v, attrs in graph.edges(data=True):
        pool: Pool = attrs["pool"]
        yield u, v, -math.log(pool.spot_price(u)), pool
        yield v, u, -math.log(pool.spot_price(v)), pool


def find_negative_cycle(graph: TokenGraph) -> list[tuple[Token, Pool]] | None:
    """One negative cycle as ``[(token, pool-used-to-leave-it), ...]``.

    Runs Moore–Bellman–Ford from a virtual super-source connected to
    every token with weight 0, so cycles anywhere in the graph are
    found.  Returns ``None`` when no negative cycle exists (no
    arbitrage anywhere).
    """
    edges = list(directed_log_edges(graph))
    nodes = list(graph.nodes)
    if not nodes or not edges:
        return None

    # Virtual source: start all distances at 0.
    dist: dict[Token, float] = {node: 0.0 for node in nodes}
    pred: dict[Token, tuple[Token, Pool] | None] = {node: None for node in nodes}

    updated_node: Token | None = None
    for _ in range(len(nodes)):
        updated_node = None
        for u, v, w, pool in edges:
            if dist[u] + w < dist[v] - 1e-15:
                dist[v] = dist[u] + w
                pred[v] = (u, pool)
                updated_node = v
        if updated_node is None:
            return None  # converged: no negative cycle

    # A relaxation happened on the V-th pass: walk predecessors back
    # V times to land inside the cycle, then trace it out.
    assert updated_node is not None
    node = updated_node
    for _ in range(len(nodes)):
        entry = pred[node]
        assert entry is not None
        node = entry[0]

    cycle: list[tuple[Token, Pool]] = []
    start = node
    while True:
        entry = pred[node]
        assert entry is not None
        prev_node, pool = entry
        cycle.append((prev_node, pool))
        node = prev_node
        if node == start:
            break
    cycle.reverse()
    return cycle


def negative_cycle_to_loop(cycle: list[tuple[Token, Pool]]) -> ArbitrageLoop:
    """Convert a detector cycle into an :class:`ArbitrageLoop`.

    ``cycle[i]`` is ``(token_i, pool_used_for_hop_i)`` with hops
    chaining ``token_i -> token_{i+1 mod n}``.
    """
    tokens = [token for token, _pool in cycle]
    pools = [pool for _token, pool in cycle]
    return ArbitrageLoop(tokens, pools)
