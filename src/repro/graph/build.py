"""Token exchange graph construction (paper §VI).

The token graph has tokens as nodes and liquidity pools as edges; it is
a networkx ``MultiGraph`` because several pools can serve the same
token pair, and each is a distinct arbitrage venue.  Edge data carries
the :class:`~repro.amm.pool.Pool` object itself under key ``"pool"``
(the graph is a *view* over live pool state — reserve changes are
immediately visible to later analyses).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from ..amm.pool import Pool
from ..amm.registry import PoolRegistry
from ..core.types import PriceMap
from .filters import PoolFilter, apply_filters

__all__ = ["TokenGraph", "build_token_graph", "graph_summary"]


class TokenGraph(nx.MultiGraph):
    """A networkx MultiGraph whose edges are liquidity pools.

    Thin subclass adding pool-centric conveniences; all networkx
    algorithms work on it unchanged.
    """

    def pools_between(self, token_a, token_b) -> tuple[Pool, ...]:
        """All pools on the (a, b) edge, deterministic order."""
        if not self.has_edge(token_a, token_b):
            return ()
        data = self.get_edge_data(token_a, token_b)
        return tuple(
            attrs["pool"]
            for _key, attrs in sorted(data.items(), key=lambda kv: kv[1]["pool"].pool_id)
        )

    def all_pools(self) -> tuple[Pool, ...]:
        """Every pool in the graph, ordered by pool id."""
        return tuple(
            sorted(
                (attrs["pool"] for _u, _v, attrs in self.edges(data=True)),
                key=lambda p: p.pool_id,
            )
        )


def build_token_graph(
    pools: Iterable[Pool] | PoolRegistry,
    filters: Iterable[PoolFilter] = (),
) -> TokenGraph:
    """Build the token graph from pools, applying optional filters.

    Nodes are :class:`~repro.core.types.Token`; each surviving pool
    adds one edge keyed by its pool id.
    """
    graph = TokenGraph()
    for pool in apply_filters(pools, filters):
        token0, token1 = pool.tokens
        graph.add_node(token0)
        graph.add_node(token1)
        graph.add_edge(token0, token1, key=pool.pool_id, pool=pool)
    return graph


def graph_summary(graph: TokenGraph, prices: PriceMap | None = None) -> dict:
    """Headline statistics mirroring the paper's §VI description.

    Returns node/edge counts, connectivity, and (when prices are
    given) total and median pool TVL.
    """
    summary: dict = {
        "tokens": graph.number_of_nodes(),
        "pools": graph.number_of_edges(),
        "connected_components": nx.number_connected_components(graph)
        if graph.number_of_nodes()
        else 0,
    }
    if prices is not None and graph.number_of_edges():
        tvls = sorted(pool.tvl(prices) for pool in graph.all_pools())
        summary["total_tvl_usd"] = sum(tvls)
        summary["median_pool_tvl_usd"] = tvls[len(tvls) // 2]
    return summary
