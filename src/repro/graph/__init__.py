"""Token exchange graph and loop detection (DESIGN.md S4/S5)."""

from .bellman_ford import directed_log_edges, find_negative_cycle, negative_cycle_to_loop
from .build import TokenGraph, build_token_graph, graph_summary
from .cycles import (
    count_cycles,
    enumerate_token_cycles,
    expand_cycle_to_loops,
    find_arbitrage_loops,
)
from .filters import (
    PAPER_MIN_RESERVE,
    PAPER_MIN_TVL_USD,
    apply_filters,
    min_reserve_filter,
    min_tvl_filter,
    paper_filters,
)

__all__ = [
    "PAPER_MIN_RESERVE",
    "PAPER_MIN_TVL_USD",
    "TokenGraph",
    "apply_filters",
    "build_token_graph",
    "count_cycles",
    "directed_log_edges",
    "enumerate_token_cycles",
    "expand_cycle_to_loops",
    "find_arbitrage_loops",
    "find_negative_cycle",
    "graph_summary",
    "min_reserve_filter",
    "min_tvl_filter",
    "negative_cycle_to_loop",
    "paper_filters",
]
