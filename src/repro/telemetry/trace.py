"""Low-overhead span tracing for the block-processing hot path.

Usage, at the call sites::

    from ..telemetry import trace

    with trace.span("shard.quote", shard=3, loops=len(requote)) as sp:
        ...
        sp.set(kernel=n_kernel)          # attrs may be added mid-span

* **Disabled is the default and costs one attribute check**: ``span``
  returns a shared no-op context manager whose ``__enter__`` /
  ``__exit__`` / ``set`` do nothing, so instrumentation can stay in
  the code permanently.  (Call sites are block- and pass-granular,
  never per-loop, which is what keeps even the *enabled* path cheap.)
* **Monotonic clocks**: spans are stamped with
  ``time.perf_counter_ns()`` — system-wide monotonic on Linux, so
  spans recorded in shard child processes (forked from the parent)
  line up with the parent's on one timeline.
* **Context-var nesting**: the active span id lives in a
  ``contextvars.ContextVar``, so nesting is correct across ``await``
  points and per-asyncio-task, without thread-locals.
* **Ring-buffer storage**: finished spans land in a bounded deque;
  a run that outlives the capacity keeps the most recent spans
  (oldest evicted), so memory is fixed no matter how long the trace
  runs.
* **Cross-process shipping**: a shard child calls :func:`drain` and
  sends the plain-dict spans back in its done message; the parent
  :func:`ingest`\\ s them with the shard's thread-id lane.  Forked
  children inherit the parent's buffer, so child mains :func:`clear`
  first.

Module-level functions drive the process-wide tracer; tests construct
private :class:`Tracer` instances.
"""

from __future__ import annotations

import contextvars
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "NOOP",
    "Span",
    "Tracer",
    "clear",
    "disable",
    "drain",
    "enable",
    "ingest",
    "is_enabled",
    "record",
    "span",
    "spans",
]

#: Default ring-buffer capacity: ~100 bytes/span dict keeps worst-case
#: storage around a few tens of MB, far beyond any benchmarked run.
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class Span:
    """One finished span on the monotonic timeline.

    ``tid`` is the display lane: 0 for the main process, ``shard + 1``
    for spans ingested from shard workers (inline or child-process).
    """

    name: str
    start_ns: int
    dur_ns: int
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            start_ns=data["start_ns"],
            dur_ns=data["dur_ns"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            attrs=dict(data.get("attrs", {})),
        )


class _NoopSpan:
    """The shared disabled-path context manager: does nothing, fast."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()

#: The shared do-nothing span, public for call sites that want to skip
#: even span creation on an empty path (``with trace.span(...) if n
#: else trace.NOOP:``).
NOOP = _NOOP


class _LiveSpan:
    """An open span: records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start_ns", "_id", "_parent", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        self._id = tracer._next_id()
        self._parent = tracer._current.get()
        self._token = tracer._current.set(self._id)
        self._start_ns = time.perf_counter_ns()
        return self

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __exit__(self, *exc) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        tracer._current.reset(self._token)
        # raw tuple, not a Span: materialization is deferred to the
        # readers so the hot path pays one append (see Tracer._buffer)
        tracer._buffer.append(
            (
                self.name,
                self._start_ns,
                end_ns - self._start_ns,
                self._id,
                self._parent,
                os.getpid(),
                tracer.tid,
                self.attrs,
            )
        )
        return False


class Tracer:
    """Span recorder: ring buffer + context-var nesting + on/off.

    The ring holds raw ``(name, start_ns, dur_ns, span_id, parent_id,
    pid, tid, attrs)`` tuples — building a :class:`Span` costs ~10x a
    tuple, so the enabled hot path appends tuples and the readers
    (:meth:`spans`, :meth:`drain`) materialize lazily.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, tid: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = False
        self.tid = tid
        self._buffer: deque[tuple] = deque(maxlen=capacity)
        self._current: contextvars.ContextVar[int | None] = contextvars.ContextVar(
            "repro_trace_span", default=None
        )
        self._id_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self, capacity: int | None = None) -> None:
        if capacity is not None:
            if capacity <= 0:
                raise ValueError(f"capacity must be positive, got {capacity}")
            if capacity != self._buffer.maxlen:
                self._buffer = deque(self._buffer, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._buffer.clear()

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def span(self, name: str, **attrs):
        """Open a span context; the shared no-op when disabled."""
        if not self.enabled:
            return _NOOP
        return _LiveSpan(self, name, attrs)

    def record(
        self, name: str, start_ns: int, dur_ns: int, **attrs
    ) -> None:
        """Record a retroactive span from explicit timestamps (e.g. a
        block's queue wait, measured between two perf-counter stamps
        taken before the span could be opened)."""
        if not self.enabled:
            return
        self._buffer.append(
            (
                name,
                start_ns,
                max(0, dur_ns),
                self._next_id(),
                None,
                os.getpid(),
                self.tid,
                attrs,
            )
        )

    # ------------------------------------------------------------------
    # reading / shipping
    # ------------------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """Snapshot of the buffered spans in recording order (i.e. by
        *end* time; exporters sort by start), materialized from the
        raw ring tuples."""
        return tuple(
            Span(
                name=name,
                start_ns=start_ns,
                dur_ns=dur_ns,
                span_id=span_id,
                parent_id=parent_id,
                pid=pid,
                tid=tid,
                attrs=attrs,
            )
            for name, start_ns, dur_ns, span_id, parent_id, pid, tid, attrs
            in self._buffer
        )

    def drain(self) -> list[dict]:
        """Remove and return every buffered span as plain dicts — the
        picklable form a shard child ships back in its done message."""
        out = [s.to_dict() for s in self.spans()]
        self._buffer.clear()
        return out

    def ingest(
        self, span_dicts: Iterable[dict], tid: int | None = None
    ) -> int:
        """Re-add spans drained elsewhere (shard children).  ``tid``
        reassigns the display lane; span/parent ids keep their
        child-local values, which stay unambiguous per ``(pid, tid)``.
        Works while disabled — the spans were already paid for."""
        n = 0
        for data in span_dicts:
            loaded = Span.from_dict(data)
            self._buffer.append(
                (
                    loaded.name,
                    loaded.start_ns,
                    loaded.dur_ns,
                    loaded.span_id,
                    loaded.parent_id,
                    loaded.pid,
                    loaded.tid if tid is None else tid,
                    loaded.attrs,
                )
            )
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Tracer({state}, {len(self._buffer)}/{self.capacity} spans, "
            f"tid={self.tid})"
        )


#: The process-wide tracer every instrumented call site records into.
TRACER = Tracer()


def span(name: str, **attrs):
    """``with trace.span("stage", key=value):`` — see module docstring."""
    tracer = TRACER
    if not tracer.enabled:
        return _NOOP
    return _LiveSpan(tracer, name, attrs)


def record(name: str, start_ns: int, dur_ns: int, **attrs) -> None:
    TRACER.record(name, start_ns, dur_ns, **attrs)


def enable(capacity: int | None = None) -> None:
    TRACER.enable(capacity)


def disable() -> None:
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled


def clear() -> None:
    TRACER.clear()


def drain() -> list[dict]:
    return TRACER.drain()


def ingest(span_dicts: Sequence[dict], tid: int | None = None) -> int:
    return TRACER.ingest(span_dicts, tid=tid)


def spans() -> tuple[Span, ...]:
    return TRACER.spans()
