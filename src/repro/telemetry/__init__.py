"""Unified telemetry: metric registry, span tracing, exporters.

The observability layer every other package records into:

* :mod:`~repro.telemetry.metrics` — a process-wide
  :class:`MetricRegistry` of named, optionally labeled counters,
  gauges, and reservoir-sampled histograms.  The service's
  :class:`~repro.service.metrics.ServiceMetrics`, the market layer's
  :class:`~repro.market.EvaluatorStats`, the replay driver, and the
  engine's :class:`~repro.engine.cache.PoolStateCache` all surface
  their numbers here (their original accessors remain as thin views).
* :mod:`~repro.telemetry.trace` — low-overhead span tracing over
  monotonic clocks: ``with trace.span("kernel.batch_quotes",
  loops=n):`` nests via a context variable, finished spans land in a
  bounded ring buffer, and the disabled path is a single attribute
  check returning a shared no-op.  Child-process spans (service
  shards) are drained and shipped back through the worker's done
  message.
* :mod:`~repro.telemetry.export` — JSONL and Chrome/Perfetto
  ``trace_event`` span dumps, plus a Prometheus text-format snapshot
  of any registry.
* :mod:`~repro.telemetry.server` — a dependency-free asyncio HTTP
  endpoint serving live Prometheus scrapes (``repro-arb serve
  --metrics-port``).

Everything here is stdlib + the numbers already being computed; when
tracing is disabled and nobody scrapes, the hot path pays one branch.
"""

from .export import (
    chrome_trace_events,
    prometheus_text,
    spans_to_chrome,
    spans_to_jsonl,
    write_prometheus,
    write_trace,
)
from .memory import current_rss_bytes, peak_rss_bytes
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    get_registry,
)
from .server import MetricsServer
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "current_rss_bytes",
    "get_registry",
    "peak_rss_bytes",
    "prometheus_text",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_prometheus",
    "write_trace",
]
