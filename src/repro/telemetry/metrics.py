"""The metric registry: named, labeled counters/gauges/histograms.

One :class:`MetricRegistry` is a flat namespace of metric families.  A
family is a metric name plus a kind; each distinct label set under it
is its own child instrument, memoized so the hot path is one dict
lookup::

    registry.counter("events_ingested").inc()
    registry.gauge("queue_depth", shard=3).set(qsize)
    registry.histogram("block_seconds").observe(dt)

Design rules:

* **Bounded memory everywhere.**  Histograms keep an exact count /
  sum / min / max plus a fixed-size reservoir (Algorithm R, seeded
  deterministically from the metric name) so quantiles stay available
  over unbounded streams without unbounded storage.  Label cardinality
  is capped per family (:attr:`MetricRegistry.max_label_sets`) so a
  bug interpolating user data into labels fails loudly instead of
  leaking memory one label set at a time.
* **Mergeable.**  Registries fold into each other —
  :meth:`MetricRegistry.merge` adds counters, merges histogram
  reservoirs, keeps the high-water mark for ``*_max`` gauges and the
  newer value for the rest — which is how per-run windows accumulate
  into lifetime registries and how child-process shards report back.
* **Dependency-free.**  The Prometheus / Chrome renderings live in
  :mod:`repro.telemetry.export`; this module is pure bookkeeping.

The process-wide default registry is :func:`get_registry`; components
that want isolation (tests, per-run windows) construct their own.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelSet",
    "MetricRegistry",
    "get_registry",
]

#: Hashable canonical form of a label mapping: sorted (key, value)
#: pairs with values stringified (Prometheus labels are strings).
LabelSet = tuple[tuple[str, str], ...]

#: Default reservoir size for histograms (and the service's
#: :class:`~repro.service.metrics.LatencyStat`): large enough for
#: stable p99s, small enough that a week-long serve run holds a few
#: hundred KB of samples total.
DEFAULT_RESERVOIR = 4096


def _label_key(labels: dict) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone event count (plus :meth:`set` for mirrored totals)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    def set(self, value: int) -> None:
        """Mirror an externally accumulated lifetime total (e.g. the
        batch evaluator's routing counters, which stay plain ints on
        the hot path and sync here at publish points)."""
        self.value = value

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels) or ''}={self.value})"


class Gauge:
    """Last-observed value of a sampled quantity."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the high-water mark (queue depths, loop lag)."""
        if value > self.value:
            self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels) or ''}={self.value})"


class Histogram:
    """Streaming distribution with bounded-memory quantiles.

    Count, sum, min, and max are exact over every observation; the
    sample store is a fixed-size uniform reservoir (Vitter's
    Algorithm R) so nearest-rank quantiles stay representative of the
    whole stream while memory stays ``O(max_samples)``.  The reservoir
    RNG is seeded from the metric name, so a replayed run reproduces
    its quantiles bit for bit.
    """

    __slots__ = (
        "name",
        "labels",
        "count",
        "total",
        "min",
        "max",
        "max_samples",
        "_samples",
        "_seen",
        "_rng",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        max_samples: int = DEFAULT_RESERVOIR,
        labels: LabelSet = (),
    ):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency cannot be negative, got {seconds}")
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self._offer(seconds)

    def _offer(self, value: float) -> None:
        """One Algorithm-R reservoir step: every offered value ends up
        stored with probability ``max_samples / seen``."""
        self._seen += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self.max_samples:
                self._samples[slot] = value

    def merge(self, other: "Histogram") -> None:
        """Absorb another histogram (same units assumed): exact
        aggregates add exactly; the other's reservoir is offered
        sample by sample, keeping this reservoir uniform-ish over the
        union."""
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        for value in other._samples:
            self._offer(value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Mean; ``nan`` before any observation — an empty histogram
        has no value, and 0.0 would read as "instant" in reports."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the reservoir (0 <= q <= 1);
        ``nan`` when empty (consistent with :attr:`mean` — never a
        raise, never a fake zero)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def samples_stored(self) -> int:
        return len(self._samples)

    def to_dict(self) -> dict:
        empty = self.count == 0
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "min_ms": (math.nan if empty else self.min) * 1e3,
            "max_ms": (math.nan if empty else self.max) * 1e3,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name}: n={self.count}, "
            f"p50={self.quantile(0.5) * 1e3:.3f}ms, "
            f"p99={self.quantile(0.99) * 1e3:.3f}ms)"
        )


class MetricRegistry:
    """A namespace of metric families, each a dict of labeled children.

    Parameters
    ----------
    max_label_sets:
        Cardinality cap per family.  Exceeding it raises
        ``ValueError`` — a runaway label (loop ids, timestamps) is a
        bug to surface, not a memory leak to absorb.
    """

    def __init__(self, max_label_sets: int = 512):
        if max_label_sets <= 0:
            raise ValueError(
                f"max_label_sets must be positive, got {max_label_sets}"
            )
        self.max_label_sets = max_label_sets
        self._families: dict[tuple[str, str], dict[LabelSet, object]] = {}

    # ------------------------------------------------------------------
    # instrument accessors (memoized; the hot path is two dict hits)
    # ------------------------------------------------------------------

    def _child(self, kind: str, name: str, labels: dict, factory):
        family = self._families.get((kind, name))
        if family is None:
            family = self._families[(kind, name)] = {}
        key = _label_key(labels) if labels else ()
        child = family.get(key)
        if child is None:
            if len(family) >= self.max_label_sets:
                raise ValueError(
                    f"{kind} {name!r} exceeded {self.max_label_sets} label "
                    f"sets (rejected {dict(labels)!r}); a label is "
                    "probably interpolating unbounded data"
                )
            child = family[key] = factory(key)
        return child

    def counter(self, name: str, **labels) -> Counter:
        return self._child(
            "counter", name, labels, lambda key: Counter(name, key)
        )

    def gauge(self, name: str, **labels) -> Gauge:
        return self._child("gauge", name, labels, lambda key: Gauge(name, key))

    def histogram(
        self, name: str, max_samples: int | None = None, **labels
    ) -> Histogram:
        size = max_samples if max_samples is not None else DEFAULT_RESERVOIR
        return self._child(
            "histogram", name, labels, lambda key: Histogram(name, size, key)
        )

    # ------------------------------------------------------------------
    # iteration / views
    # ------------------------------------------------------------------

    def collect(self) -> Iterator[object]:
        """Every instrument, ordered by (kind, name, labels) — the
        deterministic order the exporters render in."""
        for (kind, name) in sorted(self._families):
            family = self._families[(kind, name)]
            for key in sorted(family):
                yield family[key]

    def counters(self) -> dict[str, int]:
        """Unlabeled counters as a plain name → value dict (the
        :class:`~repro.service.metrics.ServiceMetrics` view)."""
        return {
            c.name: c.value
            for c in self._iter_kind("counter")
            if not c.labels
        }

    def gauges(self) -> dict[str, float]:
        return {
            g.name: g.value for g in self._iter_kind("gauge") if not g.labels
        }

    def histograms(self) -> dict[str, Histogram]:
        return {
            h.name: h for h in self._iter_kind("histogram") if not h.labels
        }

    def _iter_kind(self, kind: str) -> Iterator[object]:
        for (k, name) in sorted(self._families):
            if k != kind:
                continue
            family = self._families[(k, name)]
            for key in sorted(family):
                yield family[key]

    def __len__(self) -> int:
        return sum(len(family) for family in self._families.values())

    def __repr__(self) -> str:
        kinds = {"counter": 0, "gauge": 0, "histogram": 0}
        for (kind, _), family in self._families.items():
            kinds[kind] += len(family)
        return (
            f"MetricRegistry({kinds['counter']} counters, "
            f"{kinds['gauge']} gauges, {kinds['histogram']} histograms)"
        )

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters add; histograms merge reservoirs; gauges named
        ``*_max`` keep the high-water mark and all other gauges take
        the incoming value (it is the newer sample).
        """
        for instrument in other.collect():
            labels = dict(instrument.labels)
            if instrument.kind == "counter":
                self.counter(instrument.name, **labels).inc(instrument.value)
            elif instrument.kind == "gauge":
                mine = self.gauge(instrument.name, **labels)
                if instrument.name.endswith("_max"):
                    mine.max(instrument.value)
                else:
                    mine.set(instrument.value)
            else:
                self.histogram(
                    instrument.name,
                    max_samples=instrument.max_samples,
                    **labels,
                ).merge(instrument)

    def snapshot(self) -> dict:
        """JSON-ready nested dump (labels rendered inline)."""

        def _key(instrument) -> str:
            if not instrument.labels:
                return instrument.name
            rendered = ",".join(f"{k}={v}" for k, v in instrument.labels)
            return f"{instrument.name}{{{rendered}}}"

        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in self.collect():
            if instrument.kind == "counter":
                out["counters"][_key(instrument)] = instrument.value
            elif instrument.kind == "gauge":
                out["gauges"][_key(instrument)] = instrument.value
            else:
                out["histograms"][_key(instrument)] = instrument.to_dict()
        return out

    def clear(self) -> None:
        self._families.clear()


#: The process-wide default registry (the one ``--metrics-port``
#: serves and the replay / engine layers publish into by default).
_REGISTRY = MetricRegistry()


def get_registry() -> MetricRegistry:
    return _REGISTRY
