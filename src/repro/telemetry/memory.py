"""Process memory probes for the service's memory reports.

Two numbers, both dependency-free:

* :func:`current_rss_bytes` — the process's resident set right now
  (Linux ``/proc/self/status`` ``VmRSS``; 0 where unavailable);
* :func:`peak_rss_bytes` — the high-water RSS since process start
  (``VmHWM``, falling back to ``resource.getrusage``'s ``ru_maxrss``,
  which Linux reports in KiB and macOS in bytes).

Shard workers ship :func:`peak_rss_bytes` in their done message; the
publish stage turns it into a ``shard{N}_rss_bytes_max`` gauge whose
``*_max`` suffix makes the registry merge keep the high-water mark.
Note RSS measures the whole interpreter (numpy alone is tens of MB),
so the shared-vs-private *market state* comparison in the benchmark is
gated on the accounted column/registry bytes — RSS rides along as the
observational ground truth.
"""

from __future__ import annotations

import sys

__all__ = ["current_rss_bytes", "peak_rss_bytes"]


def _proc_status_kib(field: str) -> int | None:
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(field):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def current_rss_bytes() -> int:
    """Resident set size of this process, in bytes (0 if unknown)."""
    kib = _proc_status_kib(b"VmRSS:")
    return kib * 1024 if kib is not None else 0


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes."""
    kib = _proc_status_kib(b"VmHWM:")
    if kib is not None:
        return kib * 1024
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    return peak if sys.platform == "darwin" else peak * 1024


def estimate_object_bytes(obj, *extras) -> int:
    """``sys.getsizeof`` of ``obj`` plus any directly-held extras.

    A *lower-bound estimate* for the memory accounting in service
    reports (it does not chase shared interned objects on purpose —
    those are not duplicated per shard either).
    """
    total = sys.getsizeof(obj)
    for extra in extras:
        total += sys.getsizeof(extra)
    return total
