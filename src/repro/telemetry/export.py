"""Exporters: span dumps (JSONL, Chrome/Perfetto) and Prometheus text.

Span files
----------
* :func:`spans_to_jsonl` — one span dict per line, sorted by start
  time; the lossless machine-readable form.
* :func:`spans_to_chrome` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``, complete ``"X"`` events with
  microsecond timestamps), loadable directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
* :func:`write_trace` — suffix dispatch: ``.jsonl`` writes JSONL,
  anything else Chrome JSON.

Metrics
-------
* :func:`prometheus_text` — a registry snapshot in the Prometheus text
  exposition format (version 0.0.4): counters and gauges as single
  samples, histograms as summaries (``{quantile="..."}`` samples plus
  ``_sum`` / ``_count``).  Metric and label names are sanitized to the
  legal charset; NaN quantiles (empty histograms) are omitted rather
  than rendered.

All output is deterministically ordered (the registry collects sorted;
spans sort by start time then lane) so golden-file tests can assert
byte equality.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import Histogram, MetricRegistry
from .trace import Span

__all__ = [
    "chrome_trace_events",
    "prometheus_lines",
    "prometheus_text",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_prometheus",
    "write_trace",
]

#: Quantiles a histogram exports as summary samples.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _sorted_spans(spans: Iterable[Span]) -> list[Span]:
    return sorted(spans, key=lambda s: (s.start_ns, s.pid, s.tid, s.name))


# ----------------------------------------------------------------------
# span dumps
# ----------------------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    path = Path(path)
    with open(path, "w") as fh:
        for item in _sorted_spans(spans):
            fh.write(json.dumps(item.to_dict(), sort_keys=True))
            fh.write("\n")
    return path


def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Complete (``"ph": "X"``) trace events, microsecond timestamps.

    Nesting is positional, the way the format defines it: events on
    the same ``(pid, tid)`` lane nest by time containment, which is
    exactly what the context-var parenting produced.
    """
    events = []
    for item in _sorted_spans(spans):
        events.append(
            {
                "name": item.name,
                "ph": "X",
                "ts": item.start_ns / 1e3,
                "dur": item.dur_ns / 1e3,
                "pid": item.pid,
                "tid": item.tid,
                "args": dict(item.attrs),
            }
        )
    return events


def spans_to_chrome(spans: Iterable[Span], path: str | Path) -> Path:
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return path


def write_trace(spans: Iterable[Span], path: str | Path) -> Path:
    """Suffix dispatch: ``*.jsonl`` → JSONL, else Chrome/Perfetto JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return spans_to_jsonl(spans, path)
    return spans_to_chrome(spans, path)


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _metric_name(name: str) -> str:
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _label_pairs(labels, extra: Sequence[tuple[str, str]] = ()) -> str:
    pairs = [
        (_LABEL_NAME_OK.sub("_", k), v) for k, v in (*labels, *extra)
    ]
    if not pairs:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(
            k,
            v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
        )
        for k, v in pairs
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_lines(registry: MetricRegistry) -> list[str]:
    """The scrape body, line by line (no trailing newline)."""
    lines: list[str] = []
    typed: set[tuple[str, str]] = set()
    for instrument in registry.collect():
        name = _metric_name(instrument.name)
        if instrument.kind == "histogram":
            assert isinstance(instrument, Histogram)
            if (name, "summary") not in typed:
                typed.add((name, "summary"))
                lines.append(f"# TYPE {name} summary")
            for q in SUMMARY_QUANTILES:
                value = instrument.quantile(q)
                if math.isnan(value):
                    continue
                labels = _label_pairs(
                    instrument.labels, extra=(("quantile", str(q)),)
                )
                lines.append(f"{name}{labels} {_format_value(value)}")
            labels = _label_pairs(instrument.labels)
            lines.append(
                f"{name}_sum{labels} {_format_value(instrument.total)}"
            )
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            if (name, instrument.kind) not in typed:
                typed.add((name, instrument.kind))
                lines.append(f"# TYPE {name} {instrument.kind}")
            labels = _label_pairs(instrument.labels)
            lines.append(
                f"{name}{labels} {_format_value(instrument.value)}"
            )
    return lines


def prometheus_text(registry: MetricRegistry) -> str:
    """The full scrape payload (trailing newline included)."""
    lines = prometheus_lines(registry)
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path
