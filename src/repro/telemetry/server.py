"""A dependency-free asyncio HTTP endpoint for live metric scrapes.

``repro-arb serve --metrics-port 9100`` starts one of these next to the
pipeline; Prometheus (or ``curl``) hits ``/metrics`` for the text
exposition and ``/json`` for the raw registry snapshot.  It speaks just
enough HTTP/1.0 for a scraper: one request per connection, GET only.

The registry may be passed directly or as a zero-arg callable — the
service uses the callable form so each scrape sees the *live* window
metrics (merged cumulative + in-flight run) rather than only totals
from completed runs.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Union

from .export import prometheus_text
from .metrics import MetricRegistry

__all__ = ["MetricsServer"]

RegistrySource = Union[MetricRegistry, Callable[[], MetricRegistry]]


class MetricsServer:
    """Serve ``/metrics`` (Prometheus text) and ``/json`` (snapshot).

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` — that is how the tests (and the CI smoke) find it.
    """

    def __init__(
        self,
        registry: RegistrySource,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._source = registry
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    def _registry(self) -> MetricRegistry:
        if callable(self._source):
            return self._source()
        return self._source

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "MetricsServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            # Drain the header block; scrapers send little, but leaving
            # it unread can stall the close handshake.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            path = path.split("?", 1)[0]
            if method != "GET":
                status, ctype, body = (
                    "405 Method Not Allowed",
                    "text/plain",
                    b"method not allowed\n",
                )
            elif path == "/metrics":
                body = prometheus_text(self._registry()).encode("utf-8")
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/json":
                body = (
                    json.dumps(self._registry().snapshot(), sort_keys=True)
                    + "\n"
                ).encode("utf-8")
                status = "200 OK"
                ctype = "application/json"
            else:
                status, ctype, body = "404 Not Found", "text/plain", b"not found\n"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
