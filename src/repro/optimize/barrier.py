"""Log-barrier interior-point solver (from scratch).

Solves the :class:`~repro.optimize.program.ConvexProgram`

    maximize    c . v
    subject to  g_i(v) >= 0   (concave)
                v >= 0

by the standard barrier method (Boyd & Vandenberghe ch. 11): for an
increasing sequence of barrier weights ``t``, maximize

    phi_t(v) = t * c.v + sum_i log g_i(v) + sum_k log v_k

with damped Newton steps, starting from a caller-supplied strictly
feasible point.  Concavity of every ``g_i`` makes ``phi_t`` strictly
concave, so the Newton direction is well defined (the Hessian is
negative definite; we add a tiny Tikhonov term for float safety).

Linear *equality* constraints are supported through a KKT system:
each Newton step solves

    [ H   A^T ] [dv]   [-grad]
    [ A    0  ] [nu] = [  0  ]

which keeps iterates on the affine subspace ``A v = b`` provided the
starting point satisfies it.

The duality gap of the barrier method is ``m / t`` with ``m`` the
total number of inequality terms, which gives the stopping rule.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InfeasibleProgramError, SolverConvergenceError
from .program import ConvexProgram
from .result import SolveResult

__all__ = ["BarrierSolver", "solve_barrier"]


class BarrierSolver:
    """Reusable barrier-method solver with tunable parameters.

    Parameters
    ----------
    t0:
        Initial barrier weight.
    mu:
        Multiplicative increase of ``t`` per outer stage.
    tol:
        Target duality gap ``m / t``.
    newton_tol:
        Newton-decrement^2 / 2 threshold that ends a centering stage.
    max_newton:
        Newton iterations allowed per centering stage.
    alpha, beta:
        Backtracking line-search parameters (sufficient increase /
        step shrink).
    """

    def __init__(
        self,
        t0: float = 1.0,
        mu: float = 20.0,
        tol: float = 1e-9,
        newton_tol: float = 1e-10,
        max_newton: int = 80,
        alpha: float = 0.05,
        beta: float = 0.5,
    ):
        if mu <= 1.0:
            raise ValueError(f"mu must exceed 1, got {mu}")
        self.t0 = t0
        self.mu = mu
        self.tol = tol
        self.newton_tol = newton_tol
        self.max_newton = max_newton
        self.alpha = alpha
        self.beta = beta

    # ------------------------------------------------------------------

    def solve(self, program: ConvexProgram, initial_point: np.ndarray) -> SolveResult:
        """Run the barrier method from a strictly feasible start."""
        v = np.array(initial_point, dtype=float)
        if v.shape != (program.n_vars,):
            raise ValueError(
                f"initial point has shape {v.shape}, expected ({program.n_vars},)"
            )
        if not program.is_strictly_feasible(v):
            raise InfeasibleProgramError(
                "barrier method needs a strictly feasible starting point; "
                f"got inequality values {program.inequality_values(v)} "
                f"and v={v}"
            )
        a_eq, b_eq = self._equality_matrices(program)
        if a_eq is not None:
            residual = a_eq @ v - b_eq
            if np.max(np.abs(residual)) > 1e-8 * max(1.0, float(np.max(np.abs(v)))):
                raise InfeasibleProgramError(
                    f"starting point violates equality constraints by {residual}"
                )

        m = len(program.inequalities) + (program.n_vars if program.nonneg else 0)
        if m == 0:
            raise InfeasibleProgramError(
                "unconstrained linear maximization is unbounded"
            )
        t = self.t0
        outer = 0
        while m / t > self.tol:
            v = self._center(program, v, t, a_eq)
            t *= self.mu
            outer += 1
            if outer > 200:
                raise SolverConvergenceError(
                    "barrier method exceeded 200 outer stages"
                )
        return SolveResult(
            x=v,
            objective=program.objective_value(v),
            converged=True,
            iterations=outer,
            backend="barrier",
            message=f"duality gap <= {m / t:.3e}",
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _equality_matrices(program: ConvexProgram):
        if not program.equalities:
            return None, None
        a = np.vstack([e.coeffs for e in program.equalities])
        b = np.array([e.rhs for e in program.equalities])
        return a, b

    def _phi(self, program: ConvexProgram, v: np.ndarray, t: float) -> float:
        total = t * program.objective_value(v)
        for c in program.inequalities:
            val = c.value(v)
            if val <= 0.0:
                return -np.inf
            total += np.log(val)
        if program.nonneg:
            if np.any(v <= 0.0):
                return -np.inf
            total += float(np.sum(np.log(v)))
        return total

    def _grad_hess(self, program: ConvexProgram, v: np.ndarray, t: float):
        n = program.n_vars
        grad = t * program.objective.copy()
        hess = np.zeros((n, n))
        for c in program.inequalities:
            val = c.value(v)
            g = c.grad(v)
            h = c.hess(v)
            grad += g / val
            hess += h / val - np.outer(g, g) / (val * val)
        if program.nonneg:
            grad += 1.0 / v
            hess[np.diag_indices(n)] -= 1.0 / (v * v)
        return grad, hess

    def _newton_step(self, hess: np.ndarray, grad: np.ndarray, a_eq):
        n = grad.shape[0]
        # Tiny regularization keeps the system solvable when a
        # constraint is nearly linear in some direction.
        reg = 1e-12 * max(1.0, float(np.max(np.abs(hess))))
        h_reg = hess - reg * np.eye(n)
        if a_eq is None:
            return np.linalg.solve(-h_reg, grad)
        p = a_eq.shape[0]
        kkt = np.zeros((n + p, n + p))
        kkt[:n, :n] = h_reg
        kkt[:n, n:] = a_eq.T
        kkt[n:, :n] = a_eq
        rhs = np.concatenate([-grad, np.zeros(p)])
        sol = np.linalg.solve(kkt, rhs)
        return sol[:n]

    def _center(self, program: ConvexProgram, v: np.ndarray, t: float, a_eq):
        for _ in range(self.max_newton):
            grad, hess = self._grad_hess(program, v, t)
            step = self._newton_step(hess, grad, a_eq)
            decrement_sq = float(grad @ step)
            # For a concave problem grad @ step >= 0; tiny value means
            # we are centered.
            if decrement_sq / 2.0 <= self.newton_tol:
                return v
            v = self._line_search(program, v, step, grad, t)
        # Not fully centered; the outer loop's gap bound still holds
        # approximately — warn via exception only if badly off.
        grad, hess = self._grad_hess(program, v, t)
        step = self._newton_step(hess, grad, a_eq)
        if float(grad @ step) / 2.0 > 1e-4:
            raise SolverConvergenceError(
                f"Newton centering stalled at barrier weight t={t}"
            )
        return v

    def _line_search(
        self,
        program: ConvexProgram,
        v: np.ndarray,
        step: np.ndarray,
        grad: np.ndarray,
        t: float,
    ) -> np.ndarray:
        phi0 = self._phi(program, v, t)
        slope = float(grad @ step)
        s = 1.0
        for _ in range(100):
            candidate = v + s * step
            phi = self._phi(program, v + s * step, t)
            if np.isfinite(phi) and phi >= phi0 + self.alpha * s * slope:
                return candidate
            s *= self.beta
        # Step direction failed to improve — numerical floor reached.
        return v


def solve_barrier(
    program: ConvexProgram,
    initial_point: np.ndarray,
    **kwargs,
) -> SolveResult:
    """One-shot convenience wrapper around :class:`BarrierSolver`."""
    return BarrierSolver(**kwargs).solve(program, initial_point)
