"""SLSQP backend for :class:`~repro.optimize.program.ConvexProgram`.

An independent second solver (scipy's sequential least-squares
quadratic programming) used to cross-validate the from-scratch barrier
method: both must agree on every loop program to the comparison
tolerance the experiments need.  SLSQP also handles programs with
linear equality constraints and does not need a strictly feasible
start, so it is the fallback when the barrier cannot find an interior
point.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from ..core.errors import SolverConvergenceError
from .program import ConvexProgram
from .result import SolveResult

__all__ = ["solve_slsqp"]


def solve_slsqp(
    program: ConvexProgram,
    initial_point: np.ndarray | None = None,
    max_iter: int = 500,
    tol: float = 1e-12,
    strict: bool = False,
) -> SolveResult:
    """Solve a convex program with scipy SLSQP.

    Parameters
    ----------
    program:
        The program to maximize.
    initial_point:
        Start point; defaults to a small positive vector.  A warm start
        near the optimum (e.g. from the MaxMax solution) speeds up and
        stabilizes convergence substantially.
    strict:
        If True, raise :class:`SolverConvergenceError` when scipy
        reports failure; otherwise return the best point found with
        ``converged=False``.
    """
    n = program.n_vars
    if initial_point is None:
        x0 = np.full(n, 1e-6)
    else:
        x0 = np.array(initial_point, dtype=float)
        if x0.shape != (n,):
            raise ValueError(f"initial point has shape {x0.shape}, expected ({n},)")

    # scipy minimizes; negate the (linear) objective.
    scale = float(np.max(np.abs(program.objective), initial=1.0))
    if scale == 0.0:
        scale = 1.0
    c = program.objective / scale

    constraints = []
    for con in program.inequalities:
        constraints.append(
            {
                "type": "ineq",
                "fun": (lambda v, _c=con: _c.value(v)),
                "jac": (lambda v, _c=con: _c.grad(v)),
            }
        )
    for eq in program.equalities:
        constraints.append(
            {
                "type": "eq",
                "fun": (lambda v, _e=eq: _e.residual(v)),
                "jac": (lambda v, _e=eq: np.asarray(_e.coeffs, dtype=float)),
            }
        )

    bounds = [(0.0, None)] * n if program.nonneg else None

    res = minimize(
        fun=lambda v: -float(c @ v),
        x0=x0,
        jac=lambda v: -c,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": max_iter, "ftol": tol},
    )

    if not res.success and strict:
        raise SolverConvergenceError(f"SLSQP failed: {res.message}")

    x = np.asarray(res.x, dtype=float)
    if program.nonneg:
        x = np.maximum(x, 0.0)
    return SolveResult(
        x=x,
        objective=program.objective_value(x),
        converged=bool(res.success),
        iterations=int(res.nit),
        backend="slsqp",
        message=str(res.message),
    )
