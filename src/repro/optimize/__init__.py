"""Optimization substrate (DESIGN.md S6/S7).

1-D optimizers for the fixed-start problem (closed form, bisection on
the derivative, golden section) and a small convex-programming stack
(program IR + from-scratch log-barrier interior point + scipy SLSQP)
that stands in for the paper's off-the-shelf convex solver.
"""

from .barrier import BarrierSolver, solve_barrier
from .bisection import bisect_root, maximize_by_derivative
from .closed_form import optimize_composition, optimize_rotation
from .golden import golden_section_maximize
from .loop_program import LoopProgram, build_loop_program
from .program import (
    AffineConstraint,
    ConvexProgram,
    HopConstraint,
    LinearEquality,
    WeightedHopConstraint,
)
from .result import ScalarOptResult, SolveResult
from .slsqp import solve_slsqp
from .split import SplitResult, optimal_split
from .chain import chain_rate, optimize_rotation_chain

__all__ = [
    "AffineConstraint",
    "BarrierSolver",
    "ConvexProgram",
    "HopConstraint",
    "LinearEquality",
    "LoopProgram",
    "ScalarOptResult",
    "SolveResult",
    "SplitResult",
    "WeightedHopConstraint",
    "bisect_root",
    "chain_rate",
    "build_loop_program",
    "golden_section_maximize",
    "maximize_by_derivative",
    "optimal_split",
    "optimize_rotation_chain",
    "optimize_composition",
    "optimize_rotation",
    "solve_barrier",
    "solve_slsqp",
]
