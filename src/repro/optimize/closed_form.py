"""Closed-form single-rotation optimizer.

The composition algebra (:mod:`repro.amm.composition`) collapses a
rotation into ``out(t) = a*t/(b+c*t)``; the profit-maximizing input is
``t* = (sqrt(a*b)-b)/c`` (zero when ``a <= b``).  This module wraps
that in the same :class:`~repro.optimize.result.ScalarOptResult`
interface as the iterative optimizers so strategies can switch between
them (and the ablation benchmark can compare them).
"""

from __future__ import annotations

from ..amm.composition import SwapComposition
from ..core.loop import Rotation
from .result import ScalarOptResult

__all__ = ["optimize_composition", "optimize_rotation"]


def optimize_composition(comp: SwapComposition) -> ScalarOptResult:
    """Exact optimum of the round-trip profit of ``comp``."""
    t_star = comp.optimal_input()
    return ScalarOptResult(
        x=t_star,
        value=comp.profit(t_star) if t_star > 0 else 0.0,
        iterations=0,
        converged=True,
    )


def optimize_rotation(rotation: Rotation) -> ScalarOptResult:
    """Optimal input/profit for a rotation at current reserves.

    Constant-product rotations use the exact closed form; rotations
    containing weighted (G3M) hops fall back to the generic chain-rule
    bisection (:mod:`repro.optimize.chain`), which needs only the pool
    duck interface.
    """
    try:
        comp = rotation.composition()
    except TypeError:
        from .chain import optimize_rotation_chain

        return optimize_rotation_chain(rotation)
    return optimize_composition(comp)
