"""Optimal order splitting across parallel pools (exact KKT solution).

Uniswap routinely hosts several pools for the same token pair; the
token graph keeps them as parallel edges.  When a hop has parallel
pools, a trade of total size ``T`` should be *split*: allocate
``t_i >= 0`` with ``sum t_i = T`` to maximize ``sum F_i(t_i)``.

Because each ``F_i`` is concave, the optimum equalizes marginal rates
(water-filling): active pools share ``F_i'(t_i) = lam`` and inactive
pools have spot rate ``<= lam``.  With ``F_i(t) = a_i t/(b_i + c_i t)``
(:class:`~repro.amm.composition.SwapComposition` coefficients) the KKT
system solves in closed form per active set:

    t_i = (sqrt(a_i b_i / lam) - b_i) / c_i,

and scanning active sets in descending spot-rate order yields the
exact optimum in O(k log k).  :func:`optimal_split` implements that;
the test suite cross-validates it against an SLSQP solve.

This is an *extension* beyond the paper (its loops use one pool per
hop), motivated by its related work on order routing (Danos et al.);
the ablation benchmark quantifies how much splitting beats the
best-single-pool rule the detection pipeline uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["SplitResult", "optimal_split"]


@dataclass(frozen=True)
class SplitResult:
    """Optimal allocation of one trade across parallel pools.

    Attributes
    ----------
    allocations:
        Input per pool, aligned with the input sequence; zeros for
        pools too expensive to use at this trade size.
    outputs:
        Output per pool at those allocations.
    total_out:
        ``sum(outputs)``.
    marginal_rate:
        The common marginal rate ``lam`` of the active pools.
    """

    allocations: tuple[float, ...]
    outputs: tuple[float, ...]
    total_out: float
    marginal_rate: float


def optimal_split(
    pools: Sequence[tuple[float, float, float]],
    total_in: float,
) -> SplitResult:
    """Split ``total_in`` across parallel ``(x, y, fee)`` pools optimally.

    Raises ``ValueError`` for an empty pool list or negative input.
    ``total_in == 0`` returns the all-zero split.
    """
    if not pools:
        raise ValueError("need at least one pool to split across")
    if total_in < 0:
        raise ValueError(f"total_in must be >= 0, got {total_in}")

    coefficients = []
    for x, y, fee in pools:
        if x <= 0 or y <= 0:
            raise ValueError(f"reserves must be positive, got ({x}, {y})")
        if not 0.0 <= fee < 1.0:
            raise ValueError(f"fee must satisfy 0 <= fee < 1, got {fee}")
        gamma = 1.0 - fee
        coefficients.append((y * gamma, x, gamma))  # (a, b, c)

    n = len(coefficients)
    if total_in == 0.0:
        return SplitResult(
            allocations=(0.0,) * n,
            outputs=(0.0,) * n,
            total_out=0.0,
            marginal_rate=max(a / b for a, b, _c in coefficients),
        )

    # Scan active sets in descending spot-rate (a/b) order.  For a
    # candidate active set S, the common multiplier satisfies
    #   sqrt(1/lam) = (T + sum b/c) / (sum sqrt(a b)/c)  over S,
    # and S is consistent iff every member's spot rate exceeds lam and
    # (by the ordering) every excluded pool's does not.
    order = sorted(range(n), key=lambda i: -coefficients[i][0] / coefficients[i][1])
    sum_b_over_c = 0.0
    sum_root_ab_over_c = 0.0
    lam = 0.0
    active_count = 0
    for rank, index in enumerate(order, start=1):
        a, b, c = coefficients[index]
        sum_b_over_c += b / c
        sum_root_ab_over_c += math.sqrt(a * b) / c
        inv_sqrt_lam = (total_in + sum_b_over_c) / sum_root_ab_over_c
        candidate_lam = 1.0 / (inv_sqrt_lam * inv_sqrt_lam)
        # consistent if every pool in the set would receive t_i > 0,
        # i.e. its zero-input rate a/b exceeds candidate_lam; by the
        # sort order it suffices to check the *last* added pool, and
        # that the next pool (if any) would not want in.
        current_rate = a / b
        next_rate = (
            coefficients[order[rank]][0] / coefficients[order[rank]][1]
            if rank < n
            else -math.inf
        )
        if current_rate > candidate_lam >= next_rate:
            lam = candidate_lam
            active_count = rank
            break
    else:  # pragma: no cover - the full set is always consistent
        lam = candidate_lam
        active_count = n

    allocations = [0.0] * n
    outputs = [0.0] * n
    sqrt_lam = math.sqrt(lam)
    for index in order[:active_count]:
        a, b, c = coefficients[index]
        t = (math.sqrt(a * b) / sqrt_lam - b) / c
        t = max(t, 0.0)
        allocations[index] = t
        outputs[index] = a * t / (b + c * t) if t > 0 else 0.0

    # Normalize tiny float drift so allocations sum to total_in exactly.
    drift = total_in - sum(allocations)
    if allocations and abs(drift) > 0:
        heaviest = max(range(n), key=lambda i: allocations[i])
        allocations[heaviest] += drift
        a, b, c = coefficients[heaviest]
        t = allocations[heaviest]
        outputs[heaviest] = a * t / (b + c * t) if t > 0 else 0.0

    return SplitResult(
        allocations=tuple(allocations),
        outputs=tuple(outputs),
        total_out=sum(outputs),
        marginal_rate=lam,
    )
