"""Bisection maximizer for smooth concave 1-D profit functions.

The paper (§III, Fig. 1) optimizes a rotation by finding the input at
which the composed marginal rate equals 1, i.e. the root of
``f'(t) = d(delta_out)/d(delta_in) - 1``.  For a concave profit
function this root is the arg-max, and ``f'`` is monotone decreasing,
so plain bisection on the derivative is robust and fast — the paper's
stated method ("it is easy to use the bisection method").

Two entry points:

* :func:`bisect_root` — generic root finder for a monotone-decreasing
  function on a bracket;
* :func:`maximize_by_derivative` — profit maximization given the
  derivative of the *output* function (rate), handling the
  no-arbitrage (rate(0) <= 1) and bracket-expansion details.
"""

from __future__ import annotations

from typing import Callable

from ..core.errors import SolverConvergenceError
from .result import ScalarOptResult

__all__ = ["bisect_root", "maximize_by_derivative", "DEFAULT_TOL", "DEFAULT_MAX_ITER"]

DEFAULT_TOL = 1e-12
DEFAULT_MAX_ITER = 200


def bisect_root(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> tuple[float, int]:
    """Root of a decreasing function ``fn`` on ``[lo, hi]``.

    Requires ``fn(lo) >= 0 >= fn(hi)``.  Returns ``(root, iterations)``.
    Tolerance is *relative* to the bracket midpoint (absolute below 1),
    so it behaves sensibly for both tiny and huge reserve scales.
    """
    f_lo = fn(lo)
    f_hi = fn(hi)
    if f_lo < 0 or f_hi > 0:
        raise ValueError(
            f"bracket does not straddle the root: fn({lo})={f_lo}, fn({hi})={f_hi}"
        )
    iterations = 0
    while iterations < max_iter:
        mid = 0.5 * (lo + hi)
        width = hi - lo
        scale = max(1.0, abs(mid))
        if width <= tol * scale:
            return mid, iterations
        if fn(mid) >= 0:
            lo = mid
        else:
            hi = mid
        iterations += 1
    raise SolverConvergenceError(
        f"bisection did not converge in {max_iter} iterations "
        f"(bracket [{lo}, {hi}])"
    )


def maximize_by_derivative(
    profit: Callable[[float], float],
    rate: Callable[[float], float],
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
    initial_hi: float = 1.0,
) -> ScalarOptResult:
    """Maximize ``profit`` over ``t >= 0`` given the output rate.

    Parameters
    ----------
    profit:
        Concave profit function with ``profit(0) == 0``.
    rate:
        Derivative of the *output* wrt the input, monotone decreasing;
        the profit derivative is ``rate(t) - 1``.
    initial_hi:
        Starting guess for the upper bracket; expanded geometrically
        until ``rate(hi) < 1``.

    Returns the boundary optimum ``t = 0`` immediately when
    ``rate(0) <= 1`` (no arbitrage).
    """
    if rate(0.0) <= 1.0:
        return ScalarOptResult(x=0.0, value=0.0, iterations=0, converged=True)

    hi = initial_hi
    expansions = 0
    while rate(hi) >= 1.0:
        hi *= 2.0
        expansions += 1
        if expansions > 200:
            raise SolverConvergenceError(
                "could not bracket the optimum: rate stays >= 1 "
                f"even at input {hi}"
            )

    root, iterations = bisect_root(
        lambda t: rate(t) - 1.0, 0.0, hi, tol=tol, max_iter=max_iter
    )
    return ScalarOptResult(
        x=root,
        value=profit(root),
        iterations=iterations + expansions,
        converged=True,
    )
