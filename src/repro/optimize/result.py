"""Common result containers for the optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ScalarOptResult", "SolveResult"]


@dataclass(frozen=True)
class ScalarOptResult:
    """Result of a 1-D maximization.

    Attributes
    ----------
    x:
        Arg-max found.
    value:
        Objective value at ``x``.
    iterations:
        Iterations (bisection steps / golden-section shrinks) used.
    converged:
        Whether the tolerance was met within the iteration budget.
    """

    x: float
    value: float
    iterations: int
    converged: bool


@dataclass(frozen=True)
class SolveResult:
    """Result of a convex-program solve.

    Attributes
    ----------
    x:
        Optimal variable vector (copy; callers may mutate freely).
    objective:
        Objective value at ``x`` (in the program's *maximize* sense).
    converged:
        Whether the backend reports convergence.
    iterations:
        Outer iterations (barrier stages or SLSQP iterations).
    backend:
        Name of the solver backend that produced the result.
    message:
        Backend-specific status message.
    """

    x: np.ndarray
    objective: float
    converged: bool
    iterations: int
    backend: str
    message: str = ""
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.array(self.x, dtype=float))
