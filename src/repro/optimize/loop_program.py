"""Build the paper's convex programs (eq. 7 / eq. 8) from a loop.

Variable layout for an *n*-hop loop (hops indexed in loop order):

    v[2*i]     = delta-in of hop i   (input-token units of pool i)
    v[2*i + 1] = delta-out of hop i  (output-token units of pool i)

Objective (eq. 8): ``sum_j P_j * (out_{j-1} - in_j)`` where token *j*
is received from hop ``j-1 (mod n)`` and spent into hop ``j``.

Constraints:

* per hop: CPMM feasibility ``out_i <= F_i(in_i)`` (concave form of the
  paper's product constraint);
* per token: linking ``out_{j-1} >= in_j`` — these are the inequalities
  that distinguish eq. (8); eq. (7) instead imposes *equalities* for
  the non-start tokens (and the paper shows eq. (7) collapses to the
  1-D fixed-start problem);
* all variables >= 0.

The module also knows how to construct strictly feasible interior
points (needed by the barrier backend) and how to decode a solution
vector into per-token profits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import InfeasibleProgramError
from ..core.loop import ArbitrageLoop, Rotation
from ..core.types import PriceMap, ProfitVector, Token
from .closed_form import optimize_rotation
from .program import (
    AffineConstraint,
    ConvexProgram,
    HopConstraint,
    LinearEquality,
    WeightedHopConstraint,
)

__all__ = ["LoopProgram", "build_loop_program"]


@dataclass(frozen=True)
class LoopProgram:
    """A built convex program plus the metadata to interpret solutions."""

    program: ConvexProgram
    loop: ArbitrageLoop
    prices: PriceMap

    # ------------------------------------------------------------------
    # solution decoding
    # ------------------------------------------------------------------

    def hop_amounts(self, v: np.ndarray) -> list[tuple[float, float]]:
        """Per-hop ``(amount_in, amount_out)`` pairs from a solution."""
        n = len(self.loop)
        return [(float(v[2 * i]), float(v[2 * i + 1])) for i in range(n)]

    def profit_vector(self, v: np.ndarray, tol: float = 0.0) -> ProfitVector:
        """Per-token net profit ``out_{j-1} - in_j`` from a solution.

        ``tol`` clips solver noise *per token*, relative to that
        token's own flow through the loop (a global scale would wipe
        out real profits on loops whose reserves span many orders of
        magnitude — e.g. meme-token pools holding 1e10 units).
        """
        n = len(self.loop)
        net: dict[Token, float] = {}
        for j, token in enumerate(self.loop.tokens):
            received = float(v[2 * ((j - 1) % n) + 1])
            spent = float(v[2 * j])
            value = received - spent
            if tol > 0 and abs(value) <= tol * max(1.0, received, spent):
                continue  # solver noise: omit the component entirely
            net[token] = value
        return ProfitVector.from_mapping(net)

    def monetized_profit(self, v: np.ndarray) -> float:
        return self.profit_vector(v).monetize(self.prices)

    # ------------------------------------------------------------------
    # interior points (barrier starts)
    # ------------------------------------------------------------------

    def interior_point(self, shrink: float = 1e-6) -> np.ndarray:
        """A strictly feasible point for the eq.-8 program.

        Strategy: take the best fixed-start rotation's optimal path and
        shrink every hop output (and the next hop's input) by a factor
        ``(1 - shrink)``; if no rotation is profitable enough to leave
        strict slack in the start-token constraint, fall back to a
        tiny-input path.  Raises :class:`InfeasibleProgramError` when
        the loop admits no strict interior — which, by the paper's
        zero-solution theorem, happens exactly when there is no
        arbitrage in the loop.
        """
        candidates = []
        best = self._best_rotation()
        if best is not None:
            rotation, t_star = best
            candidates.append(self._shrunk_path(rotation, t_star, shrink))
        # Tiny-input fallbacks at several scales.
        min_reserve = min(
            pool.reserve_of(tok)
            for tok, _out, pool in Rotation(self.loop, 0).hops()
            for tok in [tok]
        )
        for scale in (1e-6, 1e-9, 1e-12):
            candidates.append(
                self._shrunk_path(Rotation(self.loop, 0), min_reserve * scale, shrink)
            )
        for candidate in candidates:
            if candidate is not None and self.program.is_strictly_feasible(candidate):
                return candidate
        raise InfeasibleProgramError(
            f"{self.loop!r} admits no strictly feasible interior point "
            "(no arbitrage in this loop direction)"
        )

    def _best_rotation(self):
        best = None
        best_value = 0.0
        for rotation in self.loop.rotations():
            result = optimize_rotation(rotation)
            if result.x <= 0.0:
                continue
            monetized = result.value * self.prices[rotation.start_token]
            if best is None or monetized > best_value:
                best = (rotation, result.x)
                best_value = monetized
        return best

    def _shrunk_path(self, rotation: Rotation, amount_in: float, shrink: float):
        """Hop amounts along ``rotation`` with multiplicative slack."""
        if amount_in <= 0.0:
            return None
        n = len(self.loop)
        offset = self.loop.tokens.index(rotation.start_token)
        v = np.zeros(2 * n)
        current = amount_in
        for k, (token_in, _token_out, pool) in enumerate(rotation.hops()):
            hop_index = (offset + k) % n
            v[2 * hop_index] = current
            out = pool.quote_out(token_in, current) * (1.0 - shrink)
            v[2 * hop_index + 1] = out
            current = out * (1.0 - shrink)
        return v


def build_loop_program(
    loop: ArbitrageLoop,
    prices: PriceMap,
    linking: str = "inequality",
) -> LoopProgram:
    """Construct the eq.-(8) (default) or eq.-(7) program for ``loop``.

    Parameters
    ----------
    loop:
        The arbitrage loop; its stored direction is the trade direction.
    prices:
        CEX prices quoting every loop token.
    linking:
        ``"inequality"`` builds eq. (8): every token may retain a
        surplus.  ``"equality"`` builds eq. (7): flow conservation is
        exact for every token except the first (the start token keeps
        ``out >= in``), reducing the search space to the fixed-start
        problem — kept for the ablation benchmark.
    """
    if linking not in ("inequality", "equality"):
        raise ValueError(f"linking must be 'inequality' or 'equality', got {linking!r}")

    n = len(loop)
    n_vars = 2 * n
    tokens = loop.tokens

    for token in tokens:
        prices[token]  # raise MissingPriceError early

    objective = np.zeros(n_vars)
    for j, token in enumerate(tokens):
        price = prices[token]
        objective[2 * ((j - 1) % n) + 1] += price  # received from hop j-1
        objective[2 * j] -= price  # spent into hop j

    inequalities = []
    equalities = []
    rotation0 = Rotation(loop, 0)
    for i, (token_in, token_out, pool) in enumerate(rotation0.hops()):
        x, y = pool.reserves_oriented(token_in)
        hop_name = f"hop-{i}:{token_in.symbol}->{token_out.symbol}"
        if getattr(pool, "is_constant_product", True):
            inequalities.append(
                HopConstraint(
                    x=x,
                    y=y,
                    gamma=1.0 - pool.fee,
                    idx_in=2 * i,
                    idx_out=2 * i + 1,
                    n_vars=n_vars,
                    name=hop_name,
                )
            )
        else:
            inequalities.append(
                WeightedHopConstraint(
                    x=x,
                    y=y,
                    gamma=1.0 - pool.fee,
                    ratio=pool.weight_ratio(token_in),
                    idx_in=2 * i,
                    idx_out=2 * i + 1,
                    n_vars=n_vars,
                    name=hop_name,
                )
            )

    for j, token in enumerate(tokens):
        coeffs = np.zeros(n_vars)
        coeffs[2 * ((j - 1) % n) + 1] = 1.0
        coeffs[2 * j] = -1.0
        if linking == "equality" and j != 0:
            equalities.append(
                LinearEquality(coeffs=coeffs, rhs=0.0, name=f"link-{token.symbol}")
            )
        else:
            inequalities.append(
                AffineConstraint(coeffs=coeffs, offset=0.0, name=f"link-{token.symbol}")
            )

    var_names = []
    for i, (token_in, token_out, _pool) in enumerate(rotation0.hops()):
        var_names.append(f"in{i}[{token_in.symbol}]")
        var_names.append(f"out{i}[{token_out.symbol}]")

    program = ConvexProgram(
        n_vars=n_vars,
        objective=objective,
        inequalities=inequalities,
        equalities=equalities,
        nonneg=True,
        var_names=tuple(var_names),
    )
    return LoopProgram(program=program, loop=loop, prices=prices)
