"""Generic rotation optimizer via the chain rule.

The composition algebra gives closed-form optima for constant-product
loops; loops containing weighted (or any other concave-swap) pools
need a numeric path.  By the chain rule, the derivative of the
composed output at input ``t`` is the product of per-hop marginal
rates evaluated along the simulated path:

    rate(t) = prod_i  F_i'(s_i),   s_0 = t, s_{i+1} = F_i(s_i).

Each ``F_i`` is concave increasing, so ``rate`` is decreasing and the
profit optimum is the unique root of ``rate(t) = 1`` — found by the
same bracket-and-bisect routine the paper describes, needing only the
``quote_out`` / ``marginal_rate`` duck interface every pool type
implements.
"""

from __future__ import annotations

from ..core.loop import Rotation
from .bisection import maximize_by_derivative
from .result import ScalarOptResult

__all__ = ["chain_rate", "optimize_rotation_chain"]


def chain_rate(rotation: Rotation, amount_in: float) -> float:
    """Composed marginal rate ``d out/d in`` at ``amount_in``."""
    rate = 1.0
    current = amount_in
    for token_in, _token_out, pool in rotation.hops():
        rate *= pool.marginal_rate(token_in, current)
        current = pool.quote_out(token_in, current)
    return rate


def optimize_rotation_chain(
    rotation: Rotation,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> ScalarOptResult:
    """Optimal input for any concave-swap rotation (chain-rule bisection)."""

    def profit(t: float) -> float:
        return rotation.simulate(t)[-1] - t

    first_pool = rotation.pools[0]
    hint = max(first_pool.reserve_of(rotation.start_token) * 1e-3, 1e-9)
    return maximize_by_derivative(
        profit=profit,
        rate=lambda t: chain_rate(rotation, t),
        tol=tol,
        max_iter=max_iter,
        initial_hi=hint,
    )
