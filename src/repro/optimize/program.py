"""A small convex-program intermediate representation.

The paper solves its eq. (8) with an off-the-shelf convex solver; that
stack (cvxpy + ECOS/SCS) is unavailable offline, so we define a minimal
IR rich enough for the loop program and solve it with two independent
backends (:mod:`repro.optimize.barrier` from scratch, and
:mod:`repro.optimize.slsqp` on top of scipy).

A :class:`ConvexProgram` is:

    maximize    objective . v
    subject to  g_i(v) >= 0        (g_i concave, smooth)
                A_eq v = b_eq      (optional linear equalities)
                v >= 0             (componentwise)

Concavity of every ``g_i`` makes the feasible set convex and the
log-barrier of the inequalities convex, which is what both backends
rely on.  Constraint objects expose value / gradient / Hessian.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["AffineConstraint", "HopConstraint", "WeightedHopConstraint", "LinearEquality", "ConvexProgram"]


@dataclass(frozen=True)
class AffineConstraint:
    """Linear inequality ``coeffs . v + offset >= 0`` (trivially concave)."""

    coeffs: np.ndarray
    offset: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "coeffs", np.asarray(self.coeffs, dtype=float))

    def value(self, v: np.ndarray) -> float:
        return float(self.coeffs @ v + self.offset)

    def grad(self, v: np.ndarray) -> np.ndarray:
        return self.coeffs

    def hess(self, v: np.ndarray) -> np.ndarray:
        n = self.coeffs.shape[0]
        return np.zeros((n, n))


@dataclass(frozen=True)
class HopConstraint:
    """CPMM hop feasibility ``y*g*v_in/(x + g*v_in) - v_out >= 0``.

    ``g`` is gamma = 1 - fee.  The left side is concave in
    ``(v_in, v_out)`` because ``t -> y*g*t/(x+g*t)`` is concave and
    ``-v_out`` is linear.  Equivalent to the paper's product form
    ``(x + g*dx)(y - dy) >= x*y`` on the box ``0 <= dy < y``, but with
    a concave constraint function, which the log-barrier needs.
    """

    x: float
    y: float
    gamma: float
    idx_in: int
    idx_out: int
    n_vars: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.x <= 0 or self.y <= 0:
            raise ValueError(f"reserves must be positive, got x={self.x}, y={self.y}")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")

    def _forward(self, t: float) -> float:
        return self.y * self.gamma * t / (self.x + self.gamma * t)

    def value(self, v: np.ndarray) -> float:
        return self._forward(float(v[self.idx_in])) - float(v[self.idx_out])

    def grad(self, v: np.ndarray) -> np.ndarray:
        g = np.zeros(self.n_vars)
        denom = self.x + self.gamma * float(v[self.idx_in])
        g[self.idx_in] = self.y * self.gamma * self.x / (denom * denom)
        g[self.idx_out] = -1.0
        return g

    def hess(self, v: np.ndarray) -> np.ndarray:
        h = np.zeros((self.n_vars, self.n_vars))
        denom = self.x + self.gamma * float(v[self.idx_in])
        h[self.idx_in, self.idx_in] = (
            -2.0 * self.y * self.gamma * self.gamma * self.x / (denom ** 3)
        )
        return h


@dataclass(frozen=True)
class WeightedHopConstraint:
    """G3M hop feasibility ``y*(1 - (x/(x+g*v_in))^r) - v_out >= 0``.

    ``r = w_in / w_out`` is the weight ratio; ``r == 1`` coincides with
    :class:`HopConstraint`.  The swap function is concave increasing
    for any ``r > 0``, so the constraint set stays convex and the
    barrier applies unchanged.
    """

    x: float
    y: float
    gamma: float
    ratio: float
    idx_in: int
    idx_out: int
    n_vars: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.x <= 0 or self.y <= 0:
            raise ValueError(f"reserves must be positive, got x={self.x}, y={self.y}")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.ratio <= 0:
            raise ValueError(f"weight ratio must be positive, got {self.ratio}")

    def _forward(self, t: float) -> float:
        base = self.x / (self.x + self.gamma * t)
        return self.y * (1.0 - base ** self.ratio)

    def value(self, v: np.ndarray) -> float:
        return self._forward(float(v[self.idx_in])) - float(v[self.idx_out])

    def grad(self, v: np.ndarray) -> np.ndarray:
        g = np.zeros(self.n_vars)
        denom = self.x + self.gamma * float(v[self.idx_in])
        g[self.idx_in] = (
            self.y * self.ratio * self.gamma * (self.x ** self.ratio)
            / (denom ** (self.ratio + 1.0))
        )
        g[self.idx_out] = -1.0
        return g

    def hess(self, v: np.ndarray) -> np.ndarray:
        h = np.zeros((self.n_vars, self.n_vars))
        denom = self.x + self.gamma * float(v[self.idx_in])
        h[self.idx_in, self.idx_in] = (
            -self.y * self.ratio * (self.ratio + 1.0) * self.gamma * self.gamma
            * (self.x ** self.ratio) / (denom ** (self.ratio + 2.0))
        )
        return h


@dataclass(frozen=True)
class LinearEquality:
    """Linear equality ``coeffs . v = rhs``."""

    coeffs: np.ndarray
    rhs: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "coeffs", np.asarray(self.coeffs, dtype=float))

    def residual(self, v: np.ndarray) -> float:
        return float(self.coeffs @ v - self.rhs)


@dataclass
class ConvexProgram:
    """Maximize ``objective . v`` over the convex feasible set."""

    n_vars: int
    objective: np.ndarray
    inequalities: list = field(default_factory=list)
    equalities: list = field(default_factory=list)
    nonneg: bool = True
    var_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.objective = np.asarray(self.objective, dtype=float)
        if self.objective.shape != (self.n_vars,):
            raise ValueError(
                f"objective has shape {self.objective.shape}, expected ({self.n_vars},)"
            )
        if self.var_names and len(self.var_names) != self.n_vars:
            raise ValueError(
                f"{len(self.var_names)} names for {self.n_vars} variables"
            )

    # ------------------------------------------------------------------
    # evaluation helpers shared by backends and tests
    # ------------------------------------------------------------------

    def objective_value(self, v: Sequence[float]) -> float:
        return float(self.objective @ np.asarray(v, dtype=float))

    def inequality_values(self, v: Sequence[float]) -> np.ndarray:
        arr = np.asarray(v, dtype=float)
        return np.array([c.value(arr) for c in self.inequalities])

    def equality_residuals(self, v: Sequence[float]) -> np.ndarray:
        arr = np.asarray(v, dtype=float)
        return np.array([e.residual(arr) for e in self.equalities])

    def is_feasible(self, v: Sequence[float], tol: float = 1e-8) -> bool:
        """Feasibility within ``tol`` (scaled by constraint magnitude)."""
        arr = np.asarray(v, dtype=float)
        if self.nonneg and np.any(arr < -tol * max(1.0, float(np.max(np.abs(arr), initial=0.0)))):
            return False
        for c in self.inequalities:
            if c.value(arr) < -tol * max(1.0, abs(c.value(np.zeros_like(arr)))):
                return False
        for e in self.equalities:
            scale = max(1.0, float(np.max(np.abs(e.coeffs))) * float(np.max(np.abs(arr), initial=0.0)))
            if abs(e.residual(arr)) > tol * scale:
                return False
        return True

    def is_strictly_feasible(self, v: Sequence[float], margin: float = 0.0) -> bool:
        """Strict feasibility of inequalities and bounds (barrier start)."""
        arr = np.asarray(v, dtype=float)
        if self.nonneg and np.any(arr <= margin):
            return False
        return all(c.value(arr) > margin for c in self.inequalities)
