"""Golden-section search: derivative-free 1-D maximizer.

Used as an independent cross-check of the bisection-on-derivative and
closed-form optimizers (three methods, one answer — see the ablation
benchmark), and as a fallback when only function values are available.
"""

from __future__ import annotations

import math
from typing import Callable

from ..core.errors import SolverConvergenceError
from .result import ScalarOptResult

__all__ = ["golden_section_maximize"]

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/phi ~ 0.618
_INV_PHI_SQ = (3.0 - math.sqrt(5.0)) / 2.0  # 1/phi^2 ~ 0.382


def golden_section_maximize(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 400,
) -> ScalarOptResult:
    """Maximize a unimodal ``fn`` on ``[lo, hi]`` by golden-section search.

    Tolerance is relative to interval magnitude (absolute below 1).
    Raises :class:`SolverConvergenceError` if the interval does not
    shrink to tolerance within ``max_iter`` shrinks.
    """
    if hi < lo:
        raise ValueError(f"need lo <= hi, got [{lo}, {hi}]")
    if hi == lo:
        return ScalarOptResult(x=lo, value=fn(lo), iterations=0, converged=True)

    a, b = lo, hi
    h = b - a
    c = a + _INV_PHI_SQ * h
    d = a + _INV_PHI * h
    fc = fn(c)
    fd = fn(d)

    for iteration in range(1, max_iter + 1):
        scale = max(1.0, abs(a), abs(b))
        if h <= tol * scale:
            x = 0.5 * (a + b)
            return ScalarOptResult(x=x, value=fn(x), iterations=iteration, converged=True)
        if fc > fd:
            b, d, fd = d, c, fc
            h = b - a
            c = a + _INV_PHI_SQ * h
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            h = b - a
            d = a + _INV_PHI * h
            fd = fn(d)

    raise SolverConvergenceError(
        f"golden-section search did not converge in {max_iter} iterations"
    )
