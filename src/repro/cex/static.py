"""Static price oracle: a frozen CEX snapshot.

Includes :data:`REFERENCE_PRICES_2023_09`, a static table of round
September-2023 price magnitudes for well-known symbols.  These are
*calibration magnitudes*, not market data — they give synthetic
markets a realistic spread of price scales (1e-3 stablecoin-satellite
tokens up to 1e4+ BTC), which is what exercises the MaxPrice
strategy's failure mode.
"""

from __future__ import annotations

from typing import Mapping

from ..core.types import PriceMap, Token
from .oracle import PriceOracle

__all__ = ["StaticPriceOracle", "REFERENCE_PRICES_2023_09"]

#: Rough September-2023 USD price magnitudes for common tokens.
REFERENCE_PRICES_2023_09: Mapping[str, float] = {
    "WBTC": 26_000.0,
    "WETH": 1_650.0,
    "BNB": 215.0,
    "SOL": 20.0,
    "LINK": 6.0,
    "UNI": 4.3,
    "MATIC": 0.53,
    "ARB": 0.8,
    "LDO": 1.5,
    "AAVE": 52.0,
    "MKR": 1_080.0,
    "SNX": 2.0,
    "CRV": 0.4,
    "COMP": 38.0,
    "SUSHI": 0.6,
    "YFI": 5_300.0,
    "USDC": 1.0,
    "USDT": 1.0,
    "DAI": 1.0,
    "FRAX": 1.0,
    "SHIB": 0.0000073,
    "PEPE": 0.0000007,
}


class StaticPriceOracle(PriceOracle):
    """An oracle that always returns the same frozen snapshot."""

    def __init__(self, prices: PriceMap | Mapping[str, float]):
        if isinstance(prices, PriceMap):
            self._prices = prices
        else:
            self._prices = PriceMap.from_symbols(dict(prices))

    @classmethod
    def reference_2023_09(cls) -> "StaticPriceOracle":
        """Oracle over :data:`REFERENCE_PRICES_2023_09`."""
        return cls(REFERENCE_PRICES_2023_09)

    def snapshot(self) -> PriceMap:
        return self._prices

    def with_price(self, token: Token, price: float) -> "StaticPriceOracle":
        """Copy with one price overridden (used by Px sweeps)."""
        return StaticPriceOracle(self._prices.with_price(token, price))

    def __repr__(self) -> str:
        return f"StaticPriceOracle({len(self._prices)} tokens)"
