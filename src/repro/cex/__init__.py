"""CEX price oracles (DESIGN.md S9) — the offline stand-in for the
paper's CoinGecko/Binance price feed."""

from .oracle import PriceOracle
from .static import REFERENCE_PRICES_2023_09, StaticPriceOracle
from .synthetic import RandomWalkOracle, lognormal_prices

__all__ = [
    "PriceOracle",
    "REFERENCE_PRICES_2023_09",
    "RandomWalkOracle",
    "StaticPriceOracle",
    "lognormal_prices",
]
