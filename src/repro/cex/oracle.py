"""CEX price-oracle interface.

The paper monetizes profits with Binance prices fetched from the
CoinGecko API.  Offline, the library abstracts the source behind
:class:`PriceOracle`: anything that can produce a
:class:`~repro.core.types.PriceMap` snapshot.  Strategies only ever see
the snapshot, so swapping a live API client for the synthetic feeds in
:mod:`repro.cex.synthetic` changes nothing downstream.
"""

from __future__ import annotations

import abc

from ..core.types import PriceMap, Token

__all__ = ["PriceOracle"]


class PriceOracle(abc.ABC):
    """Source of CEX (fiat-denominated) token prices."""

    @abc.abstractmethod
    def snapshot(self) -> PriceMap:
        """Current prices for every quoted token."""

    def price(self, token: Token) -> float:
        """Convenience single-token lookup from the current snapshot."""
        return self.snapshot()[token]

    def quotes(self, tokens) -> dict[Token, float]:
        """Prices for a subset of tokens (raises on missing quotes)."""
        snap = self.snapshot()
        return {token: snap[token] for token in tokens}
