"""Deterministic synthetic CEX price generation.

Two generators:

* :func:`lognormal_prices` — a one-shot cross-section of token prices
  with a realistic heavy-tailed spread, used when synthesizing market
  snapshots;
* :class:`RandomWalkOracle` — a geometric-random-walk *time series*
  oracle: each call to :meth:`~RandomWalkOracle.step` advances every
  price by an independent lognormal shock.  Used by the live-bot
  example to simulate CEX prices drifting between blocks.

Everything is seeded; identical seeds give identical prices on every
platform (numpy's PCG64 generator).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.types import PriceMap, Token
from .oracle import PriceOracle

__all__ = ["lognormal_prices", "RandomWalkOracle"]


def lognormal_prices(
    tokens: Sequence[Token] | Iterable[Token],
    seed: int,
    median_price: float = 5.0,
    sigma: float = 2.0,
) -> PriceMap:
    """Heavy-tailed random prices: ``median * exp(sigma * N(0,1))``.

    ``sigma = 2`` spans roughly five orders of magnitude across ~50
    tokens — comparable to the spread between meme tokens and WBTC in
    the paper's data.
    """
    tokens = list(tokens)
    if median_price <= 0:
        raise ValueError(f"median_price must be positive, got {median_price}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    shocks = rng.standard_normal(len(tokens))
    return PriceMap(
        {token: float(median_price * np.exp(sigma * z)) for token, z in zip(tokens, shocks)}
    )


class RandomWalkOracle(PriceOracle):
    """Geometric random walk around an initial snapshot.

    Parameters
    ----------
    initial:
        Starting prices.
    seed:
        RNG seed; the walk is fully reproducible.
    volatility:
        Per-step lognormal sigma (e.g. 0.002 ~ 0.2 % per block).
    drift:
        Per-step deterministic log-drift (default 0).
    """

    def __init__(
        self,
        initial: PriceMap,
        seed: int,
        volatility: float = 0.002,
        drift: float = 0.0,
    ):
        if volatility < 0:
            raise ValueError(f"volatility must be >= 0, got {volatility}")
        self._prices = dict(initial.items())
        self._rng = np.random.default_rng(seed)
        self.volatility = volatility
        self.drift = drift
        self._steps = 0

    @property
    def steps(self) -> int:
        """Number of :meth:`step` calls so far."""
        return self._steps

    def snapshot(self) -> PriceMap:
        return PriceMap(self._prices)

    def step(self) -> PriceMap:
        """Advance every price by one lognormal shock; return new snapshot."""
        tokens = sorted(self._prices, key=lambda t: t.symbol)
        shocks = self._rng.standard_normal(len(tokens))
        for token, z in zip(tokens, shocks):
            self._prices[token] *= float(
                np.exp(self.drift + self.volatility * z)
            )
        self._steps += 1
        return self.snapshot()

    def run(self, n_steps: int) -> list[PriceMap]:
        """Advance ``n_steps`` times; return the snapshot after each."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        return [self.step() for _ in range(n_steps)]
