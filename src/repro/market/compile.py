"""Compile arbitrage loops into hop-index matrices over a MarketArrays.

A :class:`CompiledLoopGroup` is the bridge between loop *objects* and
the columnar market state: for every loop of one length it stores, per
hop of the base rotation, the pool's row in the arrays and the hop's
orientation (is the input token the pool's ``token0``?).  A rotation
is then just a cyclic column shift, so the batch kernels can evaluate
any rotation of every loop with pure gathers — no object traversal.

Loops are *eligible* for compilation when every hop's pool is present
in the arrays; only loops crossing foreign pools land in the fallback
set and keep the scalar path.  Grouping is by ``(length, mixed)``
where ``mixed`` asks the family registry whether any hop's family
lacks a closed form (:func:`repro.market.families.needs_chain_kernel`):
purely constant-product loops keep the closed-form kernel
(:mod:`repro.market.kernel`, bit-exact by construction), while loops
containing at least one non-CPMM hop — G3M (including weighted pools
whose weights happen to be equal, which the scalar path also treats
as G3M) or stableswap, in any combination — are grouped for the
iterative chain kernel (:mod:`repro.market.weighted_kernel`), which
dispatches per-hop lanes by family.  Mixed-family loops therefore
never fall back to the scalar path.  Grouping by loop length keeps
each matrix rectangular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..amm.families import pool_family
from ..core.loop import ArbitrageLoop
from ..core.types import Token
from .arrays import MarketArrays
from .families import family_descriptor, needs_chain_kernel

__all__ = ["CompiledLoopGroup", "compile_loops"]


@dataclass(frozen=True)
class CompiledLoopGroup:
    """Hop-index matrices for all compiled loops of one length.

    Attributes
    ----------
    positions:
        Row ``k`` of the matrices describes ``loops[positions[k]]`` of
        the caller's loop sequence.
    loops:
        The loop objects, aligned with the matrix rows.
    length:
        Hop count ``n`` shared by every loop in the group.
    families:
        The set of family codes present across the group's hops
        (:data:`repro.amm.families.FAMILY_CPMM` and friends).
    pool_idx:
        ``(L, n)`` array: arrays-row of the pool serving hop ``j`` of
        the base rotation (start = ``loop.tokens[0]``).
    orient:
        ``(L, n)`` bool: True when hop ``j``'s input token is the
        pool's ``token0`` (so oriented reserves are ``(r0, r1)``).
    token_idx:
        ``(L, n)`` array: arrays token-column of ``loop.tokens[j]`` —
        the start token of rotation ``j``.
    symbol_rank:
        ``(L, n)`` array: rank of ``loop.tokens[j]`` among the loop's
        tokens sorted by symbol; the vectorized MaxPrice start
        selection uses it to reproduce ``max_price_token``'s
        ``(-price, symbol)`` tie-break.
    token_offset:
        Per loop, token → rotation offset (for fixed-start lookup).
    """

    positions: np.ndarray
    loops: tuple[ArbitrageLoop, ...]
    length: int
    families: frozenset[int]
    pool_idx: np.ndarray
    orient: np.ndarray
    token_idx: np.ndarray
    symbol_rank: np.ndarray
    token_offset: tuple[dict[Token, int], ...]

    @property
    def mixed(self) -> bool:
        """True when any hop's family lacks a closed form, so the
        group is quoted by the iterative chain kernel."""
        return needs_chain_kernel(self.families)

    @property
    def weighted(self) -> bool:
        """Historical alias of :attr:`mixed` (the chain kernel grew
        out of the G3M/weighted kernel)."""
        return self.mixed

    def __len__(self) -> int:
        return len(self.loops)

    def rows(self, sel: Sequence[int]) -> "CompiledLoopGroup":
        """Sub-group restricted to matrix rows ``sel`` (in order)."""
        rows = np.asarray(sel, dtype=np.intp)
        return CompiledLoopGroup(
            positions=self.positions[rows],
            loops=tuple(self.loops[k] for k in sel),
            length=self.length,
            families=self.families,
            pool_idx=self.pool_idx[rows],
            orient=self.orient[rows],
            token_idx=self.token_idx[rows],
            symbol_rank=self.symbol_rank[rows],
            token_offset=tuple(self.token_offset[k] for k in sel),
        )


def _loop_families(
    loop: ArbitrageLoop, arrays: MarketArrays
) -> frozenset[int] | None:
    """Family codes of a compilable loop's hops, ``None`` when a hop's
    pool is not in the arrays.  Unknown families fail loudly here (the
    descriptor lookup raises) rather than miscompiling to CPMM."""
    families = set()
    for pool in loop.pools:
        if pool.pool_id not in arrays.pool_index:
            return None
        code = pool_family(pool)
        family_descriptor(code)
        families.add(code)
    return frozenset(families)


def compile_loops(
    loops: Sequence[ArbitrageLoop], arrays: MarketArrays
) -> tuple[list[CompiledLoopGroup], list[int]]:
    """Split ``loops`` into compiled groups plus scalar-fallback positions.

    Returns ``(groups, fallback)`` where each group covers the eligible
    loops of one ``(length, mixed)`` combination (in input order)
    and ``fallback`` lists the positions of loops that must stay on the
    object path (a hop's pool missing from the arrays).
    """
    by_kind: dict[tuple[int, bool], list[int]] = {}
    kind_families: dict[tuple[int, bool], set[int]] = {}
    fallback: list[int] = []
    for position, loop in enumerate(loops):
        families = _loop_families(loop, arrays)
        if families is None:
            fallback.append(position)
        else:
            key = (len(loop), needs_chain_kernel(families))
            by_kind.setdefault(key, []).append(position)
            kind_families.setdefault(key, set()).update(families)

    groups: list[CompiledLoopGroup] = []
    for (length, _mixed), positions in sorted(by_kind.items()):
        count = len(positions)
        pool_idx = np.empty((count, length), dtype=np.intp)
        orient = np.empty((count, length), dtype=bool)
        token_idx = np.empty((count, length), dtype=np.intp)
        symbol_rank = np.empty((count, length), dtype=np.intp)
        token_offset: list[dict[Token, int]] = []
        group_loops: list[ArbitrageLoop] = []
        for k, position in enumerate(positions):
            loop = loops[position]
            group_loops.append(loop)
            ranked = sorted(range(length), key=lambda j: loop.tokens[j].symbol)
            for rank, j in enumerate(ranked):
                symbol_rank[k, j] = rank
            offsets: dict[Token, int] = {}
            for j in range(length):
                token_in = loop.tokens[j]
                pool = loop.pools[j]
                pool_idx[k, j] = arrays.pool_index[pool.pool_id]
                orient[k, j] = token_in == pool.token0
                token_idx[k, j] = arrays.token_index[token_in]
                offsets[token_in] = j
            token_offset.append(offsets)
        groups.append(
            CompiledLoopGroup(
                positions=np.asarray(positions, dtype=np.intp),
                loops=tuple(group_loops),
                length=length,
                families=frozenset(kind_families[(length, _mixed)]),
                pool_idx=pool_idx,
                orient=orient,
                token_idx=token_idx,
                symbol_rank=symbol_rank,
                token_offset=tuple(token_offset),
            )
        )
    return groups, fallback
