"""Strategy-level batch evaluation over columnar market state.

:class:`BatchEvaluator` is the piece the engine, the replay driver,
and the service's shard workers share: a fixed loop list compiled once
against a :class:`~repro.market.arrays.MarketArrays`, plus
``evaluate_many`` — the batch twin of
:meth:`repro.strategies.base.Strategy.evaluate_many` that quotes every
requested loop in one kernel pass per rotation and returns
:class:`~repro.strategies.base.StrategyResult` objects bit-identical
to the scalar path.

Dispatch is total over the paper's three fixed-start strategies: each
compiled group routes to the kernel matching its family and the
strategy's solver —

* constant-product group × ``closed_form`` → the bit-exact closed-form
  kernel (:func:`~repro.market.kernel.batch_quotes`);
* constant-product group × ``bisection`` / ``golden`` → the batched
  iterative kernels (:mod:`~repro.market.weighted_kernel`);
* weighted-containing group × any method → the chain-rule weighted
  kernel (the scalar path routes those rotations to the chain
  optimizer whatever the method says, and so does the batch path).

The remaining scalar fallbacks are structural, not family-based:

* strategies without a batch kind (convex, subclasses overriding
  evaluation, unknown solver strings) run loop by loop through
  ``evaluate_cached``;
* loops crossing pools outside the arrays stay scalar;
* dirty sets smaller than ``min_batch`` skip the kernel — below a few
  loops, fixed numpy dispatch overhead beats the win, and the scalar
  path can hit the reserve-keyed cache.

Whatever the route, the numbers are the same; only the wall-clock
differs.  :attr:`BatchEvaluator.stats` counts kernel-vs-scalar routing
so consumers can assert no loop is *forced* scalar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.errors import MissingPriceError, StrategyError
from ..core.loop import ArbitrageLoop, Rotation
from ..core.types import PriceMap
from ..strategies.base import Strategy, StrategyResult
from ..strategies.maxmax import MaxMaxStrategy
from ..strategies.maxprice import MaxPriceStrategy
from ..strategies.traditional import (
    TraditionalStrategy,
    quote_profit_vector,
    result_from_quote,
)
from .arrays import MarketArrays
from .compile import CompiledLoopGroup, compile_loops
from .kernel import BatchQuotes, batch_quotes, monetize_quotes
from .weighted_kernel import (
    cp_bisection_quotes,
    cp_golden_quotes,
    weighted_quotes,
)

__all__ = ["BatchEvaluator", "EvaluatorStats", "batch_kind"]

#: Below this many loops per compiled group, the kernel's fixed numpy
#: dispatch overhead outweighs the vectorization win; such slices run
#: scalar (where they may also hit the rotation cache).
DEFAULT_MIN_BATCH = 8

#: Solver methods the batch kernels reproduce exactly (the scalar
#: optimizers' closed form, derivative bisection, and golden-section
#: search all have array-wide lockstep twins).
_BATCH_METHODS = ("closed_form", "bisection", "golden")

#: quote_fn(arrays, group, offsets) -> BatchQuotes
QuoteFn = Callable[
    [MarketArrays, CompiledLoopGroup, "int | np.ndarray"], BatchQuotes
]


def batch_kind(strategy: Strategy) -> str | None:
    """The kernel dispatch kind of a strategy, or ``None`` if it must
    stay scalar.

    Only the exact fixed-start classes qualify (subclasses may override
    evaluation arbitrarily), on any of the three solver methods — each
    method has a batched twin reproducing its optima *and* its reported
    iteration counts.
    """
    if type(strategy) is TraditionalStrategy and strategy.method in _BATCH_METHODS:
        return "traditional"
    if type(strategy) is MaxPriceStrategy and strategy.method in _BATCH_METHODS:
        return "maxprice"
    if type(strategy) is MaxMaxStrategy and strategy.method in _BATCH_METHODS:
        return "maxmax"
    return None


def _quote_fn(group: CompiledLoopGroup, method: str) -> QuoteFn:
    """The kernel quoting ``group`` under solver ``method`` (see module
    docstring for the dispatch table)."""
    if group.weighted:
        return weighted_quotes
    if method == "closed_form":
        return batch_quotes
    if method == "bisection":
        return cp_bisection_quotes
    return cp_golden_quotes


@dataclass
class EvaluatorStats:
    """Cumulative routing counters of one :class:`BatchEvaluator`.

    ``kernel_loops`` / ``scalar_loops`` count loop evaluations answered
    by a batch kernel vs the per-loop object path (small-slice and
    non-batchable-strategy fallbacks land in the latter);
    ``kernel_passes`` counts vectorized group passes.
    """

    kernel_loops: int = 0
    scalar_loops: int = 0
    kernel_passes: int = 0

    def reset(self) -> None:
        self.kernel_loops = self.scalar_loops = self.kernel_passes = 0


class BatchEvaluator:
    """A fixed loop list compiled against columnar market state.

    Parameters
    ----------
    loops:
        The loop sequence this evaluator answers for; ``indices``
        passed to :meth:`evaluate_many` are positions into it.
    arrays:
        Columnar reserves the compiled hop matrices address.  When
        omitted, arrays are built over exactly the pools the loops
        cross.  The caller owns keeping them fresh (see
        :meth:`pull`).
    min_batch:
        Smallest per-group slice worth a kernel pass.
    """

    def __init__(
        self,
        loops: Sequence[ArbitrageLoop],
        arrays: MarketArrays | None = None,
        min_batch: int = DEFAULT_MIN_BATCH,
    ):
        self.loops: tuple[ArbitrageLoop, ...] = tuple(loops)
        self._source_pools: list | None = None
        if arrays is None:
            pools: dict[str, object] = {}
            for loop in self.loops:
                for pool in loop.pools:
                    pools.setdefault(pool.pool_id, pool)
            arrays = MarketArrays(pools.values())
            # kept row-aligned with the arrays so `refresh` can re-read
            # the live pools without a registry
            self._source_pools = list(pools.values())
        self.arrays = arrays
        self.min_batch = min_batch
        self.stats = EvaluatorStats()
        self.groups, self.fallback_positions = compile_loops(
            self.loops, arrays
        )
        self._where: dict[int, tuple[int, int]] = {}
        for gi, group in enumerate(self.groups):
            for row, position in enumerate(group.positions):
                self._where[int(position)] = (gi, row)
        # self.loops holds strong references, so an id match below can
        # only ever mean "the same live object"
        self._position_by_id: dict[int, int] = {
            id(loop): position for position, loop in enumerate(self.loops)
        }

    def __repr__(self) -> str:
        compiled = sum(len(g) for g in self.groups)
        weighted = sum(len(g) for g in self.groups if g.weighted)
        return (
            f"BatchEvaluator({len(self.loops)} loops: {compiled} compiled "
            f"({weighted} weighted) in {len(self.groups)} group(s), "
            f"{len(self.fallback_positions)} scalar-only)"
        )

    @property
    def compiled_count(self) -> int:
        return sum(len(g) for g in self.groups)

    def pull(
        self, registry, pool_ids: Iterable[str] | None = None
    ) -> None:
        """Refresh the arrays from live pool objects (see
        :meth:`MarketArrays.pull`)."""
        self.arrays.pull(registry, pool_ids)

    def refresh(self) -> None:
        """Re-read every source pool's current reserves into the arrays.

        Only available when the evaluator built its own arrays (it then
        kept the live pool references row-aligned); the engine's
        evaluator memo calls this before every reuse, so reserve
        mutations between calls are always visible.  Callers that
        supplied their own arrays refresh via :meth:`pull` instead.
        """
        if self._source_pools is None:
            raise RuntimeError(
                "this evaluator's arrays are caller-owned; refresh them "
                "with pull(registry, dirty_pool_ids)"
            )
        reserve0, reserve1 = self.arrays.reserve0, self.arrays.reserve1
        for i, pool in enumerate(self._source_pools):
            reserve0[i] = pool.reserve_of(pool.token0)
            reserve1[i] = pool.reserve_of(pool.token1)

    def positions_for(self, loops: Sequence[ArbitrageLoop]) -> list[int] | None:
        """Positions of ``loops`` in this evaluator's loop list, or
        ``None`` unless *every* one is the same live object compiled
        here (the engine memo's subset test — a universe's filtered
        sub-lists hit, anything else rebuilds)."""
        by_id = self._position_by_id
        positions = []
        for loop in loops:
            position = by_id.get(id(loop))
            if position is None:
                return None
            positions.append(position)
        return positions

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate_many(
        self,
        strategy: Strategy,
        prices: PriceMap,
        indices: Sequence[int] | None = None,
        cache=None,
    ) -> list[StrategyResult]:
        """Evaluate ``strategy`` on the loops at ``indices`` (all loops
        when ``None``); result ``i`` answers ``indices[i]``.

        Bit-identical to ``[strategy.evaluate_cached(loops[i], prices,
        cache) for i in indices]`` — the kernels handle eligible
        slices, everything else falls back to exactly that call.
        """
        positions = (
            list(indices) if indices is not None else list(range(len(self.loops)))
        )
        results: dict[int, StrategyResult] = {}
        kind = batch_kind(strategy)
        if kind is not None:
            by_group: dict[int, list[int]] = {}
            for position in positions:
                where = self._where.get(position)
                if where is not None:
                    by_group.setdefault(where[0], []).append(where[1])
            for gi, rows in by_group.items():
                if len(rows) < self.min_batch:
                    continue  # scalar fallback below
                group = self.groups[gi]
                sub = group if len(rows) == len(group) else group.rows(rows)
                quote_fn = _quote_fn(group, strategy.method)
                self.stats.kernel_passes += 1
                for position, result in zip(
                    sub.positions,
                    _evaluate_group(
                        kind, strategy, self.arrays, sub, prices, quote_fn
                    ),
                ):
                    results[int(position)] = result
        self.stats.kernel_loops += len(results)
        self.stats.scalar_loops += len(positions) - len(results)
        for position in positions:
            if position not in results:
                results[position] = strategy.evaluate_cached(
                    self.loops[position], prices, cache
                )
        return [results[position] for position in positions]


# ----------------------------------------------------------------------
# per-kind group evaluation
# ----------------------------------------------------------------------


def _assemble(
    group: CompiledLoopGroup,
    k: int,
    offset: int,
    quotes: BatchQuotes,
    monetized: float,
    strategy_name: str,
    method: str,
    extra_details: dict | None = None,
) -> StrategyResult:
    rotation = Rotation(group.loops[k], offset)
    quote = quotes.quote(k)
    return result_from_quote(
        rotation,
        quote,
        None,
        strategy_name,
        method,
        profit=quote_profit_vector(rotation, quote),
        monetized=monetized,
        extra_details=extra_details,
    )


def _raise_missing_price(group: CompiledLoopGroup, k: int, offset: int):
    token = group.loops[k].tokens[offset]
    raise MissingPriceError(f"no CEX price for token {token.symbol!r}")


def _check_monetized(
    monetized: np.ndarray, group: CompiledLoopGroup, offsets: np.ndarray
) -> None:
    """A NaN can only come from monetizing a profitable rotation whose
    start token has no CEX price — the case where the scalar path
    raises too."""
    bad = np.isnan(monetized)
    if bad.any():
        k = int(np.argmax(bad))
        _raise_missing_price(group, k, int(offsets[k]))


def _evaluate_group(
    kind: str,
    strategy: Strategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    if kind == "traditional":
        return _traditional_group(strategy, arrays, group, prices, quote_fn)
    if kind == "maxprice":
        return _maxprice_group(strategy, arrays, group, prices, quote_fn)
    return _maxmax_group(strategy, arrays, group, prices, quote_fn)


def _traditional_group(
    strategy: TraditionalStrategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    count = len(group)
    start = strategy.start_token
    if start is None:
        offsets = np.zeros(count, dtype=np.intp)
    else:
        offset_list = []
        for loop, token_offset in zip(group.loops, group.token_offset):
            offset = token_offset.get(start)
            if offset is None:
                raise StrategyError(
                    f"start token {start} is not in {loop!r}; the traditional "
                    "strategy needs a loop through its numeraire"
                )
            offset_list.append(offset)
        offsets = np.asarray(offset_list, dtype=np.intp)
    quotes = quote_fn(arrays, group, offsets)
    price_vec = arrays.price_vector(prices)
    start_prices = price_vec[group.token_idx[np.arange(count), offsets]]
    monetized = monetize_quotes(quotes, start_prices)
    _check_monetized(monetized, group, offsets)
    return [
        _assemble(group, k, int(offsets[k]), quotes, float(monetized[k]),
                  strategy.name, strategy.method)
        for k in range(count)
    ]


def _maxprice_group(
    strategy: MaxPriceStrategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    count = len(group)
    price_vec = arrays.price_vector(prices)
    price_matrix = price_vec[group.token_idx]
    missing = np.isnan(price_matrix)
    if missing.any():
        k = int(np.argmax(missing.any(axis=1)))
        _raise_missing_price(group, k, int(np.argmax(missing[k])))
    # ``max_price_token``: highest price, ties to the smallest symbol.
    # Ranks are a per-row permutation, so masking non-maximal columns
    # to `length` and taking argmin reproduces the (-price, symbol)
    # sort exactly.
    row_max = price_matrix.max(axis=1)
    ranked = np.where(
        price_matrix == row_max[:, None], group.symbol_rank, group.length
    )
    offsets = np.argmin(ranked, axis=1)
    quotes = quote_fn(arrays, group, offsets)
    start_prices = price_matrix[np.arange(count), offsets]
    monetized = monetize_quotes(quotes, start_prices)
    return [
        _assemble(group, k, int(offsets[k]), quotes, float(monetized[k]),
                  strategy.name, strategy.method)
        for k in range(count)
    ]


def _maxmax_group(
    strategy: MaxMaxStrategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    count = len(group)
    n = group.length
    price_vec = arrays.price_vector(prices)
    quotes_by_offset: list[BatchQuotes] = []
    monetized = np.empty((n, count), dtype=np.float64)
    for offset in range(n):
        quotes = quote_fn(arrays, group, offset)
        quotes_by_offset.append(quotes)
        start_prices = price_vec[group.token_idx[:, offset]]
        monetized[offset] = monetize_quotes(quotes, start_prices)
    bad = np.isnan(monetized)
    if bad.any():
        k = int(np.argmax(bad.any(axis=0)))
        _raise_missing_price(group, k, int(np.argmax(bad[:, k])))
    # first maximal rotation wins, like the scalar strict-`>` scan
    best = np.argmax(monetized, axis=0)
    results = []
    for k in range(count):
        offset = int(best[k])
        loop = group.loops[k]
        per_rotation = {
            loop.tokens[j].symbol: float(monetized[j, k]) for j in range(n)
        }
        results.append(
            _assemble(
                group,
                k,
                offset,
                quotes_by_offset[offset],
                float(monetized[offset, k]),
                strategy.name,
                strategy.method,
                {"per_rotation": per_rotation},
            )
        )
    return results
