"""Strategy-level batch evaluation over columnar market state.

:class:`BatchEvaluator` is the piece the engine, the replay driver,
and the service's shard workers share: a fixed loop list compiled once
against a :class:`~repro.market.arrays.MarketArrays`, plus
``evaluate_many`` — the batch twin of
:meth:`repro.strategies.base.Strategy.evaluate_many` that quotes every
requested loop in one kernel pass per rotation and returns
:class:`~repro.strategies.base.StrategyResult` objects bit-identical
to the scalar path.

Dispatch is total over the paper's three fixed-start strategies: each
compiled group routes to the kernel matching its family and the
strategy's solver —

* constant-product group × ``closed_form`` → the bit-exact closed-form
  kernel (:func:`~repro.market.kernel.batch_quotes`);
* constant-product group × ``bisection`` / ``golden`` → the batched
  iterative kernels (:mod:`~repro.market.weighted_kernel`);
* weighted-containing group × any method → the chain-rule weighted
  kernel (the scalar path routes those rotations to the chain
  optimizer whatever the method says, and so does the batch path).

The remaining scalar fallbacks are structural, not family-based:

* strategies without a batch kind (convex, subclasses overriding
  evaluation, unknown solver strings) run loop by loop through
  ``evaluate_cached``;
* loops crossing pools outside the arrays stay scalar;
* dirty sets smaller than ``min_batch`` skip the kernel — below a few
  loops, fixed numpy dispatch overhead beats the win, and the scalar
  path can hit the reserve-keyed cache.

Whatever the route, the numbers are the same; only the wall-clock
differs.  :attr:`BatchEvaluator.stats` counts kernel-vs-scalar routing
so consumers can assert no loop is *forced* scalar.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.errors import MissingPriceError, StrategyError
from ..core.loop import ArbitrageLoop, Rotation
from ..core.types import PriceMap
from ..telemetry import trace
from ..strategies.base import Strategy, StrategyResult
from ..strategies.maxmax import MaxMaxStrategy
from ..strategies.maxprice import MaxPriceStrategy
from ..strategies.traditional import (
    RotationQuote,
    TraditionalStrategy,
    quote_profit_vector,
    result_from_quote,
)
from ..amm.families import pool_family
from .arrays import MarketArrays
from .bounds import below_threshold
from .bounds import monetized_bounds as _group_monetized_bounds
from .compile import CompiledLoopGroup, compile_loops
from .families import family_descriptor
from .integer_kernel import (
    WAD,
    base_units,
    exact_loop_quote,
    integer_batch_quotes,
)
from .kernel import BatchQuotes, batch_quotes, monetize_quotes
from .weighted_kernel import (
    chain_quotes,
    cp_bisection_quotes,
    cp_golden_quotes,
)

__all__ = [
    "BatchEvaluator",
    "EvaluatorStats",
    "batch_kind",
    "pruned_zero_result",
]

#: Below this many loops per compiled group, the kernel's fixed numpy
#: dispatch overhead outweighs the vectorization win; such slices run
#: scalar (where they may also hit the rotation cache).
DEFAULT_MIN_BATCH = 8

#: Solver methods the batch kernels reproduce exactly (the scalar
#: optimizers' closed form, derivative bisection, and golden-section
#: search all have array-wide lockstep twins).
_BATCH_METHODS = ("closed_form", "bisection", "golden")

#: quote_fn(arrays, group, offsets) -> BatchQuotes
QuoteFn = Callable[
    [MarketArrays, CompiledLoopGroup, "int | np.ndarray"], BatchQuotes
]


def batch_kind(strategy: Strategy) -> str | None:
    """The kernel dispatch kind of a strategy, or ``None`` if it must
    stay scalar.

    Only the exact fixed-start classes qualify (subclasses may override
    evaluation arbitrarily), on any of the three solver methods — each
    method has a batched twin reproducing its optima *and* its reported
    iteration counts.
    """
    if type(strategy) is TraditionalStrategy and strategy.method in _BATCH_METHODS:
        return "traditional"
    if type(strategy) is MaxPriceStrategy and strategy.method in _BATCH_METHODS:
        return "maxprice"
    if type(strategy) is MaxMaxStrategy and strategy.method in _BATCH_METHODS:
        return "maxmax"
    return None


def _quote_fn(group: CompiledLoopGroup, method: str) -> QuoteFn:
    """The kernel quoting ``group`` under solver ``method`` (see module
    docstring for the dispatch table)."""
    if group.mixed:
        return chain_quotes
    if method == "closed_form":
        return batch_quotes
    if method == "bisection":
        return cp_bisection_quotes
    return cp_golden_quotes


@dataclass
class EvaluatorStats:
    """Cumulative routing counters of one :class:`BatchEvaluator`.

    ``kernel_loops`` / ``scalar_loops`` count loop evaluations answered
    by a batch kernel vs the per-loop object path (small-slice and
    non-batchable-strategy fallbacks land in the latter);
    ``kernel_passes`` counts vectorized group passes.  ``pruned_loops``
    counts evaluations answered by the bound pass alone (no exact
    quote ran) and ``bound_passes`` the vectorized bound computations
    behind them.
    """

    kernel_loops: int = 0
    scalar_loops: int = 0
    kernel_passes: int = 0
    pruned_loops: int = 0
    bound_passes: int = 0

    def reset(self) -> None:
        self.kernel_loops = self.scalar_loops = self.kernel_passes = 0
        self.pruned_loops = self.bound_passes = 0

    def to_dict(self) -> dict:
        return {
            "kernel_loops": self.kernel_loops,
            "scalar_loops": self.scalar_loops,
            "kernel_passes": self.kernel_passes,
            "pruned_loops": self.pruned_loops,
            "bound_passes": self.bound_passes,
        }

    def publish(self, registry, **labels) -> None:
        """Mirror these lifetime totals into ``registry`` counters
        (``evaluator_kernel_loops`` etc.).  The hot path keeps plain
        int attributes; syncing happens at publish points — scrapes,
        report generation — via :meth:`~repro.telemetry.Counter.set`."""
        for name, value in self.to_dict().items():
            registry.counter(f"evaluator_{name}", **labels).set(value)


class BatchEvaluator:
    """A fixed loop list compiled against columnar market state.

    Parameters
    ----------
    loops:
        The loop sequence this evaluator answers for; ``indices``
        passed to :meth:`evaluate_many` are positions into it.
    arrays:
        Columnar reserves the compiled hop matrices address.  When
        omitted, arrays are built over exactly the pools the loops
        cross.  The caller owns keeping them fresh (see
        :meth:`pull`).
    min_batch:
        Smallest per-group slice worth a kernel pass.
    exact:
        Audit every float result in contract integer arithmetic: each
        returned result gains ``details["exact"]`` — the base-unit
        amounts the chain would actually pay and return for the
        float-optimal input, computed by the columnar integer kernel
        (:mod:`repro.market.integer_kernel`) for compiled loops and
        the sequential :class:`~repro.amm.integer.IntegerPool` path
        for fallbacks.  Exact mode also disables bound pruning — the
        bounds are float statements, so every row gets the ``+inf``
        vacuous bound and is always quoted in full.
    exact_scale:
        Base units per token in exact mode (default ``10**18``, wei).
    """

    def __init__(
        self,
        loops: Sequence[ArbitrageLoop],
        arrays: MarketArrays | None = None,
        min_batch: int = DEFAULT_MIN_BATCH,
        *,
        exact: bool = False,
        exact_scale: int = WAD,
    ):
        self.loops: tuple[ArbitrageLoop, ...] = tuple(loops)
        self._source_pools: list | None = None
        if arrays is None:
            pools: dict[str, object] = {}
            for loop in self.loops:
                for pool in loop.pools:
                    pools.setdefault(pool.pool_id, pool)
            arrays = MarketArrays(pools.values())
            # kept row-aligned with the arrays so `refresh` can re-read
            # the live pools without a registry
            self._source_pools = list(pools.values())
        self.arrays = arrays
        self.min_batch = min_batch
        self.exact = exact
        self.exact_scale = exact_scale
        self.stats = EvaluatorStats()
        self.groups, self.fallback_positions = compile_loops(
            self.loops, arrays
        )
        self._where: dict[int, tuple[int, int]] = {}
        for gi, group in enumerate(self.groups):
            for row, position in enumerate(group.positions):
                self._where[int(position)] = (gi, row)
        # self.loops holds strong references, so an id match below can
        # only ever mean "the same live object"
        self._position_by_id: dict[int, int] = {
            id(loop): position for position, loop in enumerate(self.loops)
        }

    def __repr__(self) -> str:
        compiled = sum(len(g) for g in self.groups)
        weighted = sum(len(g) for g in self.groups if g.weighted)
        return (
            f"BatchEvaluator({len(self.loops)} loops: {compiled} compiled "
            f"({weighted} weighted) in {len(self.groups)} group(s), "
            f"{len(self.fallback_positions)} scalar-only)"
        )

    @property
    def compiled_count(self) -> int:
        return sum(len(g) for g in self.groups)

    def pull(
        self, registry, pool_ids: Iterable[str] | None = None
    ) -> None:
        """Refresh the arrays from live pool objects (see
        :meth:`MarketArrays.pull`)."""
        self.arrays.pull(registry, pool_ids)

    def refresh(self) -> None:
        """Re-read every source pool's current reserves into the arrays.

        Only available when the evaluator built its own arrays (it then
        kept the live pool references row-aligned); the engine's
        evaluator memo calls this before every reuse, so reserve
        mutations between calls are always visible.  Callers that
        supplied their own arrays refresh via :meth:`pull` instead.
        """
        if self._source_pools is None:
            raise RuntimeError(
                "this evaluator's arrays are caller-owned; refresh them "
                "with pull(registry, dirty_pool_ids)"
            )
        reserve0, reserve1 = self.arrays.reserve0, self.arrays.reserve1
        for i, pool in enumerate(self._source_pools):
            reserve0[i] = pool.reserve_of(pool.token0)
            reserve1[i] = pool.reserve_of(pool.token1)

    def positions_for(self, loops: Sequence[ArbitrageLoop]) -> list[int] | None:
        """Positions of ``loops`` in this evaluator's loop list, or
        ``None`` unless *every* one is the same live object compiled
        here (the engine memo's subset test — a universe's filtered
        sub-lists hit, anything else rebuilds)."""
        by_id = self._position_by_id
        positions = []
        for loop in loops:
            position = by_id.get(id(loop))
            if position is None:
                return None
            positions.append(position)
        return positions

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def monetized_bounds(
        self,
        strategy: Strategy,
        prices: PriceMap,
        indices: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Sound upper bound on each loop's monetized profit under
        ``strategy`` (see :mod:`repro.market.bounds`): entry ``i``
        bounds ``indices[i]``.

        ``+inf`` — the vacuous bound — where no cheap sound bound
        exists: scalar-fallback loops and non-batchable strategies.
        NaN rows (degenerate reserves / missing prices) are likewise
        never prunable; callers must test ``bound < threshold`` (or
        :func:`~repro.market.bounds.below_threshold`) so both fall
        through to the exact path.
        """
        positions = (
            list(indices) if indices is not None else list(range(len(self.loops)))
        )
        out = np.full(len(positions), np.inf, dtype=np.float64)
        if self.exact:
            # the monotone bounds are float statements; integer rows
            # keep the +inf vacuous bound so pruning can never skip a
            # quote that exact mode must audit
            return out
        kind = batch_kind(strategy)
        if kind is None:
            return out
        by_group: dict[int, list[tuple[int, int]]] = {}
        for i, position in enumerate(positions):
            where = self._where.get(position)
            if where is not None:
                by_group.setdefault(where[0], []).append((i, where[1]))
        with trace.span(
            "kernel.bounds", loops=len(positions), groups=len(by_group)
        ):
            for gi, pairs in by_group.items():
                group = self.groups[gi]
                rows = [row for _, row in pairs]
                sub = (
                    group
                    if rows == list(range(len(group)))
                    else group.rows(rows)
                )
                self.stats.bound_passes += 1
                values = _group_monetized_bounds(
                    kind, strategy, self.arrays, sub, prices
                )
                for (i, _), value in zip(pairs, values):
                    out[i] = value
        return out

    def evaluate_many(
        self,
        strategy: Strategy,
        prices: PriceMap,
        indices: Sequence[int] | None = None,
        cache=None,
        *,
        threshold: float | None = None,
        stored: Sequence[float] | None = None,
    ) -> list[StrategyResult]:
        """Evaluate ``strategy`` on the loops at ``indices`` (all loops
        when ``None``); result ``i`` answers ``indices[i]``.

        Bit-identical to ``[strategy.evaluate_cached(loops[i], prices,
        cache) for i in indices]`` — the kernels handle eligible
        slices, everything else falls back to exactly that call.

        With ``threshold`` the evaluation is two-phase: a vectorized
        bound pass first proves which loops cannot reach ``threshold``
        (nor any positive profit), and only the surviving rows get an
        exact quote — pruned rows return ``None``.  ``stored``
        (aligned with ``indices``) additionally protects loops whose
        *last known* profit still matters: a loop is pruned only when
        its bound **and** its stored profit are both below (see
        :func:`~repro.market.bounds.below_threshold`), so a formerly
        profitable book entry is always re-quoted until its displaced
        value is actually republished.
        """
        positions = (
            list(indices) if indices is not None else list(range(len(self.loops)))
        )
        kind = batch_kind(strategy)
        pruned: set[int] = set()
        if threshold is not None and kind is not None and positions:
            bounds = self.monetized_bounds(strategy, prices, positions)
            prunable = below_threshold(bounds, threshold)
            if stored is not None:
                stored_arr = np.asarray(list(stored), dtype=np.float64)
                prunable &= below_threshold(stored_arr, threshold)
            pruned = {
                position
                for position, out in zip(positions, prunable)
                if out
            }
            self.stats.pruned_loops += len(pruned)
        results: dict[int, StrategyResult] = {}
        live = [p for p in positions if p not in pruned]
        if kind is not None and live:
            with trace.span("kernel.batch_quotes", loops=len(live)) as sp:
                by_group: dict[int, list[int]] = {}
                for position in live:
                    where = self._where.get(position)
                    if where is not None:
                        by_group.setdefault(where[0], []).append(where[1])
                for gi, rows in by_group.items():
                    if len(rows) < self.min_batch:
                        continue  # scalar fallback below
                    group = self.groups[gi]
                    sub = group if len(rows) == len(group) else group.rows(rows)
                    quote_fn = _quote_fn(group, strategy.method)
                    self.stats.kernel_passes += 1
                    for position, result in zip(
                        sub.positions,
                        _evaluate_group(
                            kind, strategy, self.arrays, sub, prices, quote_fn
                        ),
                    ):
                        results[int(position)] = result
                sp.set(kernel=len(results), passes=len(by_group))
        self.stats.kernel_loops += len(results)
        n_scalar = len(live) - len(results)
        self.stats.scalar_loops += n_scalar
        with trace.span("kernel.scalar_quotes", loops=n_scalar) if n_scalar else trace.NOOP:
            for position in live:
                if position not in results:
                    results[position] = strategy.evaluate_cached(
                        self.loops[position], prices, cache
                    )
        if self.exact:
            self._annotate_exact(results)
        return [results.get(position) for position in positions]

    def _annotate_exact(self, results: dict[int, StrategyResult]) -> None:
        """Attach ``details["exact"]`` to every fixed-start result.

        Compiled loops go through the columnar integer kernel in one
        pass per group (per-row rotation offsets recovered from each
        result's start token); fallback loops take the sequential
        :class:`IntegerPool` path.  Both read the same conversions
        (:func:`base_units`, ppm fee quantization), so the two routes
        are bit-identical — the integer parity suite pins that.
        Results without a fixed start (convex strategy) are left
        unannotated: there is no single rotation to audit.
        """
        scale = self.exact_scale
        by_group: dict[int, list[int]] = {}
        scalar_positions: list[int] = []
        for position, result in results.items():
            if result.amount_in is None or result.start_token is None:
                continue
            # families without an integer-arithmetic twin (G3M's
            # fractional pow, stableswap's float Newton solve) keep
            # the float quote with the oracle error bar
            if any(
                not family_descriptor(pool_family(pool)).integer_exact
                for pool in result.loop.pools
            ):
                continue
            where = self._where.get(position)
            if where is not None:
                by_group.setdefault(where[0], []).append(position)
            else:
                scalar_positions.append(position)
        for gi, group_positions in by_group.items():
            group = self.groups[gi]
            rows = [self._where[p][1] for p in group_positions]
            sub = (
                group
                if rows == list(range(len(group)))
                else group.rows(rows)
            )
            offsets = np.asarray(
                [
                    sub.token_offset[k][results[p].start_token]
                    for k, p in enumerate(group_positions)
                ],
                dtype=np.intp,
            )
            amounts_in = [
                base_units(results[p].amount_in, scale)
                for p in group_positions
            ]
            quotes = integer_batch_quotes(
                self.arrays, sub, offsets, amounts_in, scale=scale
            )
            for k, position in enumerate(group_positions):
                results[position].details["exact"] = quotes.detail(k)
        for position in scalar_positions:
            result = results[position]
            rotation = result.loop.rotation_from(result.start_token)
            result.details["exact"] = exact_loop_quote(
                rotation, result.amount_in, scale=scale
            )

    def evaluate_top_k(
        self,
        strategy: Strategy,
        prices: PriceMap,
        k: int,
        cache=None,
    ) -> tuple[list[tuple[float, int]], int]:
        """Exact top-K selection with bound-ordered lazy re-quoting.

        Quotes loops in descending bound order and stops as soon as
        every remaining bound is *strictly* below the K-th exact
        profit found so far (ties keep quoting: the book's loop-id
        tie-break could still reorder them).  Returns ``(scored,
        pruned)`` where ``scored`` lists ``(monetized_profit,
        position)`` for every loop that *was* exactly quoted — a
        superset of the true top-K whose best K entries are identical
        to an exhaustive pass — and ``pruned`` counts the loops whose
        bound proved they could not alter the top-K.
        """
        n = len(self.loops)
        if n == 0:
            return [], 0
        bounds = self.monetized_bounds(strategy, prices)
        # NaN is unprunable: surface those rows first so the exact
        # pass decides (and raises) exactly like an unpruned run
        keys = np.where(np.isnan(bounds), np.inf, bounds)
        order = np.argsort(-keys, kind="stable")
        chunk = max(k, self.min_batch, 64)
        scored: list[tuple[float, int]] = []
        top: list[float] = []  # min-heap of the best k exact profits
        i = 0
        while i < n:
            if len(top) >= k > 0:
                next_bound = keys[order[i]]
                # strict: a tie with the K-th exact profit could still
                # reorder by loop id, so only a strictly-lower bound
                # (or a provably-unprofitable tail under a positive
                # K-th) stops the scan
                if next_bound < top[0] or (next_bound <= 0.0 < top[0]):
                    break
            batch = [int(p) for p in order[i : i + chunk]]
            for position, result in zip(
                batch, self.evaluate_many(strategy, prices, batch, cache)
            ):
                profit = result.monetized_profit
                scored.append((profit, position))
                if k > 0:
                    if len(top) < k:
                        heapq.heappush(top, profit)
                    elif profit > top[0]:
                        heapq.heapreplace(top, profit)
            i += len(batch)
        self.stats.pruned_loops += n - len(scored)
        return scored, n - len(scored)


# ----------------------------------------------------------------------
# per-kind group evaluation
# ----------------------------------------------------------------------


def _assemble(
    group: CompiledLoopGroup,
    k: int,
    offset: int,
    quotes: BatchQuotes,
    monetized: float,
    strategy_name: str,
    method: str,
    extra_details: dict | None = None,
) -> StrategyResult:
    rotation = Rotation(group.loops[k], offset)
    quote = quotes.quote(k)
    return result_from_quote(
        rotation,
        quote,
        None,
        strategy_name,
        method,
        profit=quote_profit_vector(rotation, quote),
        monetized=monetized,
        extra_details=extra_details,
    )


def _raise_missing_price(group: CompiledLoopGroup, k: int, offset: int):
    token = group.loops[k].tokens[offset]
    raise MissingPriceError(f"no CEX price for token {token.symbol!r}")


def _check_monetized(
    monetized: np.ndarray, group: CompiledLoopGroup, offsets: np.ndarray
) -> None:
    """A NaN can only come from monetizing a profitable rotation whose
    start token has no CEX price — the case where the scalar path
    raises too."""
    bad = np.isnan(monetized)
    if bad.any():
        k = int(np.argmax(bad))
        _raise_missing_price(group, k, int(offsets[k]))


def pruned_zero_result(
    strategy: Strategy, loop: ArbitrageLoop, prices: PriceMap
) -> StrategyResult:
    """The result standing in for a loop the bound pass proved
    unprofitable (bound exactly 0.0, so the exact monetized profit is
    provably <= 0 and reports as 0).

    Mirrors what the exact pass returns for such a loop — zero input,
    zero profit, the same start rotation the strategy would pick —
    with ``details["pruned"] = True`` marking that no solver ran (so
    ``iterations`` is 0 whatever the method; report aggregates never
    read either field).
    """
    kind = batch_kind(strategy)
    if kind is None:
        raise ValueError(
            f"{strategy!r} has no batch kind, so nothing can have been "
            "pruned for it"
        )
    extra: dict | None = {"pruned": True}
    if kind == "traditional":
        start = (
            strategy.start_token
            if strategy.start_token is not None
            else loop.tokens[0]
        )
        if start not in loop.tokens:
            raise StrategyError(
                f"start token {start} is not in {loop!r}; the traditional "
                "strategy needs a loop through its numeraire"
            )
        rotation = loop.rotation_from(start)
    elif kind == "maxprice":
        rotation = loop.rotation_from(prices.max_price_token(loop.tokens))
    else:
        rotation = Rotation(loop, 0)  # the scalar all-zero tie-break
        extra = {
            "per_rotation": {t.symbol: 0.0 for t in loop.tokens},
            "pruned": True,
        }
    quote = RotationQuote(
        amount_in=0.0, hop_amounts=(), profit=0.0, iterations=0
    )
    return result_from_quote(
        rotation,
        quote,
        None,
        strategy.name,
        strategy.method,
        profit=quote_profit_vector(rotation, quote),
        monetized=0.0,
        extra_details=extra,
    )


def _evaluate_group(
    kind: str,
    strategy: Strategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    if kind == "traditional":
        return _traditional_group(strategy, arrays, group, prices, quote_fn)
    if kind == "maxprice":
        return _maxprice_group(strategy, arrays, group, prices, quote_fn)
    return _maxmax_group(strategy, arrays, group, prices, quote_fn)


def _traditional_group(
    strategy: TraditionalStrategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    count = len(group)
    start = strategy.start_token
    if start is None:
        offsets = np.zeros(count, dtype=np.intp)
    else:
        offset_list = []
        for loop, token_offset in zip(group.loops, group.token_offset):
            offset = token_offset.get(start)
            if offset is None:
                raise StrategyError(
                    f"start token {start} is not in {loop!r}; the traditional "
                    "strategy needs a loop through its numeraire"
                )
            offset_list.append(offset)
        offsets = np.asarray(offset_list, dtype=np.intp)
    quotes = quote_fn(arrays, group, offsets)
    price_vec = arrays.price_vector(prices)
    start_prices = price_vec[group.token_idx[np.arange(count), offsets]]
    monetized = monetize_quotes(quotes, start_prices)
    _check_monetized(monetized, group, offsets)
    return [
        _assemble(group, k, int(offsets[k]), quotes, float(monetized[k]),
                  strategy.name, strategy.method)
        for k in range(count)
    ]


def _maxprice_group(
    strategy: MaxPriceStrategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    count = len(group)
    price_vec = arrays.price_vector(prices)
    price_matrix = price_vec[group.token_idx]
    missing = np.isnan(price_matrix)
    if missing.any():
        k = int(np.argmax(missing.any(axis=1)))
        _raise_missing_price(group, k, int(np.argmax(missing[k])))
    # ``max_price_token``: highest price, ties to the smallest symbol.
    # Ranks are a per-row permutation, so masking non-maximal columns
    # to `length` and taking argmin reproduces the (-price, symbol)
    # sort exactly.
    row_max = price_matrix.max(axis=1)
    ranked = np.where(
        price_matrix == row_max[:, None], group.symbol_rank, group.length
    )
    offsets = np.argmin(ranked, axis=1)
    quotes = quote_fn(arrays, group, offsets)
    start_prices = price_matrix[np.arange(count), offsets]
    monetized = monetize_quotes(quotes, start_prices)
    return [
        _assemble(group, k, int(offsets[k]), quotes, float(monetized[k]),
                  strategy.name, strategy.method)
        for k in range(count)
    ]


def _maxmax_group(
    strategy: MaxMaxStrategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
    quote_fn: QuoteFn,
) -> list[StrategyResult]:
    count = len(group)
    n = group.length
    price_vec = arrays.price_vector(prices)
    quotes_by_offset: list[BatchQuotes] = []
    monetized = np.empty((n, count), dtype=np.float64)
    for offset in range(n):
        quotes = quote_fn(arrays, group, offset)
        quotes_by_offset.append(quotes)
        start_prices = price_vec[group.token_idx[:, offset]]
        monetized[offset] = monetize_quotes(quotes, start_prices)
    bad = np.isnan(monetized)
    if bad.any():
        k = int(np.argmax(bad.any(axis=0)))
        _raise_missing_price(group, k, int(np.argmax(bad[:, k])))
    # first maximal rotation wins, like the scalar strict-`>` scan
    best = np.argmax(monetized, axis=0)
    results = []
    for k in range(count):
        offset = int(best[k])
        loop = group.loops[k]
        per_rotation = {
            loop.tokens[j].symbol: float(monetized[j, k]) for j in range(n)
        }
        results.append(
            _assemble(
                group,
                k,
                offset,
                quotes_by_offset[offset],
                float(monetized[offset, k]),
                strategy.name,
                strategy.method,
                {"per_rotation": per_rotation},
            )
        )
    return results
