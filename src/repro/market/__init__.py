"""Columnar market state and the cross-loop batch quote kernels.

The :mod:`repro.market` layer sits between the object-level AMM model
(:mod:`repro.amm`) and the consumers that evaluate many loops per
step (:mod:`repro.engine`, :mod:`repro.replay`, :mod:`repro.service`):

* :class:`MarketArrays` — structure-of-arrays reserves/fees/weights
  with pool and token index maps, built from and round-trippable to a
  :class:`~repro.amm.registry.PoolRegistry`, with in-place (and, for
  distinct-pool batches, vectorized) event application for both pool
  families;
* :func:`compile_loops` / :class:`CompiledLoopGroup` — loops × hops
  pool-index and orientation matrices over a fixed arrays instance,
  grouped by (length, weighted);
* :func:`batch_quotes` — the closed-form kernel: optimal input, hop
  amounts, and single-token profit for one rotation of every compiled
  constant-product loop in a single vectorized pass, bit-identical to
  the scalar path;
* :func:`weighted_quotes` / the ``cp_*`` iterative kernels — the same
  contract for weighted-hop loops and the bisection/golden solver
  methods, built on the batched lockstep solvers of
  :mod:`repro.market.solvers` (weighted parity documented at
  :data:`WEIGHTED_PARITY_RTOL`);
* :class:`BatchEvaluator` — strategy dispatch (traditional / MaxPrice
  / MaxMax on any of the three solvers) with built-in scalar fallback
  only for non-batchable strategies, foreign pools, and tiny dirty
  sets.
"""

from .arrays import MarketArrays
from .batch import (
    BatchEvaluator,
    EvaluatorStats,
    batch_kind,
    pruned_zero_result,
)
from .bounds import (
    BOUND_RATE_MARGIN,
    below_threshold,
    monetized_bounds,
    rotation_profit_bounds,
)
from .compile import CompiledLoopGroup, compile_loops
from .kernel import BatchQuotes, batch_quotes, monetize_quotes, oriented_reserves
from .solvers import batched_golden_section, batched_maximize_by_derivative
from .weighted_kernel import (
    WEIGHTED_PARITY_RTOL,
    cp_bisection_quotes,
    cp_golden_quotes,
    weighted_quotes,
)

__all__ = [
    "BOUND_RATE_MARGIN",
    "BatchEvaluator",
    "BatchQuotes",
    "CompiledLoopGroup",
    "EvaluatorStats",
    "MarketArrays",
    "WEIGHTED_PARITY_RTOL",
    "batch_kind",
    "batch_quotes",
    "batched_golden_section",
    "batched_maximize_by_derivative",
    "below_threshold",
    "compile_loops",
    "cp_bisection_quotes",
    "cp_golden_quotes",
    "monetize_quotes",
    "monetized_bounds",
    "oriented_reserves",
    "pruned_zero_result",
    "rotation_profit_bounds",
    "weighted_quotes",
]
