"""Columnar market state and the cross-loop batch quote kernel.

The :mod:`repro.market` layer sits between the object-level AMM model
(:mod:`repro.amm`) and the consumers that evaluate many loops per
step (:mod:`repro.engine`, :mod:`repro.replay`, :mod:`repro.service`):

* :class:`MarketArrays` — structure-of-arrays reserves/fees with pool
  and token index maps, built from and round-trippable to a
  :class:`~repro.amm.registry.PoolRegistry`, with in-place (and, for
  distinct-pool batches, vectorized) event application;
* :func:`compile_loops` / :class:`CompiledLoopGroup` — loops × hops
  pool-index and orientation matrices over a fixed arrays instance;
* :func:`batch_quotes` — the kernel: optimal input, hop amounts, and
  single-token profit for one rotation of *every* compiled loop in a
  single vectorized pass, bit-identical to the scalar path;
* :class:`BatchEvaluator` — strategy dispatch (traditional / MaxPrice
  / MaxMax on the closed-form solver) with built-in scalar fallback
  for weighted hops, non-batchable strategies, and tiny dirty sets.
"""

from .arrays import MarketArrays
from .batch import BatchEvaluator, batch_kind
from .compile import CompiledLoopGroup, compile_loops
from .kernel import BatchQuotes, batch_quotes, monetize_quotes

__all__ = [
    "BatchEvaluator",
    "BatchQuotes",
    "CompiledLoopGroup",
    "MarketArrays",
    "batch_kind",
    "batch_quotes",
    "compile_loops",
    "monetize_quotes",
]
