"""Columnar market state and the cross-loop batch quote kernels.

The :mod:`repro.market` layer sits between the object-level AMM model
(:mod:`repro.amm`) and the consumers that evaluate many loops per
step (:mod:`repro.engine`, :mod:`repro.replay`, :mod:`repro.service`):

* :class:`MarketArrays` — structure-of-arrays reserves/fees/weights
  with pool and token index maps, built from and round-trippable to a
  :class:`~repro.amm.registry.PoolRegistry`, with in-place (and, for
  distinct-pool batches, vectorized) event application for both pool
  families;
* :func:`compile_loops` / :class:`CompiledLoopGroup` — loops × hops
  pool-index and orientation matrices over a fixed arrays instance,
  grouped by (length, weighted);
* :func:`batch_quotes` — the closed-form kernel: optimal input, hop
  amounts, and single-token profit for one rotation of every compiled
  constant-product loop in a single vectorized pass, bit-identical to
  the scalar path;
* :func:`weighted_quotes` / the ``cp_*`` iterative kernels — the same
  contract for weighted-hop loops and the bisection/golden solver
  methods, built on the batched lockstep solvers of
  :mod:`repro.market.solvers` (weighted parity documented at
  :data:`WEIGHTED_PARITY_RTOL`);
* :class:`BatchEvaluator` — strategy dispatch (traditional / MaxPrice
  / MaxMax on any of the three solvers) with built-in scalar fallback
  only for non-batchable strategies, foreign pools, and tiny dirty
  sets;
* :class:`SharedMarketArrays` / :class:`SharedMarketView` — the same
  columns backed by a named ``multiprocessing.shared_memory`` segment
  under a single-writer seqlock, so N process shards map one market
  instead of copying it N times (see :mod:`repro.market.shm`).
"""

from .arrays import FEE_PPM_DENOMINATOR, MarketArrays, quantize_fee
from .batch import (
    BatchEvaluator,
    EvaluatorStats,
    batch_kind,
    pruned_zero_result,
)
from .bounds import (
    BOUND_RATE_MARGIN,
    below_threshold,
    monetized_bounds,
    rotation_profit_bounds,
)
from .compile import CompiledLoopGroup, compile_loops
from .integer_kernel import (
    WAD,
    IntegerBatchQuotes,
    base_units,
    exact_loop_quote,
    integer_batch_quotes,
    integer_hops,
)
from .kernel import BatchQuotes, batch_quotes, monetize_quotes, oriented_reserves
from .oracle import (
    ORACLE_DPS,
    OracleQuote,
    have_mpmath,
    oracle_monetized,
    oracle_quote,
    rel_error,
)
from .shm import (
    PoolHandle,
    SharedMarketArrays,
    SharedMarketView,
    pool_handles,
)
from .solvers import batched_golden_section, batched_maximize_by_derivative
from .weighted_kernel import (
    WEIGHTED_PARITY_RTOL,
    cp_bisection_quotes,
    cp_golden_quotes,
    weighted_quotes,
)

__all__ = [
    "BOUND_RATE_MARGIN",
    "BatchEvaluator",
    "BatchQuotes",
    "CompiledLoopGroup",
    "EvaluatorStats",
    "FEE_PPM_DENOMINATOR",
    "IntegerBatchQuotes",
    "MarketArrays",
    "ORACLE_DPS",
    "OracleQuote",
    "PoolHandle",
    "SharedMarketArrays",
    "SharedMarketView",
    "WAD",
    "WEIGHTED_PARITY_RTOL",
    "base_units",
    "batch_kind",
    "batch_quotes",
    "batched_golden_section",
    "batched_maximize_by_derivative",
    "below_threshold",
    "compile_loops",
    "cp_bisection_quotes",
    "cp_golden_quotes",
    "exact_loop_quote",
    "have_mpmath",
    "integer_batch_quotes",
    "integer_hops",
    "monetize_quotes",
    "monetized_bounds",
    "oracle_monetized",
    "oracle_quote",
    "oriented_reserves",
    "pool_handles",
    "pruned_zero_result",
    "quantize_fee",
    "rel_error",
    "rotation_profit_bounds",
    "weighted_quotes",
]
