"""Columnar market state and the cross-loop batch quote kernels.

The :mod:`repro.market` layer sits between the object-level AMM model
(:mod:`repro.amm`) and the consumers that evaluate many loops per
step (:mod:`repro.engine`, :mod:`repro.replay`, :mod:`repro.service`):

* :class:`MarketArrays` — structure-of-arrays reserves/fees/weights/
  amplifications with pool and token index maps and a per-row family
  code, built from and round-trippable to a
  :class:`~repro.amm.registry.PoolRegistry`, with in-place (and, for
  distinct-pool batches, vectorized) event application for every pool
  family;
* :func:`family_descriptor` / :class:`FamilyDescriptor`
  (:mod:`repro.market.families`) — the per-family dispatch registry
  (scalar swap mirror, chain-kernel lanes, bound rule, object
  factory) every market-layer consumer routes through;
* :func:`compile_loops` / :class:`CompiledLoopGroup` — loops × hops
  pool-index and orientation matrices over a fixed arrays instance,
  grouped by (length, mixed);
* :func:`batch_quotes` — the closed-form kernel: optimal input, hop
  amounts, and single-token profit for one rotation of every compiled
  constant-product loop in a single vectorized pass, bit-identical to
  the scalar path;
* :func:`chain_quotes` / the ``cp_*`` iterative kernels — the same
  contract for loops crossing non-closed-form hops (G3M, stableswap,
  any mix) and the bisection/golden solver methods, built on the
  batched lockstep solvers of :mod:`repro.market.solvers` (parity
  documented at :data:`WEIGHTED_PARITY_RTOL` /
  :data:`STABLESWAP_PARITY_RTOL`);
* :class:`BatchEvaluator` — strategy dispatch (traditional / MaxPrice
  / MaxMax on any of the three solvers) with built-in scalar fallback
  only for non-batchable strategies, foreign pools, and tiny dirty
  sets;
* :class:`SharedMarketArrays` / :class:`SharedMarketView` — the same
  columns backed by a named ``multiprocessing.shared_memory`` segment
  under a single-writer seqlock, so N process shards map one market
  instead of copying it N times (see :mod:`repro.market.shm`).
"""

from .arrays import FEE_PPM_DENOMINATOR, MarketArrays, quantize_fee
from .batch import (
    BatchEvaluator,
    EvaluatorStats,
    batch_kind,
    pruned_zero_result,
)
from .bounds import (
    BOUND_RATE_MARGIN,
    below_threshold,
    monetized_bounds,
    rotation_profit_bounds,
)
from .compile import CompiledLoopGroup, compile_loops
from .families import (
    FAMILY_DESCRIPTORS,
    FamilyDescriptor,
    family_descriptor,
    needs_chain_kernel,
)
from .integer_kernel import (
    WAD,
    IntegerBatchQuotes,
    base_units,
    exact_loop_quote,
    integer_batch_quotes,
    integer_hops,
)
from .kernel import BatchQuotes, batch_quotes, monetize_quotes, oriented_reserves
from .oracle import (
    ORACLE_DPS,
    OracleQuote,
    have_mpmath,
    oracle_monetized,
    oracle_quote,
    rel_error,
)
from .shm import (
    PoolHandle,
    SegmentLayoutError,
    SharedMarketArrays,
    SharedMarketView,
    pool_handles,
)
from .solvers import (
    batched_golden_section,
    batched_maximize_by_derivative,
    batched_stableswap_d,
    batched_stableswap_y,
)
from .weighted_kernel import (
    STABLESWAP_PARITY_RTOL,
    WEIGHTED_PARITY_RTOL,
    chain_quotes,
    cp_bisection_quotes,
    cp_golden_quotes,
    stableswap_quotes,
    weighted_quotes,
)

__all__ = [
    "BOUND_RATE_MARGIN",
    "BatchEvaluator",
    "BatchQuotes",
    "CompiledLoopGroup",
    "EvaluatorStats",
    "FAMILY_DESCRIPTORS",
    "FEE_PPM_DENOMINATOR",
    "FamilyDescriptor",
    "IntegerBatchQuotes",
    "MarketArrays",
    "ORACLE_DPS",
    "OracleQuote",
    "PoolHandle",
    "SharedMarketArrays",
    "SharedMarketView",
    "STABLESWAP_PARITY_RTOL",
    "SegmentLayoutError",
    "WAD",
    "WEIGHTED_PARITY_RTOL",
    "base_units",
    "batch_kind",
    "batch_quotes",
    "batched_golden_section",
    "batched_maximize_by_derivative",
    "batched_stableswap_d",
    "batched_stableswap_y",
    "below_threshold",
    "chain_quotes",
    "compile_loops",
    "cp_bisection_quotes",
    "cp_golden_quotes",
    "exact_loop_quote",
    "family_descriptor",
    "have_mpmath",
    "integer_batch_quotes",
    "integer_hops",
    "monetize_quotes",
    "monetized_bounds",
    "needs_chain_kernel",
    "oracle_monetized",
    "oracle_quote",
    "oriented_reserves",
    "pool_handles",
    "pruned_zero_result",
    "quantize_fee",
    "rel_error",
    "rotation_profit_bounds",
    "stableswap_quotes",
    "weighted_quotes",
]
