"""Batched 1-D optimizers: array-wide twins of the scalar solvers.

The hop map of a weighted (G3M) pool,
``out = y * (1 - (x / (x + γ·t))^(w_in/w_out))``, is *not*
linear-fractional, so loops containing weighted hops have no
closed-form optimum — and the iterative strategy methods
(``bisection`` / ``golden``) are iterative by definition.  Covering
both on the columnar path needs solvers that iterate on the whole loop
array at once.

Each function here replicates its scalar counterpart
(:func:`repro.optimize.bisection.maximize_by_derivative`,
:func:`repro.optimize.golden.golden_section_maximize`) *in lockstep
per row*: every row performs exactly the scalar algorithm's sequence
of IEEE-754 operations — same bracket hint, same geometric expansion,
same midpoints, same convergence test — with a converged mask freezing
finished rows while the rest keep iterating.  Rows therefore converge
after exactly as many iterations as the scalar call would report, to
exactly the value the scalar call would return, whenever the
elementwise arithmetic matches — which it does bit-for-bit for the
``+ - * / sqrt`` family, and per-platform for ``pow`` (see
:func:`repro.amm.weighted.pinned_pow`).  The per-row iteration counts
are returned so callers can reproduce the scalar result objects
exactly.

Convergence criterion (shared with the scalar solvers): the bracket
``[lo, hi]`` has collapsed when ``hi - lo <= tol * max(1, |mid|)``
with ``tol = 1e-12`` — relative to the midpoint's magnitude above 1,
absolute below it, so tiny and huge reserve scales behave alike.
"""

from __future__ import annotations

import logging
from typing import Callable

import numpy as np

from ..amm.stableswap import STABLESWAP_MAX_ITER, STABLESWAP_TOL
from ..core.errors import SolverConvergenceError
from ..optimize.bisection import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..telemetry import trace

__all__ = [
    "batched_golden_section",
    "batched_maximize_by_derivative",
    "batched_stableswap_d",
    "batched_stableswap_y",
]

logger = logging.getLogger("repro.market.solvers")

_INV_PHI = (np.sqrt(5.0) - 1.0) / 2.0  # 1/phi ~ 0.618
_INV_PHI_SQ = (3.0 - np.sqrt(5.0)) / 2.0  # 1/phi^2 ~ 0.382

_MAX_EXPANSIONS = 200  # matches maximize_by_derivative's bracket guard


def batched_maximize_by_derivative(
    rate: Callable[[np.ndarray], np.ndarray],
    initial_hi: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise ``argmax profit`` over ``t >= 0`` given the output rate.

    ``rate`` maps a full-width input array to the composed marginal
    rate per row (monotone decreasing in ``t``); ``initial_hi`` seeds
    the per-row bracket expansion.  Returns ``(x, iterations)`` where
    ``x[k]`` is row ``k``'s optimal input (0.0 where ``rate(0) <= 1``,
    the no-arbitrage boundary) and ``iterations[k]`` the scalar
    solver's iteration count (bisection steps + bracket expansions).
    """
    hi = np.array(initial_hi, dtype=np.float64, copy=True)
    count = hi.shape[0]
    x = np.zeros(count, dtype=np.float64)
    iterations = np.zeros(count, dtype=np.intp)
    # `not (rate <= 1)`, NOT `rate > 1`: the scalar guard is `if
    # rate(0.0) <= 1.0: return 0`, so a NaN rate (degenerate-magnitude
    # reserves) falls *through* to the search there — lockstep means
    # falling through here too (the garbage then converges or raises
    # identically on both paths).
    active = ~(rate(np.zeros(count, dtype=np.float64)) <= 1.0)
    if not active.any():
        return x, iterations
    with trace.span("solver.bisection", rows=count) as sp:
        x, iterations = _bisection_solve(
            rate, hi, x, iterations, active, count, tol, max_iter
        )
        sp.set(iterations=int(iterations.max()))
    return x, iterations


def _bisection_solve(
    rate, hi, x, iterations, active, count, tol, max_iter
) -> tuple[np.ndarray, np.ndarray]:
    """The bracket + bisect body of :func:`batched_maximize_by_derivative`."""
    # -- bracket: double hi until rate(hi) < 1, per row ----------------
    expansions = np.zeros(count, dtype=np.intp)
    expanding = active.copy()
    while True:
        expanding &= rate(hi) >= 1.0
        if not expanding.any():
            break
        hi = np.where(expanding, hi * 2.0, hi)
        expansions += expanding
        if (expansions > _MAX_EXPANSIONS).any():
            worst = float(hi[expansions.argmax()])
            logger.warning(
                "batched bisection failed to bracket: rate stays >= 1 "
                "at input %s after %d doublings (%d of %d rows active)",
                worst,
                _MAX_EXPANSIONS,
                int(expanding.sum()),
                count,
            )
            raise SolverConvergenceError(
                "could not bracket the optimum: rate stays >= 1 "
                f"even at input {worst}"
            )

    # -- bisect rate(t) - 1 on [0, hi], per row ------------------------
    lo = np.zeros(count, dtype=np.float64)
    steps = np.zeros(count, dtype=np.intp)
    solving = active.copy()
    while True:
        # the while-guard comes first, like the scalar `while
        # iterations < max_iter`: a row that has spent its budget
        # raises without being granted one more convergence check
        if (steps[solving] >= max_iter).any():
            logger.warning(
                "batched bisection hit the %d-iteration budget with %d "
                "of %d rows unconverged",
                max_iter,
                int(solving.sum()),
                count,
            )
            raise SolverConvergenceError(
                f"bisection did not converge in {max_iter} iterations"
            )
        mid = 0.5 * (lo + hi)
        width = hi - lo
        scale = np.maximum(1.0, np.abs(mid))
        done = solving & (width <= tol * scale)
        x = np.where(done, mid, x)
        solving &= ~done
        if not solving.any():
            break
        take_lo = solving & (rate(mid) - 1.0 >= 0.0)
        lo = np.where(take_lo, mid, lo)
        hi = np.where(solving & ~take_lo, mid, hi)
        steps += solving
    iterations = np.where(active, steps + expansions, iterations)
    return x, iterations


def batched_golden_section(
    fn: Callable[[np.ndarray], np.ndarray],
    hi: np.ndarray,
    active: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 400,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise golden-section maximization of unimodal ``fn`` on
    ``[0, hi]``.

    Only rows flagged ``active`` are solved (the caller has already
    resolved the rest to the boundary 0.0, like the scalar path's
    ``is_profitable`` pre-check); inactive rows return ``x = 0`` with
    zero iterations.  Returns ``(x, iterations)``.
    """
    count = hi.shape[0]
    x = np.zeros(count, dtype=np.float64)
    iterations = np.zeros(count, dtype=np.intp)
    if not active.any():
        return x, iterations
    with trace.span("solver.golden", rows=count) as sp:
        x, iterations = _golden_solve(
            fn, hi, x, iterations, active, count, tol, max_iter
        )
        sp.set(iterations=int(iterations.max()))
    return x, iterations


def _golden_solve(
    fn, hi, x, iterations, active, count, tol, max_iter
) -> tuple[np.ndarray, np.ndarray]:
    """The probe-shrink body of :func:`batched_golden_section`."""
    a = np.zeros(count, dtype=np.float64)
    b = np.array(hi, dtype=np.float64, copy=True)
    h = b - a
    c = a + _INV_PHI_SQ * h
    d = a + _INV_PHI * h
    fc = fn(c)
    fd = fn(d)
    solving = active.copy()
    for iteration in range(1, max_iter + 1):
        scale = np.maximum(1.0, np.maximum(np.abs(a), np.abs(b)))
        done = solving & (h <= tol * scale)
        if done.any():
            x = np.where(done, 0.5 * (a + b), x)
            iterations = np.where(done, iteration, iterations)
            solving &= ~done
        if not solving.any():
            break
        # shrink toward the better probe: rows with fc > fd keep the
        # left interval [a, d], the rest keep the right one [c, b] —
        # recomputing exactly the one probe the scalar loop recomputes
        take_left = fc > fd
        new_b = np.where(take_left, d, b)
        new_a = np.where(take_left, a, c)
        new_h = new_b - new_a
        cand_c = new_a + _INV_PHI_SQ * new_h
        cand_d = new_a + _INV_PHI * new_h
        f_new = fn(np.where(take_left, cand_c, cand_d))
        a = np.where(solving, new_a, a)
        b = np.where(solving, new_b, b)
        h = np.where(solving, new_h, h)
        new_c = np.where(take_left, cand_c, d)
        new_d = np.where(take_left, c, cand_d)
        new_fc = np.where(take_left, f_new, fd)
        new_fd = np.where(take_left, fc, f_new)
        c = np.where(solving, new_c, c)
        d = np.where(solving, new_d, d)
        fc = np.where(solving, new_fc, fc)
        fd = np.where(solving, new_fd, fd)
    if solving.any():
        logger.warning(
            "batched golden-section hit the %d-iteration budget with %d "
            "of %d rows unconverged",
            max_iter,
            int(solving.sum()),
            count,
        )
        raise SolverConvergenceError(
            f"golden-section search did not converge in {max_iter} iterations"
        )
    return x, iterations


# ----------------------------------------------------------------------
# stableswap invariant solvers — lockstep twins of the scalar Newton
# iterations in repro.amm.stableswap
# ----------------------------------------------------------------------

# numpy would *warn* on the inf/NaN intermediates degenerate-magnitude
# reserves produce (and the test suite escalates RuntimeWarnings);
# python-float scalar iteration is silent on the same inputs, so the
# batched twins silence elementwise noise and report non-convergence
# through the same SolverConvergenceError the scalar functions raise.
_STABLE_SILENCE = {"over": "ignore", "invalid": "ignore", "divide": "ignore"}


def _stableswap_finish(values, active, what, raise_on_fail):
    """Shared non-convergence handling for the stableswap iterations."""
    if not active.any():
        return values
    logger.warning(
        "batched stableswap %s iteration hit the %d-iteration budget "
        "with %d rows unconverged",
        what,
        STABLESWAP_MAX_ITER,
        int(active.sum()),
    )
    if raise_on_fail:
        raise SolverConvergenceError(
            f"stableswap {what} iteration did not converge in "
            f"{STABLESWAP_MAX_ITER} iterations"
        )
    return np.where(active, np.nan, values)


def batched_stableswap_d(
    x: np.ndarray,
    y: np.ndarray,
    amp: np.ndarray,
    *,
    raise_on_fail: bool = True,
) -> np.ndarray:
    """Row-wise stableswap invariant ``D`` — lockstep twin of
    :func:`repro.amm.stableswap.calculate_d`.

    Every row replays the scalar fixed-point iteration's exact
    operation sequence (``+ - * /`` only, so the agreement is
    bit-for-bit, not merely close), with the converged mask freezing
    finished rows.  ``raise_on_fail=False`` returns NaN for rows that
    fail to converge (degenerate-magnitude reserves) instead of
    raising — the bound pass uses it, where NaN already means
    "unprunable", while the kernel path keeps the scalar contract of
    failing loudly.
    """
    s = x + y
    ann = 4.0 * amp
    d = np.array(s, dtype=np.float64, copy=True)
    active = s != 0.0  # the scalar guard: D(0, 0) = 0 without iterating
    with np.errstate(**_STABLE_SILENCE):
        for _ in range(STABLESWAP_MAX_ITER):
            if not active.any():
                return d
            d_new = d * d / (2.0 * x) * d / (2.0 * y)  # D_P
            d_new = (ann * s + 2.0 * d_new) * d / ((ann - 1.0) * d + 3.0 * d_new)
            done = np.abs(d_new - d) <= STABLESWAP_TOL * np.maximum(1.0, d_new)
            d = np.where(active, d_new, d)
            active &= ~done
    return _stableswap_finish(d, active, "D", raise_on_fail)


def batched_stableswap_y(
    x: np.ndarray,
    d: np.ndarray,
    amp: np.ndarray,
    *,
    raise_on_fail: bool = True,
) -> np.ndarray:
    """Row-wise out-side reserve on the invariant — lockstep twin of
    :func:`repro.amm.stableswap.calculate_y`.

    Same per-row bit-parity and failure contract as
    :func:`batched_stableswap_d`.
    """
    ann = 4.0 * amp
    c = d * d / (2.0 * x) * d / (2.0 * ann)
    b = x + d / ann
    y = np.array(d, dtype=np.float64, copy=True)
    active = np.ones(y.shape, dtype=bool)
    with np.errstate(**_STABLE_SILENCE):
        for _ in range(STABLESWAP_MAX_ITER):
            y_new = (y * y + c) / (2.0 * y + b - d)
            done = np.abs(y_new - y) <= STABLESWAP_TOL * np.maximum(1.0, y_new)
            y = np.where(active, y_new, y)
            active &= ~done
            if not active.any():
                return y
    return _stableswap_finish(y, active, "Y", raise_on_fail)
