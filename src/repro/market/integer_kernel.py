"""Columnar integer (contract-arithmetic) quote kernel.

:mod:`repro.amm.integer` reproduces the UniswapV2Library's
floor-division swap math one pool at a time.  This module lifts it
into the batched market layer: object-dtype numpy arrays hold
arbitrary-precision Python ints (reserves in base units, ppm fee
numerators from :attr:`MarketArrays.fee_num`), and one pass over the
hop axis floor-divides every compiled loop's rotation at once —
the integer twin of :func:`repro.market.kernel.simulate_hops`.

Bit-identity with the sequential path is by construction: per element
the kernel evaluates

    eff = t * fee_num
    out = (eff * y) // (x * FEE_PPM_DENOMINATOR + eff)

which is the exact expression :func:`repro.amm.integer.get_amount_out`
computes (numerator and denominator orderings included), on the same
Python ints.  Integer arithmetic is associative and exact, so unlike
the float kernels there is no IEEE-754 op-ordering to pin — the
parity suite asserts ``==`` against :func:`repro.amm.integer
.execute_loop` on fresh pools and it can never be a tolerance.

There is no closed-form *optimum* in integer arithmetic (the real
optimum is irrational); the kernel quotes the float-optimal input,
converted to base units by :func:`base_units`, and reports what the
chain would actually pay and return for it.  That is the ``--exact``
contract: float finds the candidate, integers audit it.

Integer rows are never pruned: the bound layer's monotone profit
bounds are float statements, so in exact mode every loop gets the
``+inf`` vacuous bound and flows through to a full quote (see
:meth:`repro.market.batch.BatchEvaluator.monetized_bounds`).

Weighted (G3M) hops have no on-chain integer twin here — fractional
``pow`` is not floor arithmetic — so exact annotations cover
constant-product hops only; weighted loops keep the float quote with
the oracle-measured error bar (:mod:`repro.market.oracle`).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..amm.integer import IntegerPool
from ..core.loop import Rotation
from .arrays import FEE_PPM_DENOMINATOR, MarketArrays, quantize_fee
from .compile import CompiledLoopGroup
from .kernel import gather_hops

__all__ = [
    "WAD",
    "IntegerBatchQuotes",
    "base_units",
    "integer_batch_quotes",
    "integer_hops",
    "exact_loop_quote",
]

logger = logging.getLogger("repro.market.integer_kernel")

#: Default base-unit scale: 18 decimals, like ETH/wei and most ERC-20s.
WAD = 10**18


def base_units(value: float, scale: int = WAD) -> int:
    """Convert a float token amount to integer base units (truncating).

    Truncation (not rounding) keeps the conversion conservative for
    input amounts — you can never be quoted for more than you hold —
    and both the batched kernel and the sequential reference use this
    exact conversion, so they always agree on the integers they start
    from.  Raises :class:`OverflowError` when ``value * scale`` leaves
    the float range (the same degenerate-magnitude seam as
    :func:`repro.amm.weighted.pinned_pow`).
    """
    if value < 0:
        raise ValueError(f"amount must be >= 0, got {value}")
    units = value * float(scale)
    if not math.isfinite(units):
        logger.warning(
            "base-unit conversion overflowed: %r at scale %d leaves the "
            "float range; the exact audit for this quote cannot run",
            value,
            scale,
        )
        raise OverflowError(
            f"{value!r} at scale {scale} exceeds the float range"
        )
    return int(units)


@dataclass(frozen=True)
class IntegerBatchQuotes:
    """Chain-exact amounts for one rotation of each compiled loop.

    The integer sibling of :class:`repro.market.kernel.BatchQuotes`:
    row ``k`` holds the base-unit amounts vector ``[in, after hop 1,
    ..., out]`` of the ``k``-th loop's requested rotation at the
    requested input, all Python ints in object-dtype arrays.
    ``profit`` is ``out - in`` and may be negative — floor rounding
    can erase a float-marginal profit, which is exactly what the
    exact backend exists to reveal.
    """

    length: int
    scale: int
    amount_in: np.ndarray
    amounts: np.ndarray
    profit: np.ndarray

    def __len__(self) -> int:
        return len(self.amount_in)

    def row(self, k: int) -> list[int]:
        """Row ``k``'s amounts vector as plain ints."""
        return [int(v) for v in self.amounts[k]]

    def detail(self, k: int) -> dict:
        """Row ``k`` as the ``details["exact"]`` annotation dict."""
        amount_in = int(self.amount_in[k])
        amount_out = int(self.amounts[k, self.length])
        return {
            "scale": self.scale,
            "amount_in": amount_in,
            "amount_out": amount_out,
            "profit": amount_out - amount_in,
        }


def _object_column(values) -> np.ndarray:
    """1-D object array of Python ints (``tolist`` launders np.int64 —
    object-array arithmetic must never wrap at 64 bits)."""
    out = np.empty(len(values), dtype=object)
    out[:] = values
    return out


def integer_reserve_columns(
    arrays: MarketArrays, scale: int = WAD
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pool ``(reserve0, reserve1, fee_num)`` as object int columns.

    Reserves convert through :func:`base_units`; the fee numerators
    come straight from the arrays' int64 column (as Python ints).
    """
    res0 = _object_column([base_units(v, scale) for v in arrays.reserve0.tolist()])
    res1 = _object_column([base_units(v, scale) for v in arrays.reserve1.tolist()])
    fee_num = _object_column(arrays.fee_num.tolist())
    return res0, res1, fee_num


def integer_batch_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: "int | np.ndarray",
    amounts_in: Sequence[int],
    scale: int = WAD,
) -> IntegerBatchQuotes:
    """Quote one rotation of every loop in ``group`` in contract ints.

    ``offsets`` selects the rotation per loop exactly like the float
    kernels; ``amounts_in`` gives each row's input in base units
    (typically ``base_units`` of the float-optimal input).  A zero
    input — or a hop flooring to zero — zeroes the rest of the row,
    matching :func:`repro.amm.integer.loop_quote_out`.
    """
    n = group.length
    count = len(group)
    if len(amounts_in) != count:
        raise ValueError(
            f"need one input per loop: {len(amounts_in)} != {count}"
        )
    pool_g, orient_g = gather_hops(group, offsets)
    res0, res1, fee_num = integer_reserve_columns(arrays, scale)

    amounts = np.empty((count, n + 1), dtype=object)
    current = _object_column([int(a) for a in amounts_in])
    if (current < 0).any():
        raise ValueError("input amounts must be >= 0")
    amounts[:, 0] = current
    den = FEE_PPM_DENOMINATOR
    for j in range(n):
        pool_col = pool_g[:, j]
        x = np.where(orient_g[:, j], res0[pool_col], res1[pool_col])
        y = np.where(orient_g[:, j], res1[pool_col], res0[pool_col])
        eff = current * fee_num[pool_col]
        # rows with nothing left to swap (or a reserve that floors to
        # zero base units) stay 0 without dividing — `0 // 0` raises
        live = (eff > 0) & (x > 0)
        out = np.zeros(count, dtype=object)
        if live.any():
            eff_l = eff[live]
            out[live] = (eff_l * y[live]) // (x[live] * den + eff_l)
        current = out
        amounts[:, j + 1] = current
    profit = amounts[:, n] - amounts[:, 0]
    return IntegerBatchQuotes(
        length=n,
        scale=scale,
        amount_in=amounts[:, 0],
        amounts=amounts,
        profit=profit,
    )


def integer_hops(
    rotation: Rotation, scale: int = WAD
) -> list[tuple[IntegerPool, bool]]:
    """Fresh :class:`IntegerPool` hops snapshotting a rotation's pools.

    Reserves convert through :func:`base_units` and fees through
    :func:`~repro.market.arrays.quantize_fee` — the same conversions
    the batched kernel applies to :class:`MarketArrays` columns, so
    quoting these hops with :func:`~repro.amm.integer.loop_quote_out`
    (or executing them with :func:`~repro.amm.integer.execute_loop`)
    is the sequential reference for the kernel's rows.
    """
    hops: list[tuple[IntegerPool, bool]] = []
    for token_in, _token_out, pool in rotation.hops():
        pool_int = IntegerPool(
            base_units(pool.reserve_of(pool.token0), scale),
            base_units(pool.reserve_of(pool.token1), scale),
            quantize_fee(pool.fee),
            FEE_PPM_DENOMINATOR,
        )
        hops.append((pool_int, token_in == pool.token0))
    return hops


def exact_loop_quote(
    rotation: Rotation, amount_in: float, scale: int = WAD
) -> dict:
    """Sequentially quote a rotation in contract ints; returns the
    ``details["exact"]`` annotation dict (scale, base-unit input and
    output, signed integer profit)."""
    from ..amm.integer import loop_quote_out

    units = base_units(amount_in, scale)
    if units <= 0:
        return {"scale": scale, "amount_in": units, "amount_out": 0,
                "profit": -units}
    amounts = loop_quote_out(integer_hops(rotation, scale), units)
    return {
        "scale": scale,
        "amount_in": amounts[0],
        "amount_out": amounts[-1],
        "profit": amounts[-1] - amounts[0],
    }
