"""Cheap, sound upper bounds on per-loop monetized profit.

The pruning layer's contract is a one-sided inequality: for every
compiled loop and every fixed-start strategy,

    ``monetized_bounds(...)[k]  >=  exact monetized profit of loop k``

whatever solver method produces the exact number.  The bound must be
*sound* (never below the exact value, so pruning can never hide a
book entry) but is free to be loose — it exists so the evaluator can
skip the expensive kernel/solver pass for loops that provably cannot
beat a threshold.

Derivation.  Every hop map ``f_j`` (CPMM, G3M, or stableswap) is
increasing, concave on ``[0, inf)``, and ``f_j(0) = 0``, so the
composed round-trip output satisfies two global inequalities:

* ``out(t) <= R * t`` where ``R = prod_j f_j'(0)`` — concavity puts
  every chord under the tangent at 0, and the slope at 0 composes
  multiplicatively.  The slope at 0 is per-family
  (``gamma * y/x`` for CPMM, scaled by ``w_in/w_out`` for G3M,
  ``gamma`` times the invariant-curve slope for stableswap); each
  family's rule is its descriptor's ``bound_factor`` hook in
  :mod:`repro.market.families`;
* ``out(t) < y_last`` — no hop can emit more than its out-side
  reserve.

Hence ``profit(t) = out(t) - t <= y_last * (R - 1) / R`` for every
``t`` (the two lines cross at ``t = y_last / R``), and ``R <= 1``
means no rotation of the loop is profitable at all.  ``R`` is a
*rotation invariant*: every rotation crosses the same hops in the
same orientation, so one product serves all rotations, and only the
out-side reserve feeding the start token (``y`` of the hop *before*
the start) varies per rotation.

For purely constant-product loops the composed map is exactly
``t -> a*t/(b + c*t)`` with ``R = a/b`` and ``c >= a / y_last``
(``c`` is a sum of positive terms of which ``gamma_1..gamma_n *
y_1..y_{n-1} = a / y_last`` is one), so the closed-form optimum
``(sqrt(a) - sqrt(b))^2 / c`` is itself bounded by

    ``profit* <= y_last * (1 - 1/sqrt(R))^2``

— quadratic in ``sqrt(R) - 1`` near the break-even point, far
tighter than the generic chord bound where it matters most (the sea
of barely-unprofitable loops).

Float soundness.  The inequalities above hold in real arithmetic;
two guards make them hold for the float64 numbers the kernels
actually produce.  ``R`` is first inflated by ``BOUND_RATE_MARGIN``
(the bound-side product and the kernel-side composed coefficients
round differently; their relative divergence is orders of magnitude
below the margin), and a loop is declared unprofitable — bound
exactly 0.0 — only when even the inflated rate stays <= 1, in which
case the kernel provably computes a non-positive profit and the
scalar assembly reports exactly 0.  Positive bounds are then widened
by ``BOUND_SLACK_RTOL`` relative + ``BOUND_SLACK_ABS`` absolute,
dominating the rounding of the bound expression itself.  NaN bounds
(degenerate reserves, missing prices) are *not* prunable: callers
must write prune masks as ``bound < threshold`` so NaN always falls
through to the exact path, which owns raising (or not) exactly like
the unpruned run.
"""

from __future__ import annotations

import numpy as np

from ..core.types import PriceMap
from .arrays import MarketArrays
from .compile import CompiledLoopGroup
from .families import family_descriptor
from .kernel import oriented_reserves

__all__ = [
    "BOUND_RATE_MARGIN",
    "BOUND_SLACK_ABS",
    "BOUND_SLACK_RTOL",
    "below_threshold",
    "group_rate_bound",
    "monetized_bounds",
    "rotation_profit_bounds",
]

#: Relative inflation of the spot-rate product before the ``R <= 1``
#: unprofitability test.  The kernel derives its profitability test
#: (``a > b``) from the same per-hop factors multiplied in a different
#: order; the paths diverge by ~1 ulp per hop (~1e-15 relative for the
#: longest loops we compile), so a 1e-9 margin makes "inflated rate
#: <= 1" imply "kernel profit is exactly zero" with a wide moat.
BOUND_RATE_MARGIN = 1e-9

#: Slack widening every positive bound: the bound formulas round too,
#: and soundness must survive their own float evaluation.
BOUND_SLACK_RTOL = 1e-9
BOUND_SLACK_ABS = 1e-12

#: Arithmetic here mirrors the kernels' Python-float silence on
#: degenerate magnitudes (overflow to inf, 0/0 NaN): a NaN/inf bound
#: simply fails every prune test and the exact path decides.
_SILENT = {"over": "ignore", "invalid": "ignore", "divide": "ignore"}


def group_rate_bound(
    arrays: MarketArrays, group: CompiledLoopGroup
) -> tuple[np.ndarray, np.ndarray]:
    """Per-loop spot-rate product and out-side reserve gathers.

    Returns ``(rate, y_out)`` where ``rate[k] = prod_j f_j'(0)`` over
    the base rotation's hops (a rotation invariant) and ``y_out[k, j]``
    is the oriented out-side reserve of base hop ``j`` — the reserve
    capping the token that rotation ``j+1`` starts from.

    The CPMM spot slope ``gamma * y/x`` is the vectorized base case;
    each non-CPMM family present in a hop column adjusts its own lanes
    through its descriptor's ``bound_factor`` hook (in family-code
    order, like the chain kernel's lanes).
    """
    count = len(group)
    n = group.length
    rate = np.ones(count, dtype=np.float64)
    y_out = np.empty((count, n), dtype=np.float64)
    with np.errstate(**_SILENT):
        for j in range(n):
            pool_col = group.pool_idx[:, j]
            orient_col = group.orient[:, j]
            x, y, gamma = oriented_reserves(arrays, pool_col, orient_col)
            hop = gamma * y / x
            if group.mixed:
                fam = arrays.family[pool_col]
                for code in sorted(int(c) for c in np.unique(fam)):
                    bound_factor = family_descriptor(code).bound_factor
                    if bound_factor is not None:
                        hop = bound_factor(
                            arrays, fam == code, pool_col, orient_col,
                            x, y, gamma, hop,
                        )
            rate = rate * hop
            y_out[:, j] = y
    return rate, y_out


def rotation_profit_bounds(
    arrays: MarketArrays, group: CompiledLoopGroup
) -> np.ndarray:
    """Upper bound on the single-token profit of every rotation.

    Returns a ``(len(group), length)`` matrix whose column ``o``
    bounds the start-token profit of rotation ``o`` (the rotation
    starting at ``loop.tokens[o]``).  Exactly 0.0 where the inflated
    rate product proves no profitable input exists.
    """
    rate, y_out = group_rate_bound(arrays, group)
    with np.errstate(**_SILENT):
        r_eff = rate * (1.0 + BOUND_RATE_MARGIN)
        if group.mixed:
            # generic chord bound: y * (R - 1) / R
            factor = (r_eff - 1.0) / r_eff
        else:
            # CPMM closed-form bound: y * (1 - 1/sqrt(R))^2
            root = np.sqrt(np.maximum(r_eff, 1.0))
            factor = np.square(1.0 - 1.0 / root)
        factor = np.where(r_eff > 1.0, factor, 0.0)
        # rotation o is fed by base hop (o - 1) mod n: its start token
        # is capped by that hop's out-side reserve
        y_into = np.roll(y_out, 1, axis=1)
        bounds = factor[:, None] * y_into
        positive = bounds > 0.0
        bounds = np.where(
            positive,
            bounds * (1.0 + BOUND_SLACK_RTOL) + BOUND_SLACK_ABS,
            bounds,
        )
    return bounds


def monetized_bounds(
    kind: str,
    strategy,
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    prices: PriceMap,
) -> np.ndarray:
    """Per-loop upper bound on the *monetized* profit under ``kind``.

    ``kind`` is the evaluator's dispatch kind (``"traditional"`` /
    ``"maxprice"`` / ``"maxmax"``, see
    :func:`repro.market.batch.batch_kind`); the bound covers the
    rotation(s) that strategy would monetize.  NaN where a price the
    strategy needs is missing — unprunable by construction, so the
    exact path keeps ownership of raising ``MissingPriceError``.
    """
    count = len(group)
    per_rotation = rotation_profit_bounds(arrays, group)
    price_vec = arrays.price_vector(prices)
    price_matrix = price_vec[group.token_idx]
    with np.errstate(**_SILENT):
        if kind == "traditional":
            start = strategy.start_token
            if start is None:
                offsets = np.zeros(count, dtype=np.intp)
            else:
                # missing start tokens raise in the exact pass; bound
                # those rows NaN so they always reach it
                offsets = np.asarray(
                    [offs.get(start, 0) for offs in group.token_offset],
                    dtype=np.intp,
                )
                absent = np.asarray(
                    [start not in offs for offs in group.token_offset]
                )
            rows = np.arange(count)
            bounds = price_matrix[rows, offsets] * per_rotation[rows, offsets]
            if start is not None and absent.any():
                bounds = np.where(absent, np.nan, bounds)
            return bounds
        if kind == "maxprice":
            # the exact pass raises on *any* missing loop price; a NaN
            # anywhere in the row must make the row unprunable
            row_max = price_matrix.max(axis=1)
            ranked = np.where(
                price_matrix == row_max[:, None],
                group.symbol_rank,
                group.length,
            )
            offsets = np.argmin(ranked, axis=1)
            rows = np.arange(count)
            bounds = price_matrix[rows, offsets] * per_rotation[rows, offsets]
            any_nan = np.isnan(price_matrix).any(axis=1)
            return np.where(any_nan, np.nan, bounds)
        # maxmax: the best monetized rotation is below the best
        # monetized per-rotation bound; NaN prices propagate through
        # max() only when their rotation's bound is positive — the
        # same rows where the exact pass would raise
        return np.max(price_matrix * per_rotation, axis=1)


def below_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """The prune predicate: provably unable to enter a book whose
    K-th profit is ``threshold``.

    ``values <= 0`` is always prunable (the book only ranks strictly
    positive profits); otherwise the value must be strictly under the
    threshold.  Written so NaN compares False on both sides — NaN is
    never prunable.
    """
    values = np.asarray(values, dtype=np.float64)
    return (values < threshold) | (values <= 0.0)
