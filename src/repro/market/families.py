"""Per-family dispatch for the columnar market layer.

Every pool row in a :class:`~repro.market.arrays.MarketArrays` carries
an integer family code (:data:`~repro.amm.families.FAMILY_CPMM` /
``FAMILY_G3M`` / ``FAMILY_STABLESWAP``); this module maps each code to
a :class:`FamilyDescriptor` bundling everything the stack needs to
handle that family without branching on type flags:

* ``scalar_out`` — the per-row swap mirror ``MarketArrays`` event
  application uses, op-for-op identical to the pool class's
  ``quote_out`` after validation;
* ``chain_lanes`` — the hop-state builder the generic chain kernel
  (:mod:`repro.market.weighted_kernel`) instantiates per hop column
  for the family's lanes (``None`` for CPMM, whose formula is the
  kernel's vectorized base case);
* ``bound_factor`` — the per-hop spot-slope rule
  (``gamma * f'(0)`` per lane) the soundness bounds
  (:mod:`repro.market.bounds`) fold into the rate product;
* ``to_pool`` — the object-path factory ``MarketArrays.to_registry``
  materializes rows with;
* flags: ``closed_form`` (the family composes linear-fractionally, so
  pure groups keep the closed-form kernel and the tighter sqrt profit
  bound), ``depletion_check`` (the scalar swap mirror checks reserve
  depletion, as ``Pool.swap`` does), ``integer_exact`` (the family has
  an integer-arithmetic twin for ``--exact`` audits).

Adding a family = adding a pool class in ``amm/``, one descriptor
here, and (if its math is iterative) a batched lockstep solver in
:mod:`repro.market.solvers`.  Nothing else in the market layer — not
the arrays, the compiler, the kernels, the bounds, nor the
shared-memory layout — needs to know the new family exists.

Parity policy per family
------------------------
* **CPMM** — ``+ - * / sqrt`` only: batch quotes are bit-exact against
  the scalar path by construction.
* **G3M** — routes through ``np.power``; array and scalar ``pow`` code
  paths may differ by an ulp (pow is not correctly rounded), so the
  portable contract is ``WEIGHTED_PARITY_RTOL``.
* **STABLESWAP** — the Newton iterations use only ``+ - * /`` and the
  batched twins replay the scalar operation order per row, so batch
  and scalar agree bit-for-bit on IEEE-754-compliant float64; the
  portable contract is ``STABLESWAP_PARITY_RTOL`` (both in
  :mod:`repro.market.weighted_kernel`).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..amm.families import (
    FAMILY_CPMM,
    FAMILY_G3M,
    FAMILY_NAMES,
    FAMILY_STABLESWAP,
    pool_family,
)
from ..amm.pool import Pool
from ..amm.stableswap import StableSwapPool, calculate_d, calculate_y, invariant_rate
from ..amm.weighted import WeightedPool, pinned_pow
from .solvers import batched_stableswap_d, batched_stableswap_y

__all__ = [
    "FAMILY_DESCRIPTORS",
    "FamilyDescriptor",
    "family_descriptor",
    "needs_chain_kernel",
    "pool_family",
]

logger = logging.getLogger("repro.market.families")

#: Kernel arithmetic mirrors *Python-float* semantics, which are silent
#: on inf/NaN propagation (``1e308 * 10`` is ``inf``, not a warning);
#: numpy would emit RuntimeWarnings for the identical operations, so
#: expressions the scalar twin also computes run under this state.
_SCALAR_SILENCE = {"over": "ignore", "invalid": "ignore"}


def _pow(
    base: np.ndarray, exponent: np.ndarray, loud: np.ndarray | None = None
) -> np.ndarray:
    """Array twin of :func:`repro.amm.weighted.pinned_pow`: the same
    ``np.power`` ufunc with the same loud-overflow contract — a
    non-finite result from finite operands raises ``OverflowError``
    instead of seeding silent NaN quotes.

    ``loud`` restricts the overflow check to the rows whose *scalar*
    twin is the loud ``pinned_pow`` — in a mixed hop column the other
    families' lanes have plain Python-float scalar twins (``denom *
    denom`` overflowing silently to inf), so their lanes must stay
    silent here too for exception parity.
    """
    out = np.power(base, exponent)
    bad = ~np.isfinite(out)
    if loud is not None:
        bad &= loud
    if bad.any():
        bad &= np.isfinite(base) & np.isfinite(np.asarray(exponent))
        if bad.any():
            k = int(np.argmax(bad))
            logger.warning(
                "weighted-kernel pow overflowed in %d of %d lanes "
                "(first at row %d); degenerate-magnitude reserves fail "
                "loudly instead of seeding NaN quotes",
                int(bad.sum()),
                bad.size,
                k,
            )
            raise OverflowError(
                f"pow({float(np.ravel(base)[k])!r}, "
                f"{float(np.ravel(np.broadcast_to(exponent, out.shape))[k])!r}) "
                "overflows a float64"
            )
    return out


# ----------------------------------------------------------------------
# chain-kernel lane states
#
# The generic chain kernel computes the CPMM rate/out full-width as its
# base case, then asks each non-CPMM family present in the hop column
# for a lane state built here.  A lane state receives the *full-width*
# oriented gathers plus the boolean mask of its rows and combines its
# family's formula into the kernel's base arrays — the G3M lanes keep
# the historical full-width-then-``where`` evaluation (so existing
# weighted parity bits are untouched), the stableswap lanes gather to a
# packed subset (pure ``+ - * /``, bit-stable under any packing).
# ----------------------------------------------------------------------


class _G3MChainLanes:
    """G3M lanes of one hop column, loop-invariant rate factors
    precomputed: ``rate = y*r*γ*x^r / (x+γt)^(r+1)``,
    ``out = y*(1 - (x/(x+γt))^r)`` with ``r = w_in/w_out``."""

    __slots__ = ("mask", "x", "y", "gamma", "ratio", "w_num", "w_exp")

    def __init__(self, arrays, mask, pool_col, orient_col, x, y, gamma):
        self.mask = mask
        self.x, self.y, self.gamma = x, y, gamma
        w0, w1 = arrays.weight0, arrays.weight1
        w_in = np.where(orient_col, w0[pool_col], w1[pool_col])
        w_out = np.where(orient_col, w1[pool_col], w0[pool_col])
        self.ratio = w_in / w_out  # one division, like weight_ratio
        with np.errstate(**_SCALAR_SILENCE):
            self.w_num = y * self.ratio * gamma * _pow(x, self.ratio, loud=mask)
        self.w_exp = self.ratio + 1.0

    def rate_out(self, rate, out, current):
        """Fold this family's lanes into the hop's (rate, out) arrays.

        Runs under the kernel's ``_SCALAR_SILENCE`` errstate; ``rate``
        and ``out`` are kernel-owned temporaries.
        """
        eff = self.gamma * current
        denom = self.x + eff
        w_rate = self.w_num / _pow(denom, self.w_exp, loud=self.mask)
        # x/denom <= 1, so this pow can only underflow
        w_out = self.y * (1.0 - np.power(self.x / denom, self.ratio))
        return np.where(self.mask, w_rate, rate), np.where(self.mask, w_out, out)

    def out_only(self, out, current):
        eff = self.gamma * current
        denom = self.x + eff
        w_out = self.y * (1.0 - np.power(self.x / denom, self.ratio))
        return np.where(self.mask, w_out, out)


class _StableSwapChainLanes:
    """Stableswap lanes of one hop column.

    The invariant ``D`` depends only on the hop's (fixed) reserves, so
    it is solved once per kernel pass (batched, lockstep with the
    scalar ``calculate_d`` the object path re-runs per probe — same
    inputs, same bits); each rate/out probe then solves the out-side
    reserve ``Y(x + γt)`` with the batched lockstep Newton twin.  The
    ``t == 0`` lanes are masked to the scalar path's exact guards
    (``out = 0.0``, slope evaluated at the untouched reserves).
    """

    __slots__ = ("mask", "x", "y", "gamma", "amp", "d")

    def __init__(self, arrays, mask, pool_col, orient_col, x, y, gamma):
        self.mask = mask
        self.x = x[mask]
        self.y = y[mask]
        self.gamma = gamma[mask]
        self.amp = arrays.amp[pool_col[mask]]
        self.d = batched_stableswap_d(self.x, self.y, self.amp)

    def rate_out(self, rate, out, current):
        c = current[self.mask]
        x_c = self.x + self.gamma * c
        y_c = batched_stableswap_y(x_c, self.d, self.amp)
        zero = c == 0.0
        y_c = np.where(zero, self.y, y_c)
        r = self.gamma * invariant_rate(x_c, y_c, self.d, self.amp)
        o = np.where(zero, 0.0, self.y - y_c)
        rate[self.mask] = r
        out[self.mask] = o
        return rate, out

    def out_only(self, out, current):
        c = current[self.mask]
        x_c = self.x + self.gamma * c
        y_c = batched_stableswap_y(x_c, self.d, self.amp)
        out[self.mask] = np.where(c == 0.0, 0.0, self.y - y_c)
        return out


# ----------------------------------------------------------------------
# scalar swap mirrors (MarketArrays event application)
# ----------------------------------------------------------------------


def _cpmm_scalar_out(arrays, i, is0, x, y, gamma, dx):
    """CPMM exact-in, op-for-op ``repro.amm.swap.amount_out``."""
    eff = gamma * dx
    return y * eff / (x + eff)


def _g3m_scalar_out(arrays, i, is0, x, y, gamma, dx):
    """G3M exact-in, op-for-op :meth:`WeightedPool.quote_out` (after
    its validation): ``dy = y*(1 - (x/(x+γ·dx))^(w_in/w_out))``."""
    w_in = float(arrays.weight0[i]) if is0 else float(arrays.weight1[i])
    w_out = float(arrays.weight1[i]) if is0 else float(arrays.weight0[i])
    ratio = w_in / w_out
    base = x / (x + gamma * dx)
    return y * (1.0 - pinned_pow(base, ratio))


def _stableswap_scalar_out(arrays, i, is0, x, y, gamma, dx):
    """Stableswap exact-in, op-for-op :meth:`StableSwapPool.quote_out`
    (after its validation and zero guard): ``dy = y - Y(x + γ·dx)``."""
    amp = float(arrays.amp[i])
    d = calculate_d(x, y, amp)
    return y - calculate_y(x + gamma * dx, d, amp)


# ----------------------------------------------------------------------
# bound rate factors (gamma * f'(0) per lane)
# ----------------------------------------------------------------------


def _g3m_bound_factor(arrays, mask, pool_col, orient_col, x, y, gamma, hop):
    """Scale the spot slope by ``w_in/w_out``; rows of other families
    carry weights 1.0/1.0, so the ratio is an exact no-op for them
    (the historical full-width evaluation, bit-preserved)."""
    w0, w1 = arrays.weight0, arrays.weight1
    w_in = np.where(orient_col, w0[pool_col], w1[pool_col])
    w_out = np.where(orient_col, w1[pool_col], w0[pool_col])
    return hop * (w_in / w_out)


def _stableswap_bound_factor(arrays, mask, pool_col, orient_col, x, y, gamma, hop):
    """Replace the CPMM slope with ``gamma`` times the invariant-curve
    slope at zero size on this family's lanes.

    The stableswap hop map is increasing and concave with
    ``f(0) = 0`` (``Y`` is convex decreasing in ``x``), so the chord
    bound derivation carries over with this slope.  Non-convergent
    rows (degenerate-magnitude reserves) become NaN — unprunable, by
    the bounds module's contract.
    """
    x_s, y_s, gamma_s = x[mask], y[mask], gamma[mask]
    amp = arrays.amp[pool_col[mask]]
    d = batched_stableswap_d(x_s, y_s, amp, raise_on_fail=False)
    hop[mask] = gamma_s * invariant_rate(x_s, y_s, d, amp)
    return hop


# ----------------------------------------------------------------------
# object-path factories (MarketArrays.to_registry)
# ----------------------------------------------------------------------


def _cpmm_to_pool(arrays, i, token0, token1):
    return Pool(
        token0,
        token1,
        float(arrays.reserve0[i]),
        float(arrays.reserve1[i]),
        fee=float(arrays.fee[i]),
        pool_id=arrays.pool_ids[i],
    )


def _g3m_to_pool(arrays, i, token0, token1):
    return WeightedPool(
        token0,
        token1,
        float(arrays.reserve0[i]),
        float(arrays.reserve1[i]),
        float(arrays.weight0[i]),
        float(arrays.weight1[i]),
        fee=float(arrays.fee[i]),
        pool_id=arrays.pool_ids[i],
    )


def _stableswap_to_pool(arrays, i, token0, token1):
    return StableSwapPool(
        token0,
        token1,
        float(arrays.reserve0[i]),
        float(arrays.reserve1[i]),
        amplification=float(arrays.amp[i]),
        fee=float(arrays.fee[i]),
        pool_id=arrays.pool_ids[i],
    )


@dataclass(frozen=True)
class FamilyDescriptor:
    """Everything the market layer needs to dispatch one pool family.

    See the module docstring for the role of each hook.  ``None`` hooks
    mean "the kernel's base case handles it" and only occur for CPMM.
    """

    code: int
    name: str
    closed_form: bool
    depletion_check: bool
    integer_exact: bool
    scalar_out: Callable
    chain_lanes: Callable | None
    bound_factor: Callable | None
    to_pool: Callable

    def __repr__(self) -> str:
        return f"FamilyDescriptor({self.name}, code={self.code})"


FAMILY_DESCRIPTORS: dict[int, FamilyDescriptor] = {
    FAMILY_CPMM: FamilyDescriptor(
        code=FAMILY_CPMM,
        name=FAMILY_NAMES[FAMILY_CPMM],
        closed_form=True,
        depletion_check=True,
        integer_exact=True,
        scalar_out=_cpmm_scalar_out,
        chain_lanes=None,
        bound_factor=None,
        to_pool=_cpmm_to_pool,
    ),
    FAMILY_G3M: FamilyDescriptor(
        code=FAMILY_G3M,
        name=FAMILY_NAMES[FAMILY_G3M],
        closed_form=False,
        depletion_check=False,
        integer_exact=False,
        scalar_out=_g3m_scalar_out,
        chain_lanes=_G3MChainLanes,
        bound_factor=_g3m_bound_factor,
        to_pool=_g3m_to_pool,
    ),
    FAMILY_STABLESWAP: FamilyDescriptor(
        code=FAMILY_STABLESWAP,
        name=FAMILY_NAMES[FAMILY_STABLESWAP],
        closed_form=False,
        depletion_check=False,
        integer_exact=False,
        scalar_out=_stableswap_scalar_out,
        chain_lanes=_StableSwapChainLanes,
        bound_factor=_stableswap_bound_factor,
        to_pool=_stableswap_to_pool,
    ),
}


def family_descriptor(code: int) -> FamilyDescriptor:
    """The descriptor for a family code; raises on unknown codes so a
    corrupt family column fails loudly instead of mis-pricing."""
    try:
        return FAMILY_DESCRIPTORS[int(code)]
    except KeyError:
        raise KeyError(
            f"unknown pool family code {code!r}; known: "
            f"{sorted(FAMILY_DESCRIPTORS)}"
        ) from None


def needs_chain_kernel(families) -> bool:
    """True when a loop crossing exactly ``families`` must be quoted by
    the generic chain kernel (any family without a linear-fractional
    closed form breaks the composition algebra for the whole loop)."""
    return any(not family_descriptor(code).closed_form for code in families)
