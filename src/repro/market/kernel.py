"""Cross-loop batch quote kernel (closed-form, constant-product).

One vectorized pass evaluates a *rotation* of every compiled loop at
once: compose the linear-fractional hop maps down the hop axis (the
same ``a, b, c`` recurrence as
:meth:`repro.amm.composition.SwapComposition.then`, with numpy arrays
over loops instead of scalars), take the closed-form optimal input
``t* = (sqrt(a*b) - b) / c``, and re-simulate the hop amounts with the
exact-in swap formula.

Bit-exactness with the scalar path is by construction, not by
tolerance: every elementwise numpy operation executes the same
IEEE-754 double operation in the same order as the corresponding
Python-float expression in :mod:`repro.amm.composition` /
:mod:`repro.amm.swap` (and ``np.sqrt`` is correctly rounded exactly
like ``math.sqrt``).  The parity suites assert ``==``, never
``approx``.  Transcendental functions whose rounding is *not*
IEEE-pinned (``np.log`` vs ``math.log``) are deliberately kept out of
this kernel.

The closed form is computed *masked*: ``sqrt(a*b)`` runs only on the
rows where ``a > b`` (a profitable input exists).  The scalar path
never evaluates the formula for unprofitable rotations either, so the
masking both matches it op-for-op and keeps degenerate reserves (for
example products overflowing on hopeless rows) from raising spurious
``RuntimeWarning``s — the market-layer test modules escalate those to
errors.

Weighted (G3M) hops never reach this module: loops containing one are
compiled into ``weighted`` groups and quoted by
:mod:`repro.market.weighted_kernel` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..strategies.traditional import RotationQuote
from .arrays import MarketArrays
from .compile import CompiledLoopGroup

__all__ = [
    "BatchQuotes",
    "batch_quotes",
    "compose_group",
    "gather_hops",
    "monetize_quotes",
    "oriented_reserves",
    "simulate_hops",
]


def oriented_reserves(
    arrays: MarketArrays, pool_col: np.ndarray, orient_col: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather one hop column's oriented ``(x, y, gamma)``: input-side
    reserve, output-side reserve, and fee retention of each pool, with
    the orientation flag selecting which physical reserve is which.
    Shared by the composing kernels and the bounds layer so every
    consumer reads reserves through the same gather."""
    pr0 = arrays.reserve0[pool_col]
    pr1 = arrays.reserve1[pool_col]
    x = np.where(orient_col, pr0, pr1)
    y = np.where(orient_col, pr1, pr0)
    gamma = 1.0 - arrays.fee[pool_col]
    return x, y, gamma


@dataclass(frozen=True)
class BatchQuotes:
    """Price-independent quotes for one rotation of each compiled loop.

    Row ``k`` quotes rotation ``offsets[k]`` (or the shared offset) of
    the group's ``k``-th loop: optimal input, round-trip profit in the
    start token, and the per-hop amounts ``amounts[k] = [in, after hop
    1, ..., out]``.  Rows with no profitable input hold zeros, exactly
    like :func:`repro.strategies.traditional.rotation_quote`.
    ``iterations`` carries the per-row solver iteration counts when an
    iterative kernel produced the quotes (``None`` — reported as 0 —
    for the closed form, matching the scalar solvers).
    """

    length: int
    amount_in: np.ndarray
    profit: np.ndarray
    amounts: np.ndarray
    iterations: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.amount_in)

    def quote(self, k: int) -> RotationQuote:
        """Materialize row ``k`` as the scalar path's RotationQuote."""
        amount_in = float(self.amount_in[k])
        iterations = (
            int(self.iterations[k]) if self.iterations is not None else 0
        )
        if amount_in <= 0.0:
            return RotationQuote(
                amount_in=amount_in, hop_amounts=(), profit=0.0,
                iterations=iterations,
            )
        row = self.amounts[k]
        hops = tuple(
            (float(row[j]), float(row[j + 1])) for j in range(self.length)
        )
        return RotationQuote(
            amount_in=amount_in,
            hop_amounts=hops,
            profit=float(self.profit[k]),
            iterations=iterations,
        )


def gather_hops(
    group: CompiledLoopGroup, offsets: int | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pool / orientation matrices with hop ``j`` = base hop ``offset+j``."""
    n = group.length
    if isinstance(offsets, (int, np.integer)):
        cols = (np.arange(n) + int(offsets)) % n
        return group.pool_idx[:, cols], group.orient[:, cols]
    offs = np.asarray(offsets, dtype=np.intp)
    cols = (offs[:, None] + np.arange(n)) % n
    rows = np.arange(len(group))[:, None]
    return group.pool_idx[rows, cols], group.orient[rows, cols]


def compose_group(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray,
           list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Compose the rotation's linear-fractional coefficients per loop.

    Returns ``(a, b, c, xs, ys, gammas)``: the composed map
    ``t -> a*t / (b + c*t)`` for the requested rotation of every loop,
    plus the per-hop oriented reserve / fee gathers (hop ``j`` of the
    rotation) the callers reuse for re-simulation and bracket hints.
    Constant-product groups only — the recurrence mirrors
    ``SwapComposition.then`` op for op.
    """
    n = group.length
    count = len(group)
    pool_g, orient_g = gather_hops(group, offsets)

    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    gammas: list[np.ndarray] = []
    # compose IDENTITY.then(hop_0).then(hop_1)...: per hop, with
    # (a_h, b_h, c_h) = (y*gamma, x, gamma), the recurrence is
    #   c <- b_h*c + c_h*a ;  a <- a*a_h ;  b <- b*b_h
    # (c first: it reads the pre-update a, exactly like `then`).
    a = np.ones(count, dtype=np.float64)
    b = np.ones(count, dtype=np.float64)
    c = np.zeros(count, dtype=np.float64)
    for j in range(n):
        x, y, gamma = oriented_reserves(arrays, pool_g[:, j], orient_g[:, j])
        xs.append(x)
        ys.append(y)
        gammas.append(gamma)
        a_h = y * gamma
        c = x * c + gamma * a
        a = a * a_h
        b = b * x
    return a, b, c, xs, ys, gammas


def simulate_hops(
    t: np.ndarray,
    xs: list[np.ndarray],
    ys: list[np.ndarray],
    gammas: list[np.ndarray],
) -> np.ndarray:
    """Exact-in re-simulation of every hop at input ``t`` per loop;
    returns the ``(count, n+1)`` amounts matrix ``[in, after hop 1,
    ..., out]`` with the same per-element IEEE-754 sequence as
    :func:`repro.amm.swap.amount_out`."""
    n = len(xs)
    amounts = np.empty((t.shape[0], n + 1), dtype=np.float64)
    amounts[:, 0] = t
    current = t
    for j in range(n):
        eff = gammas[j] * current
        current = ys[j] * eff / (xs[j] + eff)
        amounts[:, j + 1] = current
    return amounts


def batch_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """Quote one rotation of every loop in ``group`` in one pass.

    ``offsets`` is either one shared rotation offset or a per-loop
    array of offsets (fixed-start strategies pick different rotations
    for different loops).
    """
    a, b, c, xs, ys, gammas = compose_group(arrays, group, offsets)

    # closed form: t* = (sqrt(a*b) - b) / c when a > b, else 0 —
    # evaluated only on the profitable rows (see module docstring)
    t = np.zeros(len(group), dtype=np.float64)
    profitable = np.nonzero(a > b)[0]
    if profitable.size:
        ap, bp = a[profitable], b[profitable]
        t[profitable] = (np.sqrt(ap * bp) - bp) / c[profitable]

    amounts = simulate_hops(t, xs, ys, gammas)
    profit = amounts[:, group.length] - amounts[:, 0]
    return BatchQuotes(
        length=group.length, amount_in=t, profit=profit, amounts=amounts
    )


def monetize_quotes(
    quotes: BatchQuotes, start_prices: np.ndarray
) -> np.ndarray:
    """Monetized profit per row: ``P_start * profit`` where a
    profitable input exists, 0.0 otherwise (the scalar path's empty
    profit vector never touches the price map, so rows without a
    profitable input must not read — or propagate NaN from — the
    price)."""
    return np.where(
        quotes.amount_in > 0.0, start_prices * quotes.profit, 0.0
    )
