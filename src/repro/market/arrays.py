"""Structure-of-arrays view of a pool market.

:class:`MarketArrays` holds every pool's reserves, fee, and weights in
contiguous ``float64`` numpy arrays, plus the index maps (pool id →
row, token → column) that let loop-hop matrices address them.  It is
the columnar twin of :class:`~repro.amm.registry.PoolRegistry`:

* built *from* a registry (:meth:`MarketArrays.from_registry`) and
  round-trippable *to* one (:meth:`MarketArrays.to_registry`);
* kept in sync with a live registry via :meth:`pull` (copy reserves of
  the named pools — the cheap per-block refresh the replay driver and
  shard workers use after applying events on the object side);
* or driven directly: :meth:`apply_events` applies a Swap/Mint/Burn
  event batch in place, vectorized across pools whenever the batch
  touches each pool at most once and falling back to exact sequential
  application otherwise.

Float arithmetic here mirrors :mod:`repro.amm.swap` operation by
operation, so array-applied reserves are *bit-identical* to the same
events applied through :class:`~repro.amm.pool.Pool` — the property
the hypothesis round-trip suite pins down.

Pool families are first-class columns: ``family`` holds each row's
integer family code (:data:`~repro.amm.families.FAMILY_CPMM` /
``FAMILY_G3M`` / ``FAMILY_STABLESWAP``) next to the per-family
parameter columns — ``weight0`` / ``weight1`` (1.0 outside G3M, where
only the ratio would matter anyway) and ``amp`` (0.0 outside
stableswap).  Both the event mirror and the kernels dispatch through
the per-family descriptor registry (:mod:`repro.market.families`):
each family's swap events apply that family's exact-in formula
op-for-op with its pool class (G3M through the same
:func:`~repro.amm.weighted.pinned_pow`, stableswap through the same
Newton iterations), so the columnar mirror never drifts from the pools
it shadows — the replay regression suites pin that per family.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..amm.events import (
    BlockEvent,
    BurnEvent,
    MarketEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from ..amm.families import FAMILY_CPMM, FAMILY_NAMES, pool_family
from ..amm.registry import PoolRegistry
from ..core.errors import (
    InvalidReserveError,
    UnknownPoolError,
    UnknownTokenError,
)
from ..core.types import Token
from .families import family_descriptor

__all__ = ["FEE_PPM_DENOMINATOR", "MarketArrays", "quantize_fee"]

#: Denominator of the integer fee column: per-pool fees are quantized
#: to parts-per-million.  The V2 constant 0.003 maps to a retained
#: numerator of 997_000 / 1_000_000, which floor-divides identically to
#: the contract's 997/1000 (numerator and denominator share the factor
#: 1000, and ``(k*a) // (k*b) == a // b``).
FEE_PPM_DENOMINATOR = 10**6


def quantize_fee(fee: float) -> int:
    """Retained-input (gamma) ppm numerator for a float fee fraction.

    ``0.003 → 997_000``.  Fees that are not exactly representable in
    parts-per-million are rounded to the nearest ppm — the integer
    backend is then exact *for the quantized fee*, which the precision
    policy documents as part of the ``--exact`` contract.
    """
    if not 0.0 <= fee < 1.0:
        raise ValueError(f"fee must be in [0, 1), got {fee}")
    gamma_num = FEE_PPM_DENOMINATOR - round(fee * FEE_PPM_DENOMINATOR)
    # a 100% quantized fee would make every integer quote zero and the
    # integer pool arithmetic reject the pool; clamp to the smallest
    # non-degenerate numerator instead (fees this close to 1 are
    # rejected by Pool's own validation anyway)
    return max(gamma_num, 1)


class MarketArrays:
    """Columnar (structure-of-arrays) reserves of a fixed pool set.

    The pool *set* is fixed at construction (rows never move, so the
    hop-index matrices compiled against it stay valid); the reserves
    are mutable, either via :meth:`apply_events` or :meth:`pull`.
    """

    __slots__ = (
        "pool_ids",
        "pool_index",
        "tokens",
        "token_index",
        "reserve0",
        "reserve1",
        "fee",
        "fee_num",
        "weight0",
        "weight1",
        "amp",
        "token0_idx",
        "token1_idx",
        "family",
    )

    def __init__(self, pools: Iterable):
        pool_list = list(pools)
        seen: set[str] = set()
        for pool in pool_list:
            if pool.pool_id in seen:
                raise ValueError(f"duplicate pool id {pool.pool_id!r}")
            seen.add(pool.pool_id)
        self.pool_ids: tuple[str, ...] = tuple(p.pool_id for p in pool_list)
        self.pool_index: dict[str, int] = {
            pid: i for i, pid in enumerate(self.pool_ids)
        }
        tokens: dict[Token, int] = {}
        for pool in pool_list:
            for token in pool.tokens:
                tokens.setdefault(token, len(tokens))
        self.tokens: tuple[Token, ...] = tuple(tokens)
        self.token_index: dict[Token, int] = tokens
        n = len(pool_list)
        self.reserve0 = np.empty(n, dtype=np.float64)
        self.reserve1 = np.empty(n, dtype=np.float64)
        self.fee = np.empty(n, dtype=np.float64)
        self.fee_num = np.empty(n, dtype=np.int64)
        self.weight0 = np.ones(n, dtype=np.float64)
        self.weight1 = np.ones(n, dtype=np.float64)
        self.amp = np.zeros(n, dtype=np.float64)
        self.token0_idx = np.empty(n, dtype=np.intp)
        self.token1_idx = np.empty(n, dtype=np.intp)
        self.family = np.empty(n, dtype=np.int8)
        for i, pool in enumerate(pool_list):
            self.reserve0[i] = pool.reserve_of(pool.token0)
            self.reserve1[i] = pool.reserve_of(pool.token1)
            self._write_fee(i, pool.fee)
            self.token0_idx[i] = tokens[pool.token0]
            self.token1_idx[i] = tokens[pool.token1]
            code = pool_family(pool)
            family_descriptor(code)  # unknown families fail loudly here
            self.family[i] = code
            weight_of = getattr(pool, "weight_of", None)
            if weight_of is not None:
                self.weight0[i] = weight_of(pool.token0)
                self.weight1[i] = weight_of(pool.token1)
            self.amp[i] = getattr(pool, "amplification", 0.0)

    @classmethod
    def from_registry(cls, registry: PoolRegistry) -> "MarketArrays":
        """Columnar view of every pool in ``registry`` (reserves copied)."""
        return cls(registry)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pool_ids)

    @property
    def nbytes(self) -> int:
        """Total payload bytes of the ten columns.

        The index maps (``pool_index`` / ``token_index``) are excluded
        on purpose: this is the number the memory reports compare
        across private-copy and shared-memory backends, and only the
        columns are what gets duplicated or mapped.
        """
        return (
            self.reserve0.nbytes
            + self.reserve1.nbytes
            + self.fee.nbytes
            + self.fee_num.nbytes
            + self.weight0.nbytes
            + self.weight1.nbytes
            + self.amp.nbytes
            + self.token0_idx.nbytes
            + self.token1_idx.nbytes
            + self.family.nbytes
        )

    def __contains__(self, pool_id: str) -> bool:
        return pool_id in self.pool_index

    def __repr__(self) -> str:
        parts = []
        for code in np.unique(self.family):
            count = int((self.family == code).sum())
            parts.append(f"{count} {FAMILY_NAMES.get(int(code), f'family{code}')}")
        return (
            f"MarketArrays({len(self)} pools, {len(self.tokens)} tokens, "
            f"{' / '.join(parts) if parts else 'empty'})"
        )

    def reserves(self, pool_id: str) -> tuple[float, float]:
        """Current ``(reserve0, reserve1)`` of one pool, as floats."""
        i = self._index(pool_id)
        return (float(self.reserve0[i]), float(self.reserve1[i]))

    def _write_fee(self, i: int, fee: float) -> None:
        """Set both fee columns of one row in lockstep.

        The float column feeds the float kernels; the int64 column is
        the ppm-quantized gamma numerator the integer kernel divides
        by.  Writing them together is the invariant that keeps the
        exact backend from silently desyncing when a fee changes.
        """
        self.fee[i] = fee
        self.fee_num[i] = quantize_fee(float(fee))

    def set_fee(self, pool_id: str, fee: float) -> None:
        """Update one pool's fee (both float and integer columns).

        The per-event-batch refresh hook for array-driven markets: a
        fee-tier change lands here instead of requiring a rebuild, so
        compiled hop matrices stay valid while kernel quotes pick up
        the new gamma on the next batch.
        """
        if not 0.0 <= fee < 1.0:
            raise ValueError(f"fee must be in [0, 1), got {fee}")
        self._write_fee(self._index(pool_id), fee)

    def _index(self, pool_id: str) -> int:
        try:
            return self.pool_index[pool_id]
        except KeyError:
            raise UnknownPoolError(
                f"event references pool {pool_id!r} which is not in the market"
            ) from None

    # ------------------------------------------------------------------
    # registry round-trip / sync
    # ------------------------------------------------------------------

    def to_registry(self) -> PoolRegistry:
        """Materialize the current array state as fresh pool objects,
        through each row's family descriptor."""
        registry = PoolRegistry()
        for i in range(len(self.pool_ids)):
            token0 = self.tokens[self.token0_idx[i]]
            token1 = self.tokens[self.token1_idx[i]]
            descriptor = family_descriptor(self.family[i])
            registry.add(descriptor.to_pool(self, i, token0, token1))
        return registry

    def pull(
        self,
        registry: PoolRegistry,
        pool_ids: Iterable[str] | None = None,
    ) -> None:
        """Copy reserves *and fees* from live pool objects into the arrays.

        ``pool_ids`` limits the copy to the named pools (the dirty set
        of a block); ``None`` refreshes every row.  Pools the arrays do
        not know are ignored — a registry may hold pools outside the
        compiled loop set.  Fees refresh alongside reserves (they used
        to be baked at build time) so a fee-tier change on the object
        side can never silently desync kernel quotes from the scalar
        path.
        """
        if pool_ids is None:
            pool_ids = self.pool_ids
        for pool_id in pool_ids:
            i = self.pool_index.get(pool_id)
            if i is None:
                continue
            pool = registry[pool_id]
            self.reserve0[i] = pool.reserve_of(pool.token0)
            self.reserve1[i] = pool.reserve_of(pool.token1)
            if pool.fee != self.fee[i]:
                self._write_fee(i, pool.fee)

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------

    def apply_events(self, events: Sequence[MarketEvent]) -> set[str]:
        """Apply a batch of pool events in place; return dirty pool ids.

        Price ticks and block markers are no-ops here (arrays hold no
        prices — the caller tracks those); swap/mint/burn mutate the
        reserve columns with arithmetic that mirrors the object path
        bit for bit — per-family: constant-product rows use the CPMM
        exact-in formula, weighted rows the G3M one (through the same
        ``pinned_pow`` as :meth:`WeightedPool.quote_out`).  When every
        pool in the batch is touched at most once the updates are
        applied as single vectorized scatters; any repeated pool forces
        the exact sequential path (later events must see earlier
        events' reserves).
        """
        pool_events: list[MarketEvent] = []
        for event in events:
            if isinstance(event, (SwapEvent, MintEvent, BurnEvent)):
                pool_events.append(event)
            elif isinstance(event, (PriceTickEvent, BlockEvent)):
                continue
            else:
                raise TypeError(
                    f"cannot apply event of type {type(event).__name__}"
                )
        if not pool_events:
            return set()
        indices = [self._index(e.pool_id) for e in pool_events]
        if len(set(indices)) == len(indices):
            self._apply_distinct(pool_events, indices)
        else:
            for event, i in zip(pool_events, indices):
                self._apply_one(event, i)
        return {e.pool_id for e in pool_events}

    # -- sequential exact path -----------------------------------------

    def _orientation(self, i: int, token_in: Token) -> bool:
        if token_in == self.tokens[self.token0_idx[i]]:
            return True
        if token_in == self.tokens[self.token1_idx[i]]:
            return False
        raise UnknownTokenError(
            f"{token_in} is not in pool {self.pool_ids[i]!r}"
        )

    def _apply_one(self, event: MarketEvent, i: int) -> None:
        r0 = float(self.reserve0[i])
        r1 = float(self.reserve1[i])
        if isinstance(event, SwapEvent):
            is0 = self._orientation(i, event.token_in)
            x, y = (r0, r1) if is0 else (r1, r0)
            dx = event.amount_in
            if not np.isfinite(dx) or dx < 0:
                raise ValueError(
                    f"input amount must be >= 0 and finite, got {dx}"
                )
            if dx == 0.0:
                return
            gamma = 1.0 - float(self.fee[i])
            descriptor = family_descriptor(self.family[i])
            dy = descriptor.scalar_out(self, i, is0, x, y, gamma, dx)
            new_x = x + dx
            new_y = y - dy
            # only CPMM rows mirror an object-path depletion check: the
            # G3M / stableswap formulas cannot emit a full reserve, and
            # their pool.swap methods have no such check to mirror
            if descriptor.depletion_check and new_y <= 0:
                raise InvalidReserveError(
                    f"reserve of {event.token_out} would become {new_y}"
                )
            if is0:
                self.reserve0[i], self.reserve1[i] = new_x, new_y
            else:
                self.reserve0[i], self.reserve1[i] = new_y, new_x
        elif isinstance(event, MintEvent):
            a0, a1 = event.amount0, event.amount1
            if a0 <= 0 or a1 <= 0:
                raise InvalidReserveError(
                    f"liquidity amounts must be positive, got ({a0}, {a1})"
                )
            ratio_pool = r0 / r1
            if abs(a0 / a1 - ratio_pool) > 1e-3 * ratio_pool:
                raise InvalidReserveError(
                    f"deposit ratio {a0 / a1:g} does not match pool ratio "
                    f"{ratio_pool:g} in {self.pool_ids[i]}"
                )
            self.reserve0[i] = r0 + a0
            self.reserve1[i] = r1 + a1
        else:  # BurnEvent
            fraction = event.fraction
            if not 0.0 < fraction < 1.0:
                raise InvalidReserveError(
                    f"fraction must be in (0, 1), got {fraction}"
                )
            self.reserve0[i] = r0 - r0 * fraction
            self.reserve1[i] = r1 - r1 * fraction

    # -- vectorized distinct-pool path ---------------------------------

    def _apply_distinct(
        self, events: Sequence[MarketEvent], indices: Sequence[int]
    ) -> None:
        """Scatter a batch in which each pool appears exactly once.

        Disjoint rows make the event kinds order-independent *when every
        event is valid*, so swaps and burns become one gather / compute
        / scatter each, with the same IEEE-754 sequence per element as
        :meth:`_apply_one` (mints stay scalar — rare, per-event ratio
        validation; non-CPMM swap outputs are likewise recomputed
        per-row through each family's scalar mirror, so their call
        sequence is identical to the object path's).  Everything
        is validated against the (disjoint) pre-states before anything
        is written; a batch containing any invalid event is re-run
        sequentially instead, so the exception raised — and the partial
        state left behind — match the event-by-event object path
        exactly.
        """
        swaps = [(e, i) for e, i in zip(events, indices) if isinstance(e, SwapEvent)]
        mints = [(e, i) for e, i in zip(events, indices) if isinstance(e, MintEvent)]
        burns = [(e, i) for e, i in zip(events, indices) if isinstance(e, BurnEvent)]

        def sequential() -> None:
            for event, i in zip(events, indices):
                self._apply_one(event, i)

        # -- validate / precompute (no writes) -------------------------
        swap_update = None
        if swaps:
            idx = np.fromiter((i for _, i in swaps), dtype=np.intp, count=len(swaps))
            try:
                is0 = np.fromiter(
                    (self._orientation(i, e.token_in) for e, i in swaps),
                    dtype=bool,
                    count=len(swaps),
                )
            except UnknownTokenError:
                return sequential()
            dx = np.fromiter((e.amount_in for e, _ in swaps), dtype=np.float64,
                             count=len(swaps))
            if not np.isfinite(dx).all() or (dx < 0).any():
                return sequential()
            r0 = self.reserve0[idx]
            r1 = self.reserve1[idx]
            x = np.where(is0, r0, r1)
            y = np.where(is0, r1, r0)
            gamma = 1.0 - self.fee[idx]
            eff = gamma * dx
            dy = y * eff / (x + eff)
            fam = self.family[idx]
            cp = fam == FAMILY_CPMM
            if not cp.all():
                # non-CPMM rows: overwrite the CPMM output with the
                # row's scalar family mirror (per row, like _apply_one)
                for k in np.nonzero(~cp)[0]:
                    dy[k] = family_descriptor(fam[k]).scalar_out(
                        self, int(idx[k]), bool(is0[k]), float(x[k]),
                        float(y[k]), float(gamma[k]), float(dx[k]),
                    )
            new_x = np.where(dx == 0.0, x, x + dx)
            new_y = np.where(dx == 0.0, y, y - dy)
            if (new_y[cp] <= 0).any():
                return sequential()
            swap_update = (idx, is0, new_x, new_y)
        for event, i in mints:
            a0, a1 = event.amount0, event.amount1
            if a0 <= 0 or a1 <= 0:
                return sequential()
            ratio_pool = float(self.reserve0[i]) / float(self.reserve1[i])
            if abs(a0 / a1 - ratio_pool) > 1e-3 * ratio_pool:
                return sequential()
        burn_update = None
        if burns:
            idx = np.fromiter((i for _, i in burns), dtype=np.intp, count=len(burns))
            frac = np.fromiter((e.fraction for e, _ in burns), dtype=np.float64,
                               count=len(burns))
            if ((frac <= 0.0) | (frac >= 1.0)).any():
                return sequential()
            burn_update = (idx, frac)

        # -- commit ----------------------------------------------------
        if swap_update is not None:
            idx, is0, new_x, new_y = swap_update
            self.reserve0[idx] = np.where(is0, new_x, new_y)
            self.reserve1[idx] = np.where(is0, new_y, new_x)
        for event, i in mints:
            self.reserve0[i] = float(self.reserve0[i]) + event.amount0
            self.reserve1[i] = float(self.reserve1[i]) + event.amount1
        if burn_update is not None:
            idx, frac = burn_update
            r0 = self.reserve0[idx]
            r1 = self.reserve1[idx]
            self.reserve0[idx] = r0 - r0 * frac
            self.reserve1[idx] = r1 - r1 * frac

    # ------------------------------------------------------------------
    # price vector
    # ------------------------------------------------------------------

    def price_vector(self, prices: Mapping[Token, float]) -> np.ndarray:
        """Per-token USD price aligned with :attr:`tokens`.

        Unquoted tokens get ``NaN`` — the kernel only monetizes loops
        whose optimal input is positive, matching the scalar path that
        never touches the price map for zero-profit results.
        """
        from ..core.errors import MissingPriceError

        out = np.empty(len(self.tokens), dtype=np.float64)
        for j, token in enumerate(self.tokens):
            try:
                out[j] = prices[token]
            except (KeyError, MissingPriceError):
                out[j] = np.nan
        return out
