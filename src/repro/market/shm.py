"""Zero-copy shared-memory market state for multi-process shards.

The service's private-copy model pays N× memory for N shards: every
:class:`~repro.service.worker.ShardWorker` duplicates its slice of the
pool registry plus a private columnar mirror.  This module keeps ONE
copy of the market in a named ``multiprocessing.shared_memory``
segment and lets every shard map it read-only:

* :class:`SharedMarketArrays` — the **single writer**'s end.  A
  :class:`~repro.market.MarketArrays` whose columns live inside a
  named segment; the ingest stage applies each block's events under
  :meth:`write_block`, which brackets the mutation with an odd/even
  **epoch counter** (a seqlock): odd while a write is in progress,
  even once committed, monotonically increasing.
* :class:`SharedMarketView` — a shard's **reader** end.  Every
  column — static *and* mutable — is a zero-copy read-only numpy view
  of the segment; per-shard private market state is zero bytes.
  Consistency comes from :meth:`SharedMarketView.read_consistent`,
  which brackets each batch-kernel pass with the seqlock's epoch
  check: a pass that raced the writer (epoch odd, or changed while
  the kernels ran) is discarded and re-run, and both retry flavours
  are counted (``epoch_waits`` for "writer not there yet",
  ``torn_retries`` for "writer moved underneath the read") for the
  metrics pipeline.
* :class:`PoolHandle` — a reserve-less stand-in for a
  :class:`~repro.amm.pool.Pool` carrying only loop topology and static
  parameters, so shared-memory shards can rebind their loops without
  holding any reserve state at all (the batch kernels read reserves
  from the columns, never from pool objects).

Consistency contract (why torn reads are harmless *and* retried): the
writer applies blocks in stream order and a shard processes its routed
blocks in stream order, so by the time a shard handles the **last**
block that dirties one of its loops, no later committed write touches
that loop's rows — a consistent read then sees exactly the final
values, which is all the quiesced-book parity guarantee needs.
Retrying torn reads additionally makes every *intermediate* quote a
pure function of one committed prefix of the stream, so mid-stream
quotes are real quotes, not chimeras of two blocks.

Memory-ordering caveat: CPython bytecode plus x86-TSO keeps the
epoch/data store order the seqlock relies on; on weakly-ordered
architectures the pure-Python protocol is best-effort (the quiescence
argument above still holds, only mid-stream torn-read detection
weakens).

Lifecycle: the creator's segment is registered with the stdlib
``resource_tracker`` (so even a SIGKILLed run is swept), readers
attach **untracked** (pre-3.13 the tracker double-registers attaches
and then warns/unlinks spuriously — exactly the leak noise this module
exists to avoid), and clean paths unlink deterministically via
:meth:`SharedMarketArrays.unlink`, an ``atexit`` guard, or the
service's ``ProcessShardPool.close()`` cleanup hook.
"""

from __future__ import annotations

import atexit
import secrets
import sys
import time
import weakref
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Iterable, Mapping

import numpy as np

from ..amm.families import FAMILY_CPMM, pool_family
from ..core.types import Token
from .arrays import MarketArrays

__all__ = [
    "PoolHandle",
    "SegmentLayoutError",
    "SharedMarketArrays",
    "SharedMarketView",
    "pool_handles",
]

#: Prefix of every segment this module creates — the CI ``/dev/shm``
#: leak check greps for it after the serve smoke.
SEGMENT_PREFIX = "repro_mkt_"

_MAGIC = 0x5250524F_53484D31  # "RPRO" "SHM1"
#: Version 2: the ``constant_product`` bool column became the ``family``
#: int8 code plus the ``amp`` (stableswap amplification) float column.
#: Bumped whenever the column set, dtypes, or order change — an attach
#: across versions raises :class:`SegmentLayoutError` instead of
#: misreading reserves at wrong offsets.
_LAYOUT_VERSION = 2
#: int64 header slots: magic, layout version, n_pools, n_tokens, epoch.
_N_HEADER = 5
_EPOCH_SLOT = 4
_ALIGN = 64

#: Column payload layout, in segment order.  ``mutable`` columns are
#: the ones the writer's event application touches (readers bracket
#: their kernel passes with the epoch check); ``static`` columns never
#: change after creation.  Both sides map every column zero-copy.
_MUTABLE_COLUMNS = (
    ("reserve0", np.float64),
    ("reserve1", np.float64),
    ("fee", np.float64),
    ("fee_num", np.int64),
)
_STATIC_COLUMNS = (
    ("weight0", np.float64),
    ("weight1", np.float64),
    ("amp", np.float64),
    ("token0_idx", np.int64),
    ("token1_idx", np.int64),
    ("family", np.int8),
)


class SegmentLayoutError(ValueError):
    """A shared-market segment's header does not match this build's
    layout — wrong magic (not a shared market at all) or a different
    layout version (created by an older/newer build, so the column
    offsets and dtypes this reader would map are wrong).  The segment
    must be recreated by the same build that attaches it; reserves are
    never read at mismatched offsets.
    """

#: Reader spin discipline: pure yields first, then a short sleep so a
#: lagging writer never busy-burns a whole core.
_SPIN_YIELDS = 64
_SPIN_SLEEP_S = 5e-5


def _layout(n_pools: int) -> tuple[dict[str, tuple[int, np.dtype]], int]:
    """Byte offsets of every column for an ``n_pools``-row segment."""
    offsets: dict[str, tuple[int, np.dtype]] = {}
    cursor = _N_HEADER * 8
    for name, dtype in _MUTABLE_COLUMNS + _STATIC_COLUMNS:
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets[name] = (cursor, np.dtype(dtype))
        cursor += np.dtype(dtype).itemsize * n_pools
    return offsets, max(cursor, _N_HEADER * 8 + _ALIGN)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker tracking.

    Pre-3.13 ``SharedMemory(name=...)`` registers the *attach* with
    the resource tracker too, which then warns about (and unlinks!)
    segments it never owned when the attaching process exits.  3.13+
    has ``track=False``; earlier interpreters get the standard
    suppress-the-registration workaround.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# ----------------------------------------------------------------------
# reserve-less pool handles
# ----------------------------------------------------------------------


class PoolHandle:
    """Loop-topology stand-in for a pool: identity and pool family.

    Exactly enough for loop validation (``token in pool``), kernel
    compilation (``pool_id`` / ``token0`` / ``family`` drive row and
    kernel-group selection), and result assembly — and nothing else.
    Reserves, fees, weights, and amplifications live in the shared
    columns alone: a shared-memory shard that accidentally routes a
    loop onto the scalar (object-reading) path fails loudly with
    ``AttributeError`` instead of silently quoting stale state.
    """

    __slots__ = ("pool_id", "token0", "token1", "family")

    def __init__(self, pool):
        self.pool_id = pool.pool_id
        self.token0 = pool.token0
        self.token1 = pool.token1
        self.family = pool_family(pool)

    @property
    def is_constant_product(self) -> bool:
        return self.family == FAMILY_CPMM

    @property
    def tokens(self) -> tuple[Token, Token]:
        return (self.token0, self.token1)

    def __contains__(self, token: Token) -> bool:
        return token == self.token0 or token == self.token1

    def __repr__(self) -> str:
        return (
            f"PoolHandle({self.token0.symbol}/{self.token1.symbol}, "
            f"id={self.pool_id!r})"
        )


def pool_handles(pools: Iterable) -> dict[str, PoolHandle]:
    """``pool_id -> PoolHandle`` map, the registry stand-in that
    :func:`~repro.replay.apply.rebind_loops` accepts for shared-memory
    shards."""
    return {pool.pool_id: PoolHandle(pool) for pool in pools}


# ----------------------------------------------------------------------
# writer side
# ----------------------------------------------------------------------

_OWNED: "weakref.WeakSet[SharedMarketArrays]" = weakref.WeakSet()
_ATEXIT_INSTALLED = False


def _cleanup_owned() -> None:  # pragma: no cover - exit path
    for segment in list(_OWNED):
        try:
            segment.unlink()
        except Exception:
            pass


class SharedMarketArrays(MarketArrays):
    """The single-writer end of a shared-memory market.

    A :class:`MarketArrays` whose ten columns are numpy views into a
    named ``SharedMemory`` segment, plus the seqlock epoch counter in
    the segment header.  Only one process may ever mutate it (the
    service's ingest stage); every shard maps a
    :class:`SharedMarketView` of the same segment.
    """

    __slots__ = ("_shm", "_epoch", "_owner", "_closed", "_unlinked", "__weakref__")

    def __init__(self, pools: Iterable, *, name: str | None = None):
        global _ATEXIT_INSTALLED
        super().__init__(pools)
        layout, total = _layout(len(self))
        segment_name = (
            name if name is not None
            else SEGMENT_PREFIX + secrets.token_hex(6)
        )
        # created *tracked*: if this process dies without unlinking
        # (even SIGKILL), the stdlib resource tracker sweeps the
        # segment — the atexit/close paths below are the quiet ones
        self._shm = shared_memory.SharedMemory(
            create=True, name=segment_name, size=total
        )
        self._owner = True
        self._closed = False
        self._unlinked = False
        header = np.ndarray((_N_HEADER,), dtype=np.int64, buffer=self._shm.buf)
        header[:] = (_MAGIC, _LAYOUT_VERSION, len(self), len(self.tokens), 0)
        self._epoch = header[_EPOCH_SLOT:_EPOCH_SLOT + 1]
        for column, (offset, dtype) in layout.items():
            view = np.ndarray(
                (len(self),), dtype=dtype, buffer=self._shm.buf, offset=offset
            )
            view[:] = getattr(self, column)
            setattr(self, column, view)
        _OWNED.add(self)
        if not _ATEXIT_INSTALLED:
            atexit.register(_cleanup_owned)
            _ATEXIT_INSTALLED = True

    # -- seqlock -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current seqlock epoch (even = committed, odd = mid-write)."""
        return int(self._epoch[0])

    @contextmanager
    def write_block(self):
        """Bracket one block's event application as a seqlock write.

        The epoch goes odd before the first store and even after the
        last, so readers either wait or retry instead of gathering a
        half-applied block.  Committed in ``finally`` even when event
        application raises — the run is being torn down at that point
        and a permanently-odd epoch would wedge every spinning reader.
        """
        if self._epoch[0] & 1:  # pragma: no cover - defensive
            raise RuntimeError("nested write_block (single-writer protocol)")
        self._epoch[0] += 1
        try:
            yield
        finally:
            self._epoch[0] += 1

    # -- lifecycle -----------------------------------------------------

    @property
    def segment_name(self) -> str:
        return self._shm.name

    @property
    def segment_nbytes(self) -> int:
        """Allocated size of the shared segment (header + columns)."""
        return self._shm.size

    def view(self) -> "SharedMarketView":
        """A new reader endpoint on this segment (one per shard: each
        view keeps its own seqlock retry counters)."""
        return SharedMarketView(
            self._shm.name, self.tokens, pool_index=self.pool_index
        )

    def close(self) -> None:
        """Drop the mapping (columns survive as private copies)."""
        if self._closed:
            return
        self._closed = True
        # numpy views pin the exported buffer; materialize them before
        # releasing the mapping so the object stays readable
        for column, _ in _MUTABLE_COLUMNS + _STATIC_COLUMNS:
            setattr(self, column, np.array(getattr(self, column)))
        self._epoch = np.array(self._epoch)
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the named segment (idempotent; closes first)."""
        self.close()
        if self._unlinked or not self._owner:
            return
        self._unlinked = True
        _OWNED.discard(self)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass


# ----------------------------------------------------------------------
# reader side
# ----------------------------------------------------------------------


class SharedMarketView:
    """One shard's read-only endpoint on a shared market segment.

    Duck-types the :class:`MarketArrays` surface the batch kernels
    evaluate against: every column — static and mutable alike — is a
    zero-copy read-only numpy view of the segment, so a view holds no
    per-shard market state at all.  Reads that must be consistent (a
    kernel pass over reserves and fees) go through
    :meth:`read_consistent`, which retries the pass whenever the
    writer's seqlock epoch moved underneath it.  Pickling carries only
    ``(segment name, tokens)`` — a few hundred bytes regardless of
    market size — and re-attaches on unpickle, which is what lets
    spawn-started shard processes receive segment names instead of
    pickled markets.
    """

    #: Kernel-facing price alignment, borrowed from the columnar twin
    #: (it only touches ``self.tokens``).
    price_vector = MarketArrays.price_vector

    def __init__(
        self,
        segment_name: str,
        tokens: Iterable[Token],
        *,
        pool_index: Mapping[str, int] | None = None,
    ):
        self.segment_name = segment_name
        self.tokens: tuple[Token, ...] = tuple(tokens)
        self.token_index: dict[Token, int] = {
            token: i for i, token in enumerate(self.tokens)
        }
        #: pool id -> row, needed only while compiling loops in the
        #: parent; dropped from the pickle (it dwarfs everything else).
        self.pool_index = dict(pool_index) if pool_index is not None else None
        #: lifetime seqlock counters (the worker ships per-block deltas
        #: in every ShardUpdate and these totals in its done message)
        self.epoch_waits = 0
        self.torn_retries = 0
        #: test seam: called after each epoch read inside the seqlock
        #: loops, letting the suite interleave a writer deterministically
        self._spin_hook = None
        self._attach()

    def _attach(self) -> None:
        self._shm = _attach_segment(self.segment_name)
        self._closed = False
        header = np.ndarray((_N_HEADER,), dtype=np.int64, buffer=self._shm.buf)
        if int(header[0]) != _MAGIC:
            raise SegmentLayoutError(
                f"segment {self.segment_name!r} is not a shared market "
                f"segment (magic 0x{int(header[0]) & (2**64 - 1):016x}, "
                f"expected 0x{_MAGIC:016x})"
            )
        if int(header[1]) != _LAYOUT_VERSION:
            raise SegmentLayoutError(
                f"segment {self.segment_name!r} uses shared-market layout "
                f"version {int(header[1])}, but this build reads version "
                f"{_LAYOUT_VERSION}; the column set changed between "
                "versions, so attaching would map reserves at wrong "
                "offsets — recreate the segment with the build that "
                "attaches it"
            )
        n = int(header[2])
        if int(header[3]) != len(self.tokens):
            raise ValueError(
                f"segment {self.segment_name!r} holds {int(header[3])} "
                f"tokens, view was built for {len(self.tokens)}"
            )
        self.n_pools = n
        self._epoch = header[_EPOCH_SLOT:_EPOCH_SLOT + 1]
        layout, _ = _layout(n)
        for column, dtype in _MUTABLE_COLUMNS + _STATIC_COLUMNS:
            offset, dt = layout[column]
            view = np.ndarray(
                (n,), dtype=dt, buffer=self._shm.buf, offset=offset
            )
            view.flags.writeable = False
            setattr(self, column, view)

    # -- seqlock reads -------------------------------------------------

    @property
    def epoch(self) -> int:
        return int(self._epoch[0])

    def _spin(self, round_: int) -> None:
        if self._spin_hook is not None:
            self._spin_hook()
        time.sleep(0.0 if round_ < _SPIN_YIELDS else _SPIN_SLEEP_S)

    def wait_for_epoch(self, target: int, timeout_s: float = 30.0) -> int:
        """Spin until the writer has committed epoch ``target``.

        Returns the number of spin rounds (0 = writer was already
        there, the quiesced/inline case).  Times out — a reader must
        never hang forever on a writer that died mid-block.
        """
        waits = 0
        deadline: float | None = None
        while int(self._epoch[0]) < target:
            waits += 1
            if deadline is None:
                deadline = time.perf_counter() + timeout_s
            elif time.perf_counter() > deadline:  # pragma: no cover
                raise RuntimeError(
                    f"timed out waiting for shared-market epoch {target} "
                    f"(stuck at {int(self._epoch[0])})"
                )
            self._spin(waits)
        self.epoch_waits += waits
        return waits

    def read_consistent(self, fn, timeout_s: float = 30.0):
        """Run ``fn`` (which reads the mapped columns) at one stable
        committed epoch — the seqlock read.

        ``fn`` is re-run whenever the writer was mid-commit when it
        started (epoch odd) or committed underneath it (epoch moved),
        so a returned value is always a pure function of exactly one
        committed market state — never a chimera of two blocks.  Torn
        re-runs are discarded results, not corrupted state: the
        columns themselves are read-only and ``fn`` must be free of
        side effects a retry would double-apply.  Retries land in
        ``torn_retries``; the odd-epoch wait times out so a reader
        never hangs on a writer that died mid-block.
        """
        retries = 0
        deadline: float | None = None
        while True:
            e1 = int(self._epoch[0])
            if self._spin_hook is not None:
                self._spin_hook()
            if e1 & 1:
                # writer mid-commit: wait it out (bounded)
                retries += 1
                if deadline is None:
                    deadline = time.perf_counter() + timeout_s
                elif time.perf_counter() > deadline:  # pragma: no cover
                    raise RuntimeError(
                        "timed out waiting for an even shared-market epoch "
                        f"(stuck at {e1})"
                    )
                time.sleep(0.0 if retries < _SPIN_YIELDS else _SPIN_SLEEP_S)
                continue
            result = fn()
            if int(self._epoch[0]) == e1:
                self.torn_retries += retries
                return result
            retries += 1

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self.n_pools

    @property
    def private_nbytes(self) -> int:
        """Bytes of per-shard private column state: zero — every
        column is a view of the shared segment.  (The worker adds its
        reserve-less pool handles on top when accounting.)"""
        return 0

    def __repr__(self) -> str:
        return (
            f"SharedMarketView({self.segment_name!r}, {self.n_pools} pools, "
            f"epoch {self.epoch}, waits={self.epoch_waits}, "
            f"torn={self.torn_retries})"
        )

    # -- lifecycle / pickling ------------------------------------------

    def close(self) -> None:
        """Detach from the segment (columns survive as private copies
        so the object stays readable after the mapping is gone)."""
        if self._closed:
            return
        self._closed = True
        for column, _ in _MUTABLE_COLUMNS + _STATIC_COLUMNS:
            setattr(self, column, np.array(getattr(self, column)))
        self._epoch = np.array(self._epoch)
        self._shm.close()

    def __getstate__(self) -> dict:
        return {"segment_name": self.segment_name, "tokens": self.tokens}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["segment_name"], state["tokens"])
