"""Batch quote kernels beyond the closed form.

Two scalar-fallback seams used to quarantine loops on the per-loop
object path; both are closed here:

* **Non-closed-form hops.**  Neither the G3M hop map
  ``out = y * (1 - (x / (x + γ·t))^(w_in/w_out))`` nor the stableswap
  map ``out = y - Y(x + γ·t)`` composes linear-fractionally, so a loop
  containing one such pool has no closed-form optimum.
  :func:`chain_quotes` evaluates such loops array-wide with the chain
  rule — the composed marginal rate at input ``t`` is the product of
  per-hop marginal rates along the simulated path — and finds each
  loop's optimum with the batched bracketing + bisection solver
  (:func:`~repro.market.solvers.batched_maximize_by_derivative`),
  iterating on the whole loop array at once with a converged mask.
  This is the same algorithm (same hint, same brackets, same
  tolerance) as the scalar chain optimizer
  (:func:`repro.optimize.chain.optimize_rotation_chain`), in lockstep
  per row.  Per-hop the kernel computes the CPMM rate/out as its
  vectorized base case and then folds in one *lane state* per
  non-CPMM family present in the hop column, obtained from the family
  registry (:mod:`repro.market.families`) — so mixed loops crossing
  any combination of families stay on this kernel and never force a
  scalar fallback.

* **Iterative strategy methods.**  ``method="bisection"`` /
  ``"golden"`` on constant-product loops previously forced the scalar
  path because the closed-form kernel could not reproduce their
  iteration counts.  :func:`cp_bisection_quotes` /
  :func:`cp_golden_quotes` run the same iterative searches over the
  composed linear-fractional coefficients array-wide.

Parity policy (per family; the registry module docstring carries the
same table): constant-product arithmetic here is IEEE-pinned and
bit-exact against the scalar path by construction.  Weighted hops go
through ``np.power`` — the very ufunc the scalar
:class:`~repro.amm.weighted.WeightedPool` quotes route through
(:func:`~repro.amm.weighted.pinned_pow`) — but ``pow`` is not
correctly rounded, and NumPy's SIMD inner loops may round packed
vector lanes and the scalar/tail path independently, so the array and
0-d calls can differ by an ulp even on one build.  The documented
contract is relative agreement within ``WEIGHTED_PARITY_RTOL`` (the
hypothesis suite in ``tests/property/test_weighted_kernel_parity.py``
pins it).
Stableswap hops use only ``+ - * /`` (correctly rounded under
IEEE-754) in lockstep operation order with the scalar pool, so batch
and scalar agree bit-for-bit on compliant float64 hardware; the
portable documented contract is ``STABLESWAP_PARITY_RTOL``
(``tests/property/test_stableswap_parity.py``).

Failure parity at degenerate magnitudes: inf/NaN *propagation* is as
silent here as Python-float arithmetic is on the scalar path
(``_SCALAR_SILENCE``), pow overflow from finite operands is as loud
(``_pow`` raises ``OverflowError`` exactly where ``pinned_pow``
does), and solver non-convergence raises the same
``SolverConvergenceError``.  The one seam deliberately left open: the
scalar path's per-hop *input validation* (``ValueError`` when an
intermediate amount has already overflowed to inf, reachable only
with reserves beyond ~1e154) is not replicated — checking every hop's
amounts for finiteness would tax every real quote to chase markets
float64 cannot meaningfully represent in the first place.
"""

from __future__ import annotations

import logging
from typing import Callable

import numpy as np

from ..amm.families import FAMILY_CPMM
from .arrays import MarketArrays
from .compile import CompiledLoopGroup
from .families import _SCALAR_SILENCE, _pow, family_descriptor
from .kernel import (
    BatchQuotes,
    compose_group,
    gather_hops,
    oriented_reserves,
    simulate_hops,
)
from .solvers import batched_golden_section, batched_maximize_by_derivative

__all__ = [
    "STABLESWAP_PARITY_RTOL",
    "WEIGHTED_PARITY_RTOL",
    "chain_quotes",
    "cp_bisection_quotes",
    "cp_golden_quotes",
    "stableswap_quotes",
    "weighted_quotes",
]

logger = logging.getLogger("repro.market.weighted_kernel")

#: Documented batch-vs-scalar tolerance for quotes crossing a weighted
#: hop.  Both paths share every operation (including the ``pow``
#: ufunc), but ``pow`` is not correctly rounded and its SIMD lane and
#: scalar/tail code paths may round independently, so array and 0-d
#: calls can differ by an ulp per hop (~1e-16 relative per pow,
#: amplified through at most a few hundred bisection steps on
#: well-conditioned monotone rates).  This bound is the contract; do
#: not assert bit-identity across the two paths.
WEIGHTED_PARITY_RTOL = 1e-9

#: Documented batch-vs-scalar tolerance for quotes crossing a
#: stableswap hop.  The hop map and both Newton solvers use only
#: ``+ - * /`` in lockstep operation order with the scalar pool, so on
#: IEEE-754-compliant float64 the two paths agree bit-for-bit; this
#: bound is the portable contract for environments with non-default
#: rounding/FMA contraction in the array loops.
STABLESWAP_PARITY_RTOL = 1e-9


class _ChainHops:
    """Per-hop gathers of a (possibly mixed) rotation, with the
    loop-invariant pieces of the chain-rule rate precomputed.

    Each hop column stores the full-width oriented gathers plus one
    *lane state* per non-CPMM family present (built by the family's
    :attr:`~repro.market.families.FamilyDescriptor.chain_lanes` hook,
    applied in family-code order).  The CPMM rate/out is the kernel's
    vectorized base case; lanes fold their family's formula into those
    hop temporaries on their own rows.
    """

    def __init__(
        self,
        arrays: MarketArrays,
        group: CompiledLoopGroup,
        offsets: int | np.ndarray,
        rows: np.ndarray | None = None,
    ):
        pool_g, orient_g = gather_hops(group, offsets)
        if rows is not None:
            # compressed view over a row subset: gathering before the
            # elementwise lane math is bit-transparent for the IEEE-pinned
            # families, so per-row results and iteration counts are the
            # ones the full-width evaluation would produce
            pool_g = pool_g[rows]
            orient_g = orient_g[rows]
        fam_rows = arrays.family
        self.hops = []
        for j in range(group.length):
            pool_col = pool_g[:, j]
            orient_col = orient_g[:, j]
            x, y, gamma = oriented_reserves(arrays, pool_col, orient_col)
            fam = fam_rows[pool_col]
            lanes = tuple(
                family_descriptor(code).chain_lanes(
                    arrays, fam == code, pool_col, orient_col, x, y, gamma
                )
                for code in sorted(int(c) for c in np.unique(fam))
                if code != FAMILY_CPMM
            )
            self.hops.append((x, y, gamma, lanes))
        self.x0 = self.hops[0][0]  # input-side reserve of hop 0

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Composed marginal rate at input ``t`` per loop — the product
        of per-hop marginal rates along the simulated path, op-for-op
        :func:`repro.optimize.chain.chain_rate`."""
        rate = np.ones(t.shape[0], dtype=np.float64)
        current = t
        with np.errstate(**_SCALAR_SILENCE):
            for x, y, gamma, lanes in self.hops:
                eff = gamma * current
                denom = x + eff
                hop_rate = x * y * gamma / (denom * denom)
                hop_out = y * eff / denom
                for lane in lanes:
                    hop_rate, hop_out = lane.rate_out(hop_rate, hop_out, current)
                rate = rate * hop_rate
                current = hop_out
        return rate

    def simulate(self, t: np.ndarray) -> np.ndarray:
        """Hop-by-hop amounts matrix ``[in, after hop 1, ..., out]``."""
        amounts = np.empty((t.shape[0], len(self.hops) + 1), dtype=np.float64)
        amounts[:, 0] = t
        current = t
        with np.errstate(**_SCALAR_SILENCE):
            for j, (x, y, gamma, lanes) in enumerate(self.hops):
                eff = gamma * current
                denom = x + eff
                hop_out = y * eff / denom
                for lane in lanes:
                    hop_out = lane.out_only(hop_out, current)
                current = hop_out
                amounts[:, j + 1] = current
        return amounts


def chain_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """Quote one rotation of every non-closed-form loop at once —
    any mix of CPMM, G3M, and stableswap hops.

    The scalar twin is ``optimize_rotation_chain`` + ``simulate``:
    bracket from the same reserve-scaled hint, bisect the chain rate to
    the same tolerance, re-simulate the hop amounts — all rows in
    lockstep.

    Rows failing the scalar path's no-arbitrage guard
    (``rate(0) <= 1``) resolve to 0.0 without entering the search; the
    solver then runs on a *compressed* view of the surviving rows.  In
    realistic near-efficient markets most rotations fail the guard, so
    this keeps the per-probe cost proportional to the arbitrageable
    subset instead of the whole loop array — the scalar path gets the
    same effect for free by early-returning per loop.  Per-row results
    and iteration counts are unchanged: the solver masks are per-row,
    and gathering rows before elementwise arithmetic does not perturb
    rounding.
    """
    hops = _ChainHops(arrays, group, offsets)
    count = hops.x0.shape[0]
    hint = np.maximum(hops.x0 * 1e-3, 1e-9)
    # the scalar guard is `if rate(0.0) <= 1.0: return 0` — NaN rates
    # (degenerate-magnitude reserves) fall through to the search, so
    # keep them active here too (lockstep with the solver's own guard)
    active = ~(hops.rate(np.zeros(count, dtype=np.float64)) <= 1.0)
    if active.all():
        t, iterations = batched_maximize_by_derivative(hops.rate, hint)
    else:
        t = np.zeros(count, dtype=np.float64)
        iterations = np.zeros(count, dtype=np.intp)
        idx = np.nonzero(active)[0]
        if idx.size:
            sub = _ChainHops(arrays, group, offsets, rows=idx)
            t[idx], iterations[idx] = batched_maximize_by_derivative(
                sub.rate, hint[idx]
            )
    amounts = hops.simulate(t)
    profit = amounts[:, group.length] - amounts[:, 0]
    return BatchQuotes(
        length=group.length,
        amount_in=t,
        profit=profit,
        amounts=amounts,
        iterations=iterations,
    )


#: Historical name (the chain kernel grew out of the G3M/weighted
#: kernel) and the per-family alias — one code path, asserted identical
#: by the stableswap parity suite.
weighted_quotes = chain_quotes
stableswap_quotes = chain_quotes


def _cp_iterative(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
    solve: Callable[..., tuple[np.ndarray, np.ndarray]],
) -> BatchQuotes:
    a, b, c, xs, ys, gammas = compose_group(arrays, group, offsets)
    t, iterations = solve(a, b, c, xs[0])
    amounts = simulate_hops(t, xs, ys, gammas)
    profit = amounts[:, group.length] - amounts[:, 0]
    return BatchQuotes(
        length=group.length,
        amount_in=t,
        profit=profit,
        amounts=amounts,
        iterations=iterations,
    )


def cp_bisection_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """The paper's bisection method, array-wide: bisect the composed
    derivative ``a*b/(b+c*t)^2`` crossing 1, bracketed from the same
    reserve-scaled hint as the scalar ``optimize_rotation_by``."""

    def solve(a, b, c, x0):
        def rate(t: np.ndarray) -> np.ndarray:
            with np.errstate(**_SCALAR_SILENCE):
                denom = b + c * t
                return a * b / (denom * denom)

        hint = np.maximum(x0 * 1e-3, 1e-9)
        return batched_maximize_by_derivative(rate, hint)

    return _cp_iterative(arrays, group, offsets, solve)


def cp_golden_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """Derivative-free golden-section search, array-wide, on the same
    ``[0, 4*t* + 1]`` bracket the scalar path uses (``t*`` from the
    closed form, so the unimodal optimum is safely interior)."""

    def solve(a, b, c, _x0):
        count = a.shape[0]
        active = a > b
        hi = np.ones(count, dtype=np.float64)
        rows = np.nonzero(active)[0]
        if rows.size:
            ar, br = a[rows], b[rows]
            with np.errstate(**_SCALAR_SILENCE):
                hi[rows] = (np.sqrt(ar * br) - br) / c[rows] * 4.0 + 1.0

        def profit(t: np.ndarray) -> np.ndarray:
            with np.errstate(**_SCALAR_SILENCE):
                return np.where(t == 0.0, 0.0, a * t / (b + c * t)) - t

        return batched_golden_section(profit, hi, active)

    return _cp_iterative(arrays, group, offsets, solve)
