"""Batch quote kernels beyond the closed form.

Two scalar-fallback seams used to quarantine loops on the per-loop
object path; both are closed here:

* **Weighted hops.**  The G3M hop map
  ``out = y * (1 - (x / (x + γ·t))^(w_in/w_out))`` has no
  linear-fractional composition, so a loop containing one weighted
  pool has no closed-form optimum.  :func:`weighted_quotes` evaluates
  such loops array-wide with the chain rule — the composed marginal
  rate at input ``t`` is the product of per-hop marginal rates along
  the simulated path — and finds each loop's optimum with the batched
  bracketing + bisection solver
  (:func:`~repro.market.solvers.batched_maximize_by_derivative`),
  iterating on the whole loop array at once with a converged mask.
  This is the same algorithm (same hint, same brackets, same
  tolerance) as the scalar chain optimizer
  (:func:`repro.optimize.chain.optimize_rotation_chain`), in lockstep
  per row.

* **Iterative strategy methods.**  ``method="bisection"`` /
  ``"golden"`` on constant-product loops previously forced the scalar
  path because the closed-form kernel could not reproduce their
  iteration counts.  :func:`cp_bisection_quotes` /
  :func:`cp_golden_quotes` run the same iterative searches over the
  composed linear-fractional coefficients array-wide.

Parity policy: constant-product arithmetic here is IEEE-pinned and
bit-exact against the scalar path by construction.  Weighted hops go
through ``np.power`` — the very ufunc the scalar
:class:`~repro.amm.weighted.WeightedPool` quotes route through
(:func:`~repro.amm.weighted.pinned_pow`) — so batch and scalar agree
bit-for-bit *on any one platform*; across platforms/libms ``pow`` is
not correctly rounded, and the documented contract is relative
agreement within ``WEIGHTED_PARITY_RTOL`` (the hypothesis suite in
``tests/property/test_weighted_kernel_parity.py`` pins it).

Failure parity at degenerate magnitudes: inf/NaN *propagation* is as
silent here as Python-float arithmetic is on the scalar path
(``_SCALAR_SILENCE``), pow overflow from finite operands is as loud
(``_pow`` raises ``OverflowError`` exactly where ``pinned_pow``
does), and solver non-convergence raises the same
``SolverConvergenceError``.  The one seam deliberately left open: the
scalar path's per-hop *input validation* (``ValueError`` when an
intermediate amount has already overflowed to inf, reachable only
with reserves beyond ~1e154) is not replicated — checking every hop's
amounts for finiteness would tax every real quote to chase markets
float64 cannot meaningfully represent in the first place.
"""

from __future__ import annotations

import logging
from typing import Callable

import numpy as np

from .arrays import MarketArrays
from .compile import CompiledLoopGroup
from .kernel import (
    BatchQuotes,
    compose_group,
    gather_hops,
    oriented_reserves,
    simulate_hops,
)
from .solvers import batched_golden_section, batched_maximize_by_derivative

__all__ = [
    "WEIGHTED_PARITY_RTOL",
    "cp_bisection_quotes",
    "cp_golden_quotes",
    "weighted_quotes",
]

logger = logging.getLogger("repro.market.weighted_kernel")

#: Documented batch-vs-scalar tolerance for quotes crossing a weighted
#: hop.  On one platform the two paths share every operation (including
#: the ``pow`` ufunc) and agree exactly; this bound is the contract for
#: environments whose array and scalar ``pow`` code paths differ by an
#: ulp per hop (~1e-16 relative per pow, amplified through at most a
#: few hundred bisection steps on well-conditioned monotone rates).
WEIGHTED_PARITY_RTOL = 1e-9

#: Kernel arithmetic mirrors *Python-float* semantics, which are silent
#: on inf/NaN propagation (``1e308 * 10`` is ``inf``, not a warning);
#: numpy would emit RuntimeWarnings for the identical operations, so
#: expressions the scalar twin also computes run under this state.
#: Loudness lives exactly where the scalar path is loud: :func:`_pow`
#: raises ``OverflowError`` like ``pinned_pow``, and the batched
#: solvers raise ``SolverConvergenceError`` like their scalar twins.
_SCALAR_SILENCE = {"over": "ignore", "invalid": "ignore"}


def _pow(
    base: np.ndarray, exponent: np.ndarray, loud: np.ndarray | None = None
) -> np.ndarray:
    """Array twin of :func:`repro.amm.weighted.pinned_pow`: the same
    ``np.power`` ufunc with the same loud-overflow contract — a
    non-finite result from finite operands raises ``OverflowError``
    instead of seeding silent NaN quotes.

    ``loud`` restricts the overflow check to the rows whose *scalar*
    twin is the loud ``pinned_pow`` — in a mixed hop column the
    constant-product rows' twin is plain Python-float arithmetic
    (``denom * denom`` overflowing silently to inf), so their lanes
    must stay silent here too for exception parity.
    """
    out = np.power(base, exponent)
    bad = ~np.isfinite(out)
    if loud is not None:
        bad &= loud
    if bad.any():
        bad &= np.isfinite(base) & np.isfinite(np.asarray(exponent))
        if bad.any():
            k = int(np.argmax(bad))
            logger.warning(
                "weighted-kernel pow overflowed in %d of %d lanes "
                "(first at row %d); degenerate-magnitude reserves fail "
                "loudly instead of seeding NaN quotes",
                int(bad.sum()),
                bad.size,
                k,
            )
            raise OverflowError(
                f"pow({float(np.ravel(base)[k])!r}, "
                f"{float(np.ravel(np.broadcast_to(exponent, out.shape))[k])!r}) "
                "overflows a float64"
            )
    return out


class _ChainHops:
    """Per-hop gathers of a (possibly mixed) rotation, with the
    loop-invariant pieces of the chain-rule rate precomputed."""

    def __init__(
        self,
        arrays: MarketArrays,
        group: CompiledLoopGroup,
        offsets: int | np.ndarray,
    ):
        pool_g, orient_g = gather_hops(group, offsets)
        w0, w1 = arrays.weight0, arrays.weight1
        cp_rows = arrays.constant_product
        self.hops = []
        for j in range(group.length):
            pool_col = pool_g[:, j]
            orient_col = orient_g[:, j]
            x, y, gamma = oriented_reserves(arrays, pool_col, orient_col)
            cp = cp_rows[pool_col]
            mixed = not cp.all()
            if mixed:
                w_in = np.where(orient_col, w0[pool_col], w1[pool_col])
                w_out = np.where(orient_col, w1[pool_col], w0[pool_col])
                ratio = w_in / w_out  # one division, like weight_ratio
                # loop-invariant factors of the G3M marginal rate
                # y*r*γ*x^r / (x+γt)^(r+1): numerator and exponent
                with np.errstate(**_SCALAR_SILENCE):
                    w_num = y * ratio * gamma * _pow(x, ratio, loud=~cp)
                w_exp = ratio + 1.0
            else:
                ratio = w_num = w_exp = None
            self.hops.append((x, y, gamma, cp, mixed, ratio, w_num, w_exp))
        self.x0 = self.hops[0][0]  # input-side reserve of hop 0

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Composed marginal rate at input ``t`` per loop — the product
        of per-hop marginal rates along the simulated path, op-for-op
        :func:`repro.optimize.chain.chain_rate`."""
        rate = np.ones(t.shape[0], dtype=np.float64)
        current = t
        with np.errstate(**_SCALAR_SILENCE):
            for x, y, gamma, cp, mixed, ratio, w_num, w_exp in self.hops:
                eff = gamma * current
                denom = x + eff
                cp_rate = x * y * gamma / (denom * denom)
                cp_out = y * eff / denom
                if mixed:
                    w_rate = w_num / _pow(denom, w_exp, loud=~cp)
                    # x/denom <= 1, so this pow can only underflow
                    w_out = y * (1.0 - np.power(x / denom, ratio))
                    rate = rate * np.where(cp, cp_rate, w_rate)
                    current = np.where(cp, cp_out, w_out)
                else:
                    rate = rate * cp_rate
                    current = cp_out
        return rate

    def simulate(self, t: np.ndarray) -> np.ndarray:
        """Hop-by-hop amounts matrix ``[in, after hop 1, ..., out]``."""
        amounts = np.empty((t.shape[0], len(self.hops) + 1), dtype=np.float64)
        amounts[:, 0] = t
        current = t
        with np.errstate(**_SCALAR_SILENCE):
            for j, (x, y, gamma, cp, mixed, ratio, _w_num, _w_exp) in enumerate(
                self.hops
            ):
                eff = gamma * current
                denom = x + eff
                cp_out = y * eff / denom
                if mixed:
                    w_out = y * (1.0 - np.power(x / denom, ratio))
                    current = np.where(cp, cp_out, w_out)
                else:
                    current = cp_out
                amounts[:, j + 1] = current
        return amounts


def weighted_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """Quote one rotation of every weighted-containing loop at once.

    The scalar twin is ``optimize_rotation_chain`` + ``simulate``:
    bracket from the same reserve-scaled hint, bisect the chain rate to
    the same tolerance, re-simulate the hop amounts — all rows in
    lockstep.
    """
    hops = _ChainHops(arrays, group, offsets)
    hint = np.maximum(hops.x0 * 1e-3, 1e-9)
    t, iterations = batched_maximize_by_derivative(hops.rate, hint)
    amounts = hops.simulate(t)
    profit = amounts[:, group.length] - amounts[:, 0]
    return BatchQuotes(
        length=group.length,
        amount_in=t,
        profit=profit,
        amounts=amounts,
        iterations=iterations,
    )


def _cp_iterative(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
    solve: Callable[..., tuple[np.ndarray, np.ndarray]],
) -> BatchQuotes:
    a, b, c, xs, ys, gammas = compose_group(arrays, group, offsets)
    t, iterations = solve(a, b, c, xs[0])
    amounts = simulate_hops(t, xs, ys, gammas)
    profit = amounts[:, group.length] - amounts[:, 0]
    return BatchQuotes(
        length=group.length,
        amount_in=t,
        profit=profit,
        amounts=amounts,
        iterations=iterations,
    )


def cp_bisection_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """The paper's bisection method, array-wide: bisect the composed
    derivative ``a*b/(b+c*t)^2`` crossing 1, bracketed from the same
    reserve-scaled hint as the scalar ``optimize_rotation_by``."""

    def solve(a, b, c, x0):
        def rate(t: np.ndarray) -> np.ndarray:
            with np.errstate(**_SCALAR_SILENCE):
                denom = b + c * t
                return a * b / (denom * denom)

        hint = np.maximum(x0 * 1e-3, 1e-9)
        return batched_maximize_by_derivative(rate, hint)

    return _cp_iterative(arrays, group, offsets, solve)


def cp_golden_quotes(
    arrays: MarketArrays,
    group: CompiledLoopGroup,
    offsets: int | np.ndarray,
) -> BatchQuotes:
    """Derivative-free golden-section search, array-wide, on the same
    ``[0, 4*t* + 1]`` bracket the scalar path uses (``t*`` from the
    closed form, so the unimodal optimum is safely interior)."""

    def solve(a, b, c, _x0):
        count = a.shape[0]
        active = a > b
        hi = np.ones(count, dtype=np.float64)
        rows = np.nonzero(active)[0]
        if rows.size:
            ar, br = a[rows], b[rows]
            with np.errstate(**_SCALAR_SILENCE):
                hi[rows] = (np.sqrt(ar * br) - br) / c[rows] * 4.0 + 1.0

        def profit(t: np.ndarray) -> np.ndarray:
            with np.errstate(**_SCALAR_SILENCE):
                return np.where(t == 0.0, 0.0, a * t / (b + c * t)) - t

        return batched_golden_section(profit, hi, active)

    return _cp_iterative(arrays, group, offsets, solve)
