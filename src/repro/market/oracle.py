"""High-precision reference evaluator (mpmath, ``mp.dps = 50``).

The float layer's parity story has two tiers: the constant-product
kernels are bit-identical to the scalar path *by construction*, and
the weighted kernels match within ``WEIGHTED_PARITY_RTOL``.  Neither
statement says which implementation is *accurate* — a tolerance
between two float paths could hide a shared error.  This module is
the referee: every hop map, loop quote, and fixed-start optimum is
re-derived in 50-significant-digit arithmetic (the HydraDX-simulations
approach of running AMM math against an ``mp.dps = 50`` twin), so a
parity check can become a three-way comparison —

    |kernel - oracle|  <=  |scalar - oracle| (+ eps)

demoting the documented rtol from an article of faith to a measured
error bound.

At 50 digits the oracle's own truncation error (~1e-50 relative) sits
forty orders of magnitude below double precision's (~1e-16), so for
the purpose of refereeing doubles its values are exact.  Optima are
resolved to ~1e-40 relative — the profit functions are concave with a
unique interior optimum, so bracketed bisection on ``rate(t) = 1`` in
mpf converges unconditionally.

mpmath is an *optional* backend: the package does not depend on it,
so the import is gated.  Call :func:`have_mpmath` to test, or let
:func:`require_mpmath` raise with an actionable message; the oracle
parity suites ``pytest.importorskip`` it and carry the ``slow``
marker (50-digit arithmetic is ~1000x float).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..amm.families import FAMILY_CPMM, FAMILY_G3M, FAMILY_STABLESWAP, pool_family
from ..core.errors import StrategyError
from ..core.loop import ArbitrageLoop, Rotation
from ..core.types import PriceMap, Token

try:  # pragma: no cover - exercised via have_mpmath() both ways in CI
    from mpmath import mp, mpf

    _HAVE_MPMATH = True
except ImportError:  # pragma: no cover
    mp = None
    mpf = None
    _HAVE_MPMATH = False

__all__ = [
    "ORACLE_DPS",
    "OracleQuote",
    "have_mpmath",
    "require_mpmath",
    "oracle_amount_out",
    "oracle_simulate",
    "oracle_optimal_input",
    "oracle_quote",
    "oracle_monetized",
    "rel_error",
]

#: Working precision (significant decimal digits) of every oracle
#: computation — the HydraDX exemplar's setting, forty digits past
#: what IEEE-754 doubles can express.
ORACLE_DPS = 50

#: Relative width at which the optimum bisection stops: ten digits of
#: headroom under the working precision.
_OPT_TOL_EXP = -(ORACLE_DPS - 10)


def have_mpmath() -> bool:
    """Whether the optional mpmath backend is importable."""
    return _HAVE_MPMATH


def require_mpmath() -> None:
    if not _HAVE_MPMATH:
        raise RuntimeError(
            "the precision oracle needs the optional mpmath package; "
            "install mpmath or skip oracle-backed checks"
        )


# ----------------------------------------------------------------------
# hop maps
# ----------------------------------------------------------------------


def _stable_d(x, y, amp):
    """Stableswap invariant ``D`` for reserves ``(x, y)`` in mpf:
    Newton on ``f(D) = D³/(4xy) + (ann-1)·D - ann·(x+y)`` (``ann =
    4·amp``), which is convex increasing for ``D > 0`` so Newton from
    ``D = x + y`` converges monotonically."""
    ann = 4 * mpf(amp)
    s = x + y
    if s == 0:
        return mpf(0)
    d = s
    tol = mpf(10) ** _OPT_TOL_EXP
    for _ in range(500):
        f = d**3 / (4 * x * y) + (ann - 1) * d - ann * s
        fp = 3 * d**2 / (4 * x * y) + (ann - 1)
        step = f / fp
        d = d - step
        if abs(step) <= tol * max(mpf(1), d):
            return d
    raise ArithmeticError(  # pragma: no cover - convex Newton converges
        "oracle stableswap D iteration did not converge"
    )


def _stable_y(x, d, amp):
    """Out-side reserve on the stableswap curve, exactly: ``Y`` is the
    positive root of ``y² + (b - D)·y - c = 0`` with ``b = x + D/ann``
    and ``c = D³/(4·x·ann)``, so the mpf quadratic formula replaces
    the float paths' Newton iterations."""
    ann = 4 * mpf(amp)
    c = d**3 / (4 * x * ann)
    b = x + d / ann
    return ((d - b) + mp.sqrt((b - d) ** 2 + 4 * c)) / 2


def _hop_params(rotation: Rotation) -> list[tuple]:
    """Per hop: ``(x, y, gamma, family, extra)`` as exact mpf
    conversions of the pool's floats; ``extra`` is ``w_in/w_out`` for
    weighted (G3M) hops, ``(amp, D)`` for stableswap hops (``D``
    solved once — it depends only on the fixed reserves), and ``None``
    for constant-product ones.  ``mpf(float)`` is exact (binary to
    binary), so the oracle evaluates the *same* market the float paths
    see — only the arithmetic differs."""
    params = []
    for token_in, token_out, pool in rotation.hops():
        x = mpf(pool.reserve_of(token_in))
        y = mpf(pool.reserve_of(token_out))
        gamma = 1 - mpf(pool.fee)
        family = pool_family(pool)
        if family == FAMILY_G3M:
            extra = mpf(pool.weight_of(token_in)) / mpf(pool.weight_of(token_out))
        elif family == FAMILY_STABLESWAP:
            amp = mpf(pool.amplification)
            extra = (amp, _stable_d(x, y, amp))
        else:
            extra = None
        params.append((x, y, gamma, family, extra))
    return params


def oracle_amount_out(x, y, fee, amount_in, ratio=None, amp=None):
    """One hop's exact-in output in mpf: the CPMM formula by default,
    the G3M formula for ``ratio = w_in/w_out``, the stableswap curve
    for ``amp`` (amplification).  Scalars may be floats (converted
    exactly) or mpf."""
    require_mpmath()
    with mp.workdps(ORACLE_DPS):
        x, y = mpf(x), mpf(y)
        gamma = 1 - mpf(fee)
        t = mpf(amount_in)
        if amp is not None:
            d = _stable_d(x, y, mpf(amp))
            return y - _stable_y(x + gamma * t, d, mpf(amp))
        if ratio is None:
            eff = gamma * t
            return y * eff / (x + eff)
        return y * (1 - (x / (x + gamma * t)) ** mpf(ratio))


def _hop_out(x, y, eff, family, extra):
    """One hop's output at effective input ``eff = gamma*t``, mpf."""
    if family == FAMILY_G3M:
        return y * (1 - (x / (x + eff)) ** extra)
    if family == FAMILY_STABLESWAP:
        amp, d = extra
        return y - _stable_y(x + eff, d, amp)
    return y * eff / (x + eff)


def _simulate(params: Sequence[tuple], t):
    amounts = [t]
    current = t
    for x, y, gamma, family, extra in params:
        current = _hop_out(x, y, gamma * current, family, extra)
        amounts.append(current)
    return amounts


def _rate(params: Sequence[tuple], t):
    """Composed marginal rate at input ``t`` — the chain-rule product
    of per-hop derivatives along the simulated path, mirroring
    :func:`repro.optimize.chain.chain_rate` in mpf."""
    rate = mpf(1)
    current = t
    for x, y, gamma, family, extra in params:
        eff = gamma * current
        if family == FAMILY_G3M:
            ratio = extra
            rate *= y * ratio * gamma * x**ratio / (x + eff) ** (ratio + 1)
        elif family == FAMILY_STABLESWAP:
            amp, d = extra
            ann = 4 * amp
            x_c = x + eff
            y_c = _stable_y(x_c, d, amp)
            term = d**3 / (4 * x_c * y_c)
            rate *= gamma * (ann + term / x_c) / (ann + term / y_c)
        else:
            rate *= y * gamma * x / (x + eff) ** 2
        current = _hop_out(x, y, eff, family, extra)
    return rate


def oracle_simulate(rotation: Rotation, amount_in) -> list:
    """The rotation's amounts vector ``[in, after hop 1, ..., out]``
    at ``amount_in``, all mpf at :data:`ORACLE_DPS` digits."""
    require_mpmath()
    with mp.workdps(ORACLE_DPS):
        return _simulate(_hop_params(rotation), mpf(amount_in))


# ----------------------------------------------------------------------
# optima
# ----------------------------------------------------------------------


def _closed_form_input(params: Sequence[tuple]):
    """All-CPMM optimum via the composition algebra in mpf:
    compose ``t -> a*t/(b + c*t)`` over the hops, then
    ``t* = (sqrt(a*b) - b)/c`` iff ``a > b``."""
    a, b, c = mpf(1), mpf(1), mpf(0)
    for x, y, gamma, _family, _extra in params:
        c = x * c + gamma * a
        a = a * (y * gamma)
        b = b * x
    if a <= b:
        return mpf(0)
    return (mp.sqrt(a * b) - b) / c


def _bisect_input(params: Sequence[tuple], hint):
    """Mixed-loop optimum: bracketed bisection on ``rate(t) = 1``.

    ``rate`` is strictly decreasing (every hop map is concave
    increasing), so if ``rate(0) > 1`` a unique positive root exists;
    expand the bracket by doubling, then halve to ~1e-40 relative."""
    if _rate(params, mpf(0)) <= 1:
        return mpf(0)
    lo = mpf(0)
    hi = hint if hint > 0 else mpf(1)
    for _ in range(2000):
        if _rate(params, hi) < 1:
            break
        lo = hi
        hi = hi * 2
    else:  # pragma: no cover - 2^2000 dwarfs any finite market
        raise ArithmeticError("rate(t) = 1 bracket expansion diverged")
    tol = mpf(10) ** _OPT_TOL_EXP
    while hi - lo > tol * max(mpf(1), hi):
        mid = (lo + hi) / 2
        if _rate(params, mid) > 1:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def oracle_optimal_input(rotation: Rotation):
    """The rotation's profit-optimal input as mpf: exact closed form
    for all-CPMM rotations, ~1e-40-relative bisection otherwise."""
    require_mpmath()
    with mp.workdps(ORACLE_DPS):
        params = _hop_params(rotation)
        if all(family == FAMILY_CPMM for _x, _y, _g, family, _e in params):
            return _closed_form_input(params)
        hint = params[0][0] * mpf("1e-3")
        return _bisect_input(params, hint)


@dataclass(frozen=True)
class OracleQuote:
    """High-precision twin of the float paths' ``RotationQuote``:
    optimal input, amounts vector, and round-trip profit, all mpf."""

    amount_in: object
    amounts: tuple
    profit: object

    def hop_amounts(self) -> tuple:
        return tuple(
            (self.amounts[j], self.amounts[j + 1])
            for j in range(len(self.amounts) - 1)
        )


def oracle_quote(rotation: Rotation) -> OracleQuote:
    """Optimize and re-simulate one rotation entirely in mpf."""
    require_mpmath()
    with mp.workdps(ORACLE_DPS):
        params = _hop_params(rotation)
        if all(family == FAMILY_CPMM for _x, _y, _g, family, _e in params):
            t = _closed_form_input(params)
        else:
            t = _bisect_input(params, params[0][0] * mpf("1e-3"))
        if t <= 0:
            zero = mpf(0)
            return OracleQuote(amount_in=zero, amounts=(zero,), profit=zero)
        amounts = _simulate(params, t)
        return OracleQuote(
            amount_in=t, amounts=tuple(amounts), profit=amounts[-1] - t
        )


def oracle_monetized(
    kind: str,
    loop: ArbitrageLoop,
    prices: PriceMap,
    start_token: Token | None = None,
) -> tuple[Rotation, OracleQuote, object]:
    """Strategy-level optimum in mpf, mirroring the fixed-start
    strategies' rotation selection.

    ``kind`` is ``"traditional"`` (start at ``start_token``, default
    the loop's first token), ``"maxprice"`` (start at the price map's
    max-price token with the symbol tie-break), or ``"maxmax"`` (best
    monetized rotation, first-maximum tie-break — the scalar strict-``>``
    scan).  Returns ``(rotation, quote, monetized)`` with ``monetized
    = mpf(P_start) * profit``.
    """
    require_mpmath()
    with mp.workdps(ORACLE_DPS):
        if kind == "traditional":
            start = start_token if start_token is not None else loop.tokens[0]
            if start not in loop.tokens:
                raise StrategyError(
                    f"start token {start} is not in {loop!r}"
                )
            rotation = loop.rotation_from(start)
        elif kind == "maxprice":
            rotation = loop.rotation_from(prices.max_price_token(loop.tokens))
        elif kind == "maxmax":
            best = None
            for rotation in loop.rotations():
                quote = oracle_quote(rotation)
                monetized = (
                    mpf(prices[rotation.start_token]) * quote.profit
                    if quote.amount_in > 0
                    else mpf(0)
                )
                if best is None or monetized > best[2]:
                    best = (rotation, quote, monetized)
            return best
        else:
            raise ValueError(f"unknown strategy kind {kind!r}")
        quote = oracle_quote(rotation)
        monetized = (
            mpf(prices[rotation.start_token]) * quote.profit
            if quote.amount_in > 0
            else mpf(0)
        )
        return rotation, quote, monetized


def rel_error(value, reference) -> float:
    """``|value - reference| / max(|reference|, 1e-300)`` as a float —
    the measured-error metric of the three-way parity assertions.
    ``value`` is typically a float path's output, ``reference`` an
    oracle mpf."""
    require_mpmath()
    with mp.workdps(ORACLE_DPS):
        ref = mpf(reference)
        err = abs(mpf(value) - ref) / max(abs(ref), mpf("1e-300"))
        return float(err)
