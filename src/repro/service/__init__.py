"""Streaming opportunity service (tentpole of PR 3).

The offline layers answer "what arbitrage exists in this snapshot?";
this package keeps that answer *continuously current* against a live
event stream:

* :mod:`~repro.service.sources` — async event ingest from a recorded
  log, a JSONL file, or a running simulation;
* :class:`ShardPlan` — deterministic pool/loop partitioning and event
  routing across N shards;
* :class:`ShardWorker` — per-shard dirty-set re-evaluation (the replay
  layer's invalidation over a shard-local
  :class:`~repro.engine.PoolStateCache`), inline or in a child process
  (:class:`ProcessShardPool`) for multi-core throughput;
* :class:`OpportunityBook` — the live top-K book: heap-backed ranking
  (profit desc, canonical loop id asc) with sequence-numbered
  snapshots and bounded delta subscriptions;
* :class:`OpportunityService` — the asyncio pipeline wiring it all
  together, with bounded queues, backpressure or block-shedding, and a
  :class:`ServiceMetrics` registry (events/sec, queue depths, cache
  hit-rate, per-stage p50/p99 latency);
* :mod:`~repro.service.loadgen` — the measurement harness behind
  ``repro-arb loadgen`` and ``benchmarks/bench_service_throughput.py``.

On a quiesced stream the book is bit-identical to batch detection on
the final market state, for any shard count and either backend.
"""

from .book import (
    BookDelta,
    BookSnapshot,
    BookSubscription,
    Opportunity,
    OpportunityBook,
    opportunity_sort_key,
    rank_opportunities,
)
from .loadgen import LoadReport, make_workload, run_load
from .metrics import LatencyStat, ServiceMetrics
from .pipeline import OpportunityService, ServiceReport, batch_detect_ranking
from .sharding import ShardPlan
from .sources import jsonl_source, log_source, paced, simulation_source
from .worker import (
    BlockWork,
    ProcessShardPool,
    SharedBlockWork,
    SharedShardWorker,
    ShardUpdate,
    ShardWorker,
)

__all__ = [
    "BlockWork",
    "BookDelta",
    "BookSnapshot",
    "BookSubscription",
    "LatencyStat",
    "LoadReport",
    "Opportunity",
    "OpportunityBook",
    "OpportunityService",
    "ProcessShardPool",
    "ServiceMetrics",
    "ServiceReport",
    "ShardPlan",
    "ShardUpdate",
    "ShardWorker",
    "SharedBlockWork",
    "SharedShardWorker",
    "batch_detect_ranking",
    "jsonl_source",
    "log_source",
    "make_workload",
    "opportunity_sort_key",
    "paced",
    "rank_opportunities",
    "run_load",
    "simulation_source",
]
