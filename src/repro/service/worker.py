"""Per-shard evaluation state and the process-shard host.

A :class:`ShardWorker` is the service's unit of parallelism: a private
market copy of only its shard's pools, that slice mirrored as columnar
:class:`~repro.market.MarketArrays` with the shard's loops compiled
against it (the cross-loop batch kernels re-quote a block's whole
dirty set in one vectorized pass — weighted-hop loops included, via
the batched chain-rule solver), a shard-local
:class:`~repro.engine.cache.PoolStateCache` for the scalar fallback,
and the replay layer's dirty-set invalidation
(:func:`~repro.replay.apply.apply_block_events` +
:func:`~repro.replay.apply.build_loop_indices` — the same code paths
whose incremental/full parity the replay tests pin down).

Workers are plain synchronous objects, so the pipeline can run them

* **inline** — called directly from an asyncio task (deterministic,
  zero IPC; the default and the test configuration), or
* **in a process** — :class:`ProcessShardHost` moves the worker into a
  long-lived child process fed over queues, which is what buys real
  multi-core throughput (each shard burns its own interpreter).

Either way the numbers are identical: evaluation is a pure function of
the shard's market state, and the shard sees every event that touches
its loops' pools.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from queue import Empty, Full
from typing import Sequence

from ..amm.events import MarketEvent
from ..amm.registry import PoolRegistry
from ..data.snapshot import MarketSnapshot
from ..engine.cache import PoolStateCache
from ..market import BatchEvaluator, MarketArrays
from ..replay.apply import apply_block_events, build_loop_indices, rebind_loops
from ..strategies.base import Strategy
from .book import Opportunity

__all__ = ["BlockWork", "ProcessShardPool", "ShardUpdate", "ShardWorker"]


@dataclass(frozen=True)
class BlockWork:
    """One block's worth of events routed to one shard."""

    block: int
    events: tuple[MarketEvent, ...]
    t_ingest: float  # perf_counter at ingest (monotonic across processes on Linux)
    t_dispatch: float


@dataclass(frozen=True)
class ShardUpdate:
    """A shard's output for one block: changed entries + work stats."""

    shard: int
    block: int
    entries: tuple[Opportunity, ...]
    evaluated: int
    cache_hits: int
    cache_misses: int
    eval_s: float
    t_ingest: float
    t_dispatch: float


def _loop_path(loop) -> str:
    return " -> ".join(t.symbol for t in loop.tokens) + f" -> {loop.tokens[0].symbol}"


class ShardWorker:
    """Dirty-set incremental evaluation over one shard's loops."""

    def __init__(
        self,
        shard_id: int,
        market: MarketSnapshot,
        loops: Sequence,
        strategy: Strategy,
        cache: PoolStateCache | None = None,
    ):
        self.shard_id = shard_id
        # private copy of only the pools this shard's loops cross: the
        # router guarantees no other pool's event ever reaches it, and
        # restricting keeps N-shard memory (and process-backend pickle
        # size) proportional to the shard, not the whole market
        needed = sorted({pool.pool_id for loop in loops for pool in loop.pools})
        registry = PoolRegistry()
        for pool_id in needed:
            registry.add(market.registry[pool_id].copy())
        self.market = MarketSnapshot(
            registry=registry, prices=market.prices, label=market.label
        )
        self.prices = market.prices
        self.strategy = strategy
        self.cache = cache if cache is not None else PoolStateCache()
        # re-point the globally enumerated loops at this shard's pools
        self.loops = rebind_loops(loops, self.market.registry)
        self._pool_loops, self._token_loops = build_loop_indices(self.loops)
        self._loop_ids = tuple(loop.canonical_id for loop in self.loops)
        self._paths = tuple(_loop_path(loop) for loop in self.loops)
        # the shard's array slice: columnar reserves of exactly its
        # pools, with its loop slice compiled against them once
        self._evaluator = BatchEvaluator(
            self.loops, arrays=MarketArrays.from_registry(self.market.registry)
        )
        self._results = self._evaluator.evaluate_many(
            strategy, self.prices, cache=self.cache
        )

    def __repr__(self) -> str:
        return (
            f"ShardWorker(shard={self.shard_id}, {len(self.loops)} loops, "
            f"{len(self.market.registry)} pools)"
        )

    @property
    def evaluator_stats(self):
        """Kernel-vs-scalar routing counters of the shard's
        :class:`~repro.market.BatchEvaluator` (tests assert weighted
        loops are never forced onto the per-loop scalar path)."""
        return self._evaluator.stats

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def initial_entries(self, block: int = -1) -> tuple[Opportunity, ...]:
        """The shard's full evaluation of the starting market (primes
        the book before any event is applied)."""
        return tuple(
            self._entry(index, block) for index in range(len(self.loops))
        )

    def _entry(self, index: int, block: int) -> Opportunity:
        result = self._results[index]
        return Opportunity(
            loop_id=self._loop_ids[index],
            path=self._paths[index],
            profit_usd=result.monetized_profit,
            amount_in=result.amount_in,
            start_symbol=result.start_token.symbol if result.start_token else None,
            block=block,
            shard=self.shard_id,
        )

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------

    def process_block(self, work: BlockWork) -> ShardUpdate:
        """Apply one routed block and re-evaluate only the dirty loops."""
        t0 = time.perf_counter()
        hits0, misses0 = self.cache.hits, self.cache.misses
        self.prices, dirty_pools, dirty_tokens, _ = apply_block_events(
            self.market.registry,
            self.prices,
            work.events,
            arrays=self._evaluator.arrays,
        )

        touched: set[int] = set()
        for pool_id in dirty_pools:
            touched.update(self._pool_loops.get(pool_id, ()))
        for token in dirty_tokens:
            touched.update(self._token_loops.get(token, ()))
        reeval = sorted(touched)
        entries = []
        for index, result in zip(
            reeval,
            self._evaluator.evaluate_many(
                self.strategy, self.prices, indices=reeval, cache=self.cache
            ),
        ):
            self._results[index] = result
            entries.append(self._entry(index, work.block))
        return ShardUpdate(
            shard=self.shard_id,
            block=work.block,
            entries=tuple(entries),
            evaluated=len(reeval),
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
            eval_s=time.perf_counter() - t0,
            t_ingest=work.t_ingest,
            t_dispatch=work.t_dispatch,
        )


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------


def _shard_main(worker: ShardWorker, in_queue, out_queue) -> None:
    """Child-process loop: pull work until the ``None`` sentinel.

    The worker arrives by fork (Linux) or pickle (spawn platforms);
    the priming pass already ran in the parent, so the child starts
    with warm results and a warm cache.  A failing block is reported
    as an ``("error", ...)`` message — never a silent death that would
    leave the parent blocked on the result queue.
    """
    out_queue.put(("ready", worker.shard_id))
    while True:
        item = in_queue.get()
        if item is None:
            out_queue.put(("done", worker.shard_id))
            return
        try:
            update = worker.process_block(item)
        except BaseException:
            out_queue.put(("error", (worker.shard_id, traceback.format_exc())))
            return
        out_queue.put(("update", update))


class ProcessShardPool:
    """All process-backed shards plus their shared result queue.

    Input queues are bounded to ``maxsize`` so the pipeline's
    backpressure reaches across the process boundary instead of
    piling unbounded work into IPC buffers.
    """

    def __init__(self, workers: Sequence[ShardWorker], maxsize: int = 64):
        self._ctx = mp.get_context()
        # the result path is bounded too (the pipeline's backpressure
        # must reach the children): a slow publish stage blocks shard
        # puts instead of letting updates pile up in IPC buffers
        self.out_queue = self._ctx.Queue(
            maxsize=max(1, maxsize) * max(1, len(workers))
        )
        self.in_queues = []
        self.processes = []
        for worker in workers:
            in_queue = self._ctx.Queue(maxsize=maxsize)
            process = self._ctx.Process(
                target=_shard_main,
                args=(worker, in_queue, self.out_queue),
                daemon=True,
            )
            self.in_queues.append(in_queue)
            self.processes.append(process)

    def start(self) -> None:
        for process in self.processes:
            process.start()
        for _ in self.processes:
            # next_message polls exitcodes, so a child that dies before
            # its ready marker (unpicklable worker on spawn platforms,
            # startup OOM) raises here instead of hanging the parent
            kind, shard = self.next_message()
            if kind != "ready":  # pragma: no cover - defensive
                raise RuntimeError(
                    f"shard {shard} sent {kind!r} before becoming ready"
                )

    def _put(self, shard: int, item, poll_s: float = 1.0) -> None:
        """Bounded put that notices a dead child instead of blocking
        forever on a queue nobody will ever drain."""
        while True:
            try:
                self.in_queues[shard].put(item, timeout=poll_s)
                return
            except Full:
                code = self.processes[shard].exitcode
                if code is not None:
                    raise RuntimeError(
                        f"shard {shard} process exited (code {code}) "
                        "with work still pending"
                    )

    def submit(self, shard: int, work: BlockWork) -> None:
        self._put(shard, work)

    def finish(self, shard: int) -> None:
        self._put(shard, None)

    def next_message(self, poll_s: float = 1.0):
        """Blocking read of the shared result queue (call off-loop).

        Polls so an abnormally dead child (OOM-kill, segfault — one
        that could not even send its ``error`` message) surfaces as an
        exception instead of a parent that waits forever.
        """
        while True:
            try:
                return self.out_queue.get(timeout=poll_s)
            except Empty:
                for shard, process in enumerate(self.processes):
                    code = process.exitcode
                    if code not in (None, 0):
                        raise RuntimeError(
                            f"shard {shard} process died with exit code {code}"
                        )

    def join(self, timeout: float = 5.0) -> None:
        for process in self.processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def __len__(self) -> int:
        return len(self.processes)
