"""Per-shard evaluation state and the process-shard host.

A shard worker is the service's unit of parallelism, in one of two
memory models:

* :class:`ShardWorker` — the **private-copy** model (and the parity
  oracle): a private market copy of only its shard's pools, that
  slice mirrored as columnar :class:`~repro.market.MarketArrays` with
  the shard's loops compiled against it, a shard-local
  :class:`~repro.engine.cache.PoolStateCache` for the scalar
  fallback, and the replay layer's dirty-set invalidation
  (:func:`~repro.replay.apply.apply_block_events` +
  :func:`~repro.replay.apply.build_loop_indices`).
* :class:`SharedShardWorker` — the **zero-copy** model: loops rebound
  onto reserve-less :class:`~repro.market.PoolHandle` stand-ins and
  compiled against a :class:`~repro.market.SharedMarketView` of the
  single shared-memory segment the ingest stage writes.  Per block it
  waits for the block's seqlock epoch and re-quotes through the batch
  kernels exclusively (``min_batch=1`` — the kernels are
  bit-identical to the scalar path, which is what preserves the
  parity guarantee without any reserve-carrying pool objects in the
  shard).  Every kernel pass reads the mapped columns directly under
  :meth:`~repro.market.SharedMarketView.read_consistent`, which
  discards and retries passes the writer committed underneath — the
  shard holds zero bytes of reserve state.

Workers are plain synchronous objects, so the pipeline can run them

* **inline** — called directly from an asyncio task (deterministic,
  zero IPC; the default and the test configuration), or
* **in a process** — :class:`ProcessShardPool` moves the worker into a
  long-lived child process fed over queues, which is what buys real
  multi-core throughput (each shard burns its own interpreter).

Either way the numbers are identical: evaluation is a pure function of
the shard's market state, and the shard sees every event that touches
its loops' pools.  In the shared model the per-block work item is
:class:`SharedBlockWork` — (block id, epoch, dirty row indices, price
ticks) — so nothing resembling market state crosses the process
boundary after construction.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing as mp
import sys
import time
import traceback
from dataclasses import dataclass
from queue import Empty, Full
from typing import Callable, Mapping, Sequence

import numpy as np

from ..amm.events import MarketEvent
from ..amm.registry import PoolRegistry
from ..core.types import Token
from ..data.snapshot import MarketSnapshot
from ..engine.cache import PoolStateCache
from ..market import BatchEvaluator, MarketArrays, SharedMarketView, batch_kind
from ..replay.apply import apply_block_events, build_loop_indices, rebind_loops
from ..strategies.base import Strategy
from ..telemetry import trace
from ..telemetry.memory import estimate_object_bytes, peak_rss_bytes
from .book import Opportunity

__all__ = [
    "BlockWork",
    "ProcessShardPool",
    "SharedBlockWork",
    "SharedShardWorker",
    "ShardUpdate",
    "ShardWorker",
]


@dataclass(frozen=True)
class BlockWork:
    """One block's worth of events routed to one shard.

    ``threshold`` is the pruning feedback from the book: the K-th
    profit among entries whose value is final for this block (``None``
    disables pruning — every dirty loop gets an exact quote).
    """

    block: int
    events: tuple[MarketEvent, ...]
    t_ingest: float  # perf_counter at ingest (monotonic across processes on Linux)
    t_dispatch: float
    threshold: float | None = None


@dataclass(frozen=True)
class SharedBlockWork:
    """One routed block in the shared-memory model.

    No market state crosses the process boundary: ``epoch`` names the
    seqlock epoch at which the writer committed this block, ``rows``
    the segment rows the block dirtied on this shard, and ``ticks``
    the block's price updates (stream data, not market state — prices
    feed the monetization map each shard tracks locally).  A work item
    pickles to a few hundred bytes regardless of market size.
    """

    block: int
    epoch: int
    rows: tuple[int, ...]
    ticks: tuple[tuple[Token, float], ...]
    t_ingest: float
    t_dispatch: float
    threshold: float | None = None


@dataclass(frozen=True)
class ShardUpdate:
    """A shard's output for one block: changed entries + work stats.

    ``evaluated`` counts exact quotes; ``pruned`` counts dirty loops
    answered by the bound pass alone (``evaluated + pruned`` = the
    block's dirty-set size on this shard).  The ``shm_*`` counters are
    the shared-memory seqlock's retry accounting for this block (zero
    in the private-copy model).
    """

    shard: int
    block: int
    entries: tuple[Opportunity, ...]
    evaluated: int
    cache_hits: int
    cache_misses: int
    eval_s: float
    t_ingest: float
    t_dispatch: float
    pruned: int = 0
    shm_epoch_waits: int = 0
    shm_torn_retries: int = 0


def _prunable(value: float, threshold: float) -> bool:
    """Scalar twin of :func:`repro.market.bounds.below_threshold`:
    NaN compares False on both sides, so it is never prunable."""
    return value < threshold or value <= 0.0


def _loop_path(loop) -> str:
    return " -> ".join(t.symbol for t in loop.tokens) + f" -> {loop.tokens[0].symbol}"


class _ShardWorkerBase:
    """The evaluation machinery both memory models share.

    Subclasses own state acquisition — how a block's events become
    (updated prices, touched loop positions) — via :meth:`_apply_work`;
    everything downstream (bound-ordered pruning, kernel re-quoting,
    entry assembly, stats) is identical, which is precisely why the
    two models stay bit-compatible.
    """

    shard_id: int
    strategy: Strategy
    cache: PoolStateCache | None
    loops: tuple

    def _finish_init(self, prices) -> None:
        """Prime results/pruning state once loops+evaluator exist."""
        self.prices = prices
        self._pool_loops, self._token_loops = build_loop_indices(self.loops)
        self._loop_ids = tuple(loop.canonical_id for loop in self.loops)
        self._paths = tuple(_loop_path(loop) for loop in self.loops)
        self._results = self._consistent(
            lambda: self._evaluator.evaluate_many(
                self.strategy, self.prices, cache=self.cache
            )
        )
        # pruning state: last published monetized profit per loop (the
        # "stored" side of the prune predicate) and a lazy max-heap of
        # (-bound, version, index) candidates ordered by their latest
        # profit upper bound.  A version bump invalidates every older
        # heap tuple for that loop; NaN bounds are keyed +inf so they
        # always surface (and always get an exact quote).
        self._profits = np.array(
            [result.monetized_profit for result in self._results], dtype=np.float64
        )
        self._bound_heap: list[tuple[float, int, int]] = []
        self._bound_version = np.zeros(len(self.loops), dtype=np.int64)

    @property
    def evaluator_stats(self):
        """Kernel-vs-scalar routing counters of the shard's
        :class:`~repro.market.BatchEvaluator` (tests assert weighted
        loops are never forced onto the per-loop scalar path)."""
        return self._evaluator.stats

    def stats_snapshot(self) -> dict:
        """Lifetime counters for the done message: evaluator routing,
        this process's RSS high-water (``*_max`` so the registry merge
        keeps the peak), and — in the shared model — seqlock totals."""
        stats = self._evaluator.stats.to_dict()
        stats["rss_bytes_max"] = peak_rss_bytes()
        return stats

    def market_state_bytes(self) -> int:
        """Accounted bytes of market state this worker privately holds
        (the number the shared-vs-private memory gate compares)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any mapped resources (no-op for private copies)."""

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def initial_entries(self, block: int = -1) -> tuple[Opportunity, ...]:
        """The shard's full evaluation of the starting market (primes
        the book before any event is applied)."""
        return tuple(
            self._entry(index, block) for index in range(len(self.loops))
        )

    def _entry(self, index: int, block: int) -> Opportunity:
        result = self._results[index]
        return Opportunity(
            loop_id=self._loop_ids[index],
            path=self._paths[index],
            profit_usd=result.monetized_profit,
            amount_in=result.amount_in,
            start_symbol=result.start_token.symbol if result.start_token else None,
            block=block,
            shard=self.shard_id,
        )

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------

    def _work_size(self, work) -> int:
        raise NotImplementedError

    def _apply_work(self, work) -> set[int]:
        """Advance shard state to ``work``'s block; return the touched
        loop positions."""
        raise NotImplementedError

    def _consistent(self, fn):
        """Run one side-effect-free read of market state (a kernel
        pass).  The private-copy model owns its state, so this is just
        ``fn()``; the shared model brackets it with the seqlock's
        epoch check and retries torn passes."""
        return fn()

    def _shm_counters(self) -> tuple[int, int]:
        """Lifetime (epoch_waits, torn_retries); zero when private."""
        return (0, 0)

    def process_block(self, work) -> ShardUpdate:
        """Apply one routed block and re-evaluate only the dirty loops."""
        t0 = time.perf_counter()
        if trace.is_enabled():
            # retroactive span for the time this block spent queued
            # between the pipeline's dispatch and this worker picking
            # it up (perf_counter is system-wide on Linux, so the two
            # stamps are comparable even across the process backend)
            trace.record(
                "shard.queue_wait",
                int(work.t_dispatch * 1e9),
                int((t0 - work.t_dispatch) * 1e9),
                shard=self.shard_id,
                block=work.block,
            )
        with trace.span(
            "shard.block",
            shard=self.shard_id,
            block=work.block,
            events=self._work_size(work),
        ) as sp:
            if self.cache is not None:
                hits0, misses0 = self.cache.hits, self.cache.misses
            else:
                hits0 = misses0 = 0
            waits0, torn0 = self._shm_counters()
            touched = self._apply_work(work)
            reeval = sorted(touched)
            if work.threshold is None:
                requote = reeval
            else:
                requote = self._select_requotes(reeval, work.threshold)
            entries = []
            with trace.span("shard.quote", loops=len(requote)):
                results = self._consistent(
                    lambda: self._evaluator.evaluate_many(
                        self.strategy,
                        self.prices,
                        indices=requote,
                        cache=self.cache,
                    )
                )
                for index, result in zip(requote, results):
                    self._results[index] = result
                    self._profits[index] = result.monetized_profit
                    entries.append(self._entry(index, work.block))
            pruned = len(reeval) - len(requote)
            self._evaluator.stats.pruned_loops += pruned
            waits1, torn1 = self._shm_counters()
            waits, retries = waits1 - waits0, torn1 - torn0
            sp.set(dirty=len(reeval), quoted=len(requote), pruned=pruned)
        return ShardUpdate(
            shard=self.shard_id,
            block=work.block,
            entries=tuple(entries),
            evaluated=len(requote),
            cache_hits=self.cache.hits - hits0 if self.cache is not None else 0,
            cache_misses=(
                self.cache.misses - misses0 if self.cache is not None else 0
            ),
            eval_s=time.perf_counter() - t0,
            t_ingest=work.t_ingest,
            t_dispatch=work.t_dispatch,
            pruned=pruned,
            shm_epoch_waits=waits,
            shm_torn_retries=retries,
        )

    def _select_requotes(self, reeval: list[int], threshold: float) -> list[int]:
        """Bound-ordered selection of the dirty loops that need an
        exact quote at the given threshold.

        A dirty loop may keep its stale book entry only when *both* its
        fresh profit upper bound and its currently published profit are
        prunable (below the threshold or non-positive): the bound
        proves the new exact value cannot reach the displayed top K,
        and the stored check proves the entry it would replace is not
        sitting in (or above) the top K either.  Everything else —
        including every NaN bound — gets requoted.
        """
        if not reeval:
            return []
        with trace.span("shard.bounds", loops=len(reeval)):
            bounds = self._consistent(
                lambda: self._evaluator.monetized_bounds(
                    self.strategy, self.prices, indices=reeval
                )
            )
        for index, bound in zip(reeval, bounds):
            self._bound_version[index] += 1
            key = math.inf if math.isnan(bound) else bound
            heapq.heappush(
                self._bound_heap, (-key, int(self._bound_version[index]), index)
            )
        dirty = set(reeval)
        requote: set[int] = set()
        heap = self._bound_heap
        while heap:
            negkey, version, index = heap[0]
            if _prunable(-negkey, threshold):
                # max-heap order: every remaining bound is prunable too
                break
            heapq.heappop(heap)
            if version != self._bound_version[index]:
                continue  # invalidated by a later bound for this loop
            if index not in dirty:
                continue  # clean loop: its published result is exact
            requote.add(index)
        # the heap accumulates one stale tuple per invalidated bound;
        # rebuild from live versions once they dominate (same ~2:1
        # discipline as the book's lazy-deletion heap)
        if len(heap) > 3 * max(64, len(self.loops)):
            self._rebuild_bound_heap()
        for index in reeval:
            if not _prunable(float(self._profits[index]), threshold):
                requote.add(index)
        return sorted(requote)

    def _rebuild_bound_heap(self) -> None:
        self._bound_heap = [
            (negkey, version, index)
            for negkey, version, index in self._bound_heap
            if version == self._bound_version[index]
        ]
        heapq.heapify(self._bound_heap)


class ShardWorker(_ShardWorkerBase):
    """Dirty-set incremental evaluation over one shard's loops
    (private-copy memory model)."""

    def __init__(
        self,
        shard_id: int,
        market: MarketSnapshot,
        loops: Sequence,
        strategy: Strategy,
        cache: PoolStateCache | None = None,
    ):
        self.shard_id = shard_id
        # private copy of only the pools this shard's loops cross: the
        # router guarantees no other pool's event ever reaches it, and
        # restricting keeps N-shard memory (and process-backend pickle
        # size) proportional to the shard, not the whole market
        needed = sorted({pool.pool_id for loop in loops for pool in loop.pools})
        registry = PoolRegistry()
        for pool_id in needed:
            registry.add(market.registry[pool_id].copy())
        self.market = MarketSnapshot(
            registry=registry, prices=market.prices, label=market.label
        )
        self.strategy = strategy
        self.cache = cache if cache is not None else PoolStateCache()
        # re-point the globally enumerated loops at this shard's pools
        self.loops = rebind_loops(loops, self.market.registry)
        # the shard's array slice: columnar reserves of exactly its
        # pools, with its loop slice compiled against them once
        self._evaluator = BatchEvaluator(
            self.loops, arrays=MarketArrays.from_registry(self.market.registry)
        )
        self._finish_init(market.prices)

    def __repr__(self) -> str:
        return (
            f"ShardWorker(shard={self.shard_id}, {len(self.loops)} loops, "
            f"{len(self.market.registry)} pools)"
        )

    def market_state_bytes(self) -> int:
        """Columns + duplicated pool-state objects (lower-bound
        estimate; the number the shared-vs-private memory gate sums
        per shard).

        Counts what a private copy *owns*: its column slice, each pool
        object with its id string and (block-locally drained) event
        list, and the reserve/fee boxes — which become per-copy heap
        allocations as soon as events apply.  Loop-topology objects
        (tokens, the loops themselves) are excluded on both sides:
        each model carries them identically.
        """
        total = self._evaluator.arrays.nbytes
        for pool in self.market.registry:
            events = getattr(pool, "_events", ())
            total += estimate_object_bytes(pool, pool.pool_id, events, *events)
            for slot in getattr(type(pool), "__slots__", ()):
                value = getattr(pool, slot, None)
                if isinstance(value, float):
                    total += sys.getsizeof(value)
        return total

    def _work_size(self, work: BlockWork) -> int:
        return len(work.events)

    def _apply_work(self, work: BlockWork) -> set[int]:
        with trace.span("shard.apply", events=len(work.events)):
            self.prices, dirty_pools, dirty_tokens, _ = apply_block_events(
                self.market.registry,
                self.prices,
                work.events,
                arrays=self._evaluator.arrays,
            )
        touched: set[int] = set()
        for pool_id in dirty_pools:
            touched.update(self._pool_loops.get(pool_id, ()))
        for token in dirty_tokens:
            touched.update(self._token_loops.get(token, ()))
        return touched


class SharedShardWorker(_ShardWorkerBase):
    """Dirty-set incremental evaluation over a shared-memory market.

    Holds no reserve state: loops are rebound onto
    :class:`~repro.market.PoolHandle` stand-ins and every quote runs
    through the batch kernels (``min_batch=1``) against the shard's
    :class:`~repro.market.SharedMarketView`.  Requires a
    kernel-batchable strategy — the scalar fallback reads pool
    objects, which this model deliberately does not have.
    """

    def __init__(
        self,
        shard_id: int,
        view: SharedMarketView,
        loops: Sequence,
        strategy: Strategy,
        handles: Mapping[str, object],
        prices,
    ):
        if batch_kind(strategy) is None:
            raise ValueError(
                "shared-memory shards evaluate through the batch kernels "
                f"only; strategy {type(strategy).__name__!r} has no batch "
                "kind (use the private-copy model for scalar strategies)"
            )
        if view.pool_index is None:
            raise ValueError(
                "shared shard construction needs a view with pool_index "
                "(build workers in the parent, before pickling)"
            )
        self.shard_id = shard_id
        self.strategy = strategy
        self.cache = None  # scalar path (the cache's only reader) is off
        self._view = view
        self.loops = rebind_loops(loops, handles)
        self._evaluator = BatchEvaluator(self.loops, arrays=view, min_batch=1)
        if self._evaluator.fallback_positions:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{len(self._evaluator.fallback_positions)} loops did not "
                "compile against the shared segment"
            )
        # segment row -> this shard's loop positions (the shared-model
        # twin of the pool-id index; SharedBlockWork routes by row)
        pool_loops, _ = build_loop_indices(self.loops)
        self._row_loops: dict[int, tuple[int, ...]] = {
            view.pool_index[pool_id]: positions
            for pool_id, positions in pool_loops.items()
        }
        self._finish_init(prices)

    def __repr__(self) -> str:
        return (
            f"SharedShardWorker(shard={self.shard_id}, {len(self.loops)} "
            f"loops, segment={self._view.segment_name!r})"
        )

    def stats_snapshot(self) -> dict:
        stats = super().stats_snapshot()
        stats["shm_epoch_waits"] = self._view.epoch_waits
        stats["shm_torn_retries"] = self._view.torn_retries
        return stats

    def market_state_bytes(self) -> int:
        """Reserve-less handles only — the columns are views of the
        segment, which is shared and counted once by the service."""
        total = self._view.private_nbytes
        seen: set[str] = set()
        for loop in self.loops:
            for handle in loop.pools:
                if handle.pool_id not in seen:
                    seen.add(handle.pool_id)
                    total += sys.getsizeof(handle)
        return total

    def close(self) -> None:
        self._view.close()

    def _consistent(self, fn):
        return self._view.read_consistent(fn)

    def _shm_counters(self) -> tuple[int, int]:
        return (self._view.epoch_waits, self._view.torn_retries)

    def _work_size(self, work: SharedBlockWork) -> int:
        return len(work.rows) + len(work.ticks)

    def _apply_work(self, work: SharedBlockWork) -> set[int]:
        with trace.span(
            "shard.sync", rows=len(work.rows), epoch=work.epoch
        ) as sp:
            waits = self._view.wait_for_epoch(work.epoch)
            if waits:
                sp.set(waits=waits)
        for token, price in work.ticks:
            self.prices = self.prices.with_price(token, price)
        touched: set[int] = set()
        for row in work.rows:
            touched.update(self._row_loops.get(row, ()))
        for token, _ in work.ticks:
            touched.update(self._token_loops.get(token, ()))
        return touched


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------


def _shard_main(worker: _ShardWorkerBase, in_queue, out_queue) -> None:
    """Child-process loop: pull work until the ``None`` sentinel.

    The worker arrives by fork (Linux) or pickle (spawn contexts —
    shared-model workers re-attach their segment by name on unpickle);
    the priming pass already ran in the parent, so the child starts
    with warm results and a warm cache.  A failing block is reported
    as an ``("error", ...)`` message — never a silent death that would
    leave the parent blocked on the result queue.

    Tracing: a forked child inherits the parent tracer's enabled flag
    *and* its ring buffer, so the buffer is cleared here — the parent
    already owns those spans — and the child's own spans ship back as
    plain dicts in the ``done`` message for the parent to re-ingest.
    (On spawn platforms the tracer state is not inherited and child
    spans are simply absent.)
    """
    trace.clear()
    out_queue.put(("ready", worker.shard_id))
    try:
        while True:
            item = in_queue.get()
            if item is None:
                # the stats dict rides along because the worker's
                # counters live in this child; the parent turns them
                # into gauges
                out_queue.put(
                    (
                        "done",
                        (
                            worker.shard_id,
                            worker.stats_snapshot(),
                            trace.drain(),
                        ),
                    )
                )
                return
            try:
                update = worker.process_block(item)
            except BaseException:
                out_queue.put(("error", (worker.shard_id, traceback.format_exc())))
                return
            out_queue.put(("update", update))
    finally:
        # detach shared mappings before exit so the resource tracker
        # never sees a reader holding a segment it did not create
        worker.close()


class ProcessShardPool:
    """All process-backed shards plus their shared result queue.

    Input queues are bounded to ``maxsize`` so the pipeline's
    backpressure reaches across the process boundary instead of
    piling unbounded work into IPC buffers.

    ``start_method`` selects the multiprocessing context (``"fork"``,
    ``"spawn"``, ``"forkserver"``; ``None`` = platform default) —
    shared-model workers pickle to segment names either way.
    ``cleanup`` is invoked exactly once from :meth:`close`'s
    ``finally`` path (the service passes the shared segment's unlink
    there, so even an aborted run leaves ``/dev/shm`` clean).
    """

    def __init__(
        self,
        workers: Sequence[_ShardWorkerBase],
        maxsize: int = 64,
        *,
        start_method: str | None = None,
        cleanup: Callable[[], None] | None = None,
    ):
        self._ctx = mp.get_context(start_method)
        self._cleanup = cleanup
        self._closed = False
        # the result path is bounded too (the pipeline's backpressure
        # must reach the children): a slow publish stage blocks shard
        # puts instead of letting updates pile up in IPC buffers
        self.out_queue = self._ctx.Queue(
            maxsize=max(1, maxsize) * max(1, len(workers))
        )
        self.in_queues = []
        self.processes = []
        for worker in workers:
            in_queue = self._ctx.Queue(maxsize=maxsize)
            process = self._ctx.Process(
                target=_shard_main,
                args=(worker, in_queue, self.out_queue),
                daemon=True,
            )
            self.in_queues.append(in_queue)
            self.processes.append(process)

    def start(self) -> None:
        for process in self.processes:
            process.start()
        for _ in self.processes:
            # next_message polls exitcodes, so a child that dies before
            # its ready marker (unpicklable worker on spawn platforms,
            # startup OOM) raises here instead of hanging the parent
            kind, shard = self.next_message()
            if kind != "ready":  # pragma: no cover - defensive
                raise RuntimeError(
                    f"shard {shard} sent {kind!r} before becoming ready"
                )

    def _put(self, shard: int, item, poll_s: float = 1.0) -> None:
        """Bounded put that notices a dead child instead of blocking
        forever on a queue nobody will ever drain."""
        while True:
            try:
                self.in_queues[shard].put(item, timeout=poll_s)
                return
            except Full:
                code = self.processes[shard].exitcode
                if code is not None:
                    raise RuntimeError(
                        f"shard {shard} process exited (code {code}) "
                        "with work still pending"
                    )

    def submit(self, shard: int, work) -> None:
        self._put(shard, work)

    def finish(self, shard: int) -> None:
        self._put(shard, None)

    def next_message(self, poll_s: float = 1.0):
        """Blocking read of the shared result queue (call off-loop).

        Polls so an abnormally dead child (OOM-kill, segfault — one
        that could not even send its ``error`` message) surfaces as an
        exception instead of a parent that waits forever.
        """
        while True:
            try:
                return self.out_queue.get(timeout=poll_s)
            except Empty:
                for shard, process in enumerate(self.processes):
                    code = process.exitcode
                    if code not in (None, 0):
                        raise RuntimeError(
                            f"shard {shard} process died with exit code {code}"
                        )

    def join(self, timeout: float = 5.0) -> None:
        for process in self.processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def close(self, timeout: float = 5.0) -> None:
        """Tear the pool down and run the cleanup hook, exactly once.

        Safe on every exit path — normal quiescence, a raising stage,
        KeyboardInterrupt — and the hook runs even if joining children
        raises, so a shared segment is unlinked no matter how the run
        ended.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.join(timeout=timeout)
        finally:
            if self._cleanup is not None:
                self._cleanup()

    def __len__(self) -> int:
        return len(self.processes)
