"""Per-shard evaluation state and the process-shard host.

A :class:`ShardWorker` is the service's unit of parallelism: a private
market copy of only its shard's pools, that slice mirrored as columnar
:class:`~repro.market.MarketArrays` with the shard's loops compiled
against it (the cross-loop batch kernels re-quote a block's whole
dirty set in one vectorized pass — weighted-hop loops included, via
the batched chain-rule solver), a shard-local
:class:`~repro.engine.cache.PoolStateCache` for the scalar fallback,
and the replay layer's dirty-set invalidation
(:func:`~repro.replay.apply.apply_block_events` +
:func:`~repro.replay.apply.build_loop_indices` — the same code paths
whose incremental/full parity the replay tests pin down).

Workers are plain synchronous objects, so the pipeline can run them

* **inline** — called directly from an asyncio task (deterministic,
  zero IPC; the default and the test configuration), or
* **in a process** — :class:`ProcessShardHost` moves the worker into a
  long-lived child process fed over queues, which is what buys real
  multi-core throughput (each shard burns its own interpreter).

Either way the numbers are identical: evaluation is a pure function of
the shard's market state, and the shard sees every event that touches
its loops' pools.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from queue import Empty, Full
from typing import Sequence

import numpy as np

from ..amm.events import MarketEvent
from ..amm.registry import PoolRegistry
from ..data.snapshot import MarketSnapshot
from ..engine.cache import PoolStateCache
from ..market import BatchEvaluator, MarketArrays
from ..replay.apply import apply_block_events, build_loop_indices, rebind_loops
from ..strategies.base import Strategy
from ..telemetry import trace
from .book import Opportunity

__all__ = ["BlockWork", "ProcessShardPool", "ShardUpdate", "ShardWorker"]


@dataclass(frozen=True)
class BlockWork:
    """One block's worth of events routed to one shard.

    ``threshold`` is the pruning feedback from the book: the K-th
    profit among entries whose value is final for this block (``None``
    disables pruning — every dirty loop gets an exact quote).
    """

    block: int
    events: tuple[MarketEvent, ...]
    t_ingest: float  # perf_counter at ingest (monotonic across processes on Linux)
    t_dispatch: float
    threshold: float | None = None


@dataclass(frozen=True)
class ShardUpdate:
    """A shard's output for one block: changed entries + work stats.

    ``evaluated`` counts exact quotes; ``pruned`` counts dirty loops
    answered by the bound pass alone (``evaluated + pruned`` = the
    block's dirty-set size on this shard).
    """

    shard: int
    block: int
    entries: tuple[Opportunity, ...]
    evaluated: int
    cache_hits: int
    cache_misses: int
    eval_s: float
    t_ingest: float
    t_dispatch: float
    pruned: int = 0


def _prunable(value: float, threshold: float) -> bool:
    """Scalar twin of :func:`repro.market.bounds.below_threshold`:
    NaN compares False on both sides, so it is never prunable."""
    return value < threshold or value <= 0.0


def _loop_path(loop) -> str:
    return " -> ".join(t.symbol for t in loop.tokens) + f" -> {loop.tokens[0].symbol}"


class ShardWorker:
    """Dirty-set incremental evaluation over one shard's loops."""

    def __init__(
        self,
        shard_id: int,
        market: MarketSnapshot,
        loops: Sequence,
        strategy: Strategy,
        cache: PoolStateCache | None = None,
    ):
        self.shard_id = shard_id
        # private copy of only the pools this shard's loops cross: the
        # router guarantees no other pool's event ever reaches it, and
        # restricting keeps N-shard memory (and process-backend pickle
        # size) proportional to the shard, not the whole market
        needed = sorted({pool.pool_id for loop in loops for pool in loop.pools})
        registry = PoolRegistry()
        for pool_id in needed:
            registry.add(market.registry[pool_id].copy())
        self.market = MarketSnapshot(
            registry=registry, prices=market.prices, label=market.label
        )
        self.prices = market.prices
        self.strategy = strategy
        self.cache = cache if cache is not None else PoolStateCache()
        # re-point the globally enumerated loops at this shard's pools
        self.loops = rebind_loops(loops, self.market.registry)
        self._pool_loops, self._token_loops = build_loop_indices(self.loops)
        self._loop_ids = tuple(loop.canonical_id for loop in self.loops)
        self._paths = tuple(_loop_path(loop) for loop in self.loops)
        # the shard's array slice: columnar reserves of exactly its
        # pools, with its loop slice compiled against them once
        self._evaluator = BatchEvaluator(
            self.loops, arrays=MarketArrays.from_registry(self.market.registry)
        )
        self._results = self._evaluator.evaluate_many(
            strategy, self.prices, cache=self.cache
        )
        # pruning state: last published monetized profit per loop (the
        # "stored" side of the prune predicate) and a lazy max-heap of
        # (-bound, version, index) candidates ordered by their latest
        # profit upper bound.  A version bump invalidates every older
        # heap tuple for that loop; NaN bounds are keyed +inf so they
        # always surface (and always get an exact quote).
        self._profits = np.array(
            [result.monetized_profit for result in self._results], dtype=np.float64
        )
        self._bound_heap: list[tuple[float, int, int]] = []
        self._bound_version = np.zeros(len(self.loops), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"ShardWorker(shard={self.shard_id}, {len(self.loops)} loops, "
            f"{len(self.market.registry)} pools)"
        )

    @property
    def evaluator_stats(self):
        """Kernel-vs-scalar routing counters of the shard's
        :class:`~repro.market.BatchEvaluator` (tests assert weighted
        loops are never forced onto the per-loop scalar path)."""
        return self._evaluator.stats

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def initial_entries(self, block: int = -1) -> tuple[Opportunity, ...]:
        """The shard's full evaluation of the starting market (primes
        the book before any event is applied)."""
        return tuple(
            self._entry(index, block) for index in range(len(self.loops))
        )

    def _entry(self, index: int, block: int) -> Opportunity:
        result = self._results[index]
        return Opportunity(
            loop_id=self._loop_ids[index],
            path=self._paths[index],
            profit_usd=result.monetized_profit,
            amount_in=result.amount_in,
            start_symbol=result.start_token.symbol if result.start_token else None,
            block=block,
            shard=self.shard_id,
        )

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------

    def process_block(self, work: BlockWork) -> ShardUpdate:
        """Apply one routed block and re-evaluate only the dirty loops."""
        t0 = time.perf_counter()
        if trace.is_enabled():
            # retroactive span for the time this block spent queued
            # between the pipeline's dispatch and this worker picking
            # it up (perf_counter is system-wide on Linux, so the two
            # stamps are comparable even across the process backend)
            trace.record(
                "shard.queue_wait",
                int(work.t_dispatch * 1e9),
                int((t0 - work.t_dispatch) * 1e9),
                shard=self.shard_id,
                block=work.block,
            )
        with trace.span(
            "shard.block",
            shard=self.shard_id,
            block=work.block,
            events=len(work.events),
        ) as sp:
            hits0, misses0 = self.cache.hits, self.cache.misses
            with trace.span("shard.apply", events=len(work.events)):
                self.prices, dirty_pools, dirty_tokens, _ = apply_block_events(
                    self.market.registry,
                    self.prices,
                    work.events,
                    arrays=self._evaluator.arrays,
                )

            touched: set[int] = set()
            for pool_id in dirty_pools:
                touched.update(self._pool_loops.get(pool_id, ()))
            for token in dirty_tokens:
                touched.update(self._token_loops.get(token, ()))
            reeval = sorted(touched)
            if work.threshold is None:
                requote = reeval
            else:
                requote = self._select_requotes(reeval, work.threshold)
            entries = []
            with trace.span("shard.quote", loops=len(requote)):
                for index, result in zip(
                    requote,
                    self._evaluator.evaluate_many(
                        self.strategy,
                        self.prices,
                        indices=requote,
                        cache=self.cache,
                    ),
                ):
                    self._results[index] = result
                    self._profits[index] = result.monetized_profit
                    entries.append(self._entry(index, work.block))
            pruned = len(reeval) - len(requote)
            self._evaluator.stats.pruned_loops += pruned
            sp.set(dirty=len(reeval), quoted=len(requote), pruned=pruned)
        return ShardUpdate(
            shard=self.shard_id,
            block=work.block,
            entries=tuple(entries),
            evaluated=len(requote),
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
            eval_s=time.perf_counter() - t0,
            t_ingest=work.t_ingest,
            t_dispatch=work.t_dispatch,
            pruned=pruned,
        )

    def _select_requotes(self, reeval: list[int], threshold: float) -> list[int]:
        """Bound-ordered selection of the dirty loops that need an
        exact quote at the given threshold.

        A dirty loop may keep its stale book entry only when *both* its
        fresh profit upper bound and its currently published profit are
        prunable (below the threshold or non-positive): the bound
        proves the new exact value cannot reach the displayed top K,
        and the stored check proves the entry it would replace is not
        sitting in (or above) the top K either.  Everything else —
        including every NaN bound — gets requoted.
        """
        if not reeval:
            return []
        with trace.span("shard.bounds", loops=len(reeval)):
            bounds = self._evaluator.monetized_bounds(
                self.strategy, self.prices, indices=reeval
            )
        for index, bound in zip(reeval, bounds):
            self._bound_version[index] += 1
            key = math.inf if math.isnan(bound) else bound
            heapq.heappush(
                self._bound_heap, (-key, int(self._bound_version[index]), index)
            )
        dirty = set(reeval)
        requote: set[int] = set()
        heap = self._bound_heap
        while heap:
            negkey, version, index = heap[0]
            if _prunable(-negkey, threshold):
                # max-heap order: every remaining bound is prunable too
                break
            heapq.heappop(heap)
            if version != self._bound_version[index]:
                continue  # invalidated by a later bound for this loop
            if index not in dirty:
                continue  # clean loop: its published result is exact
            requote.add(index)
        # the heap accumulates one stale tuple per invalidated bound;
        # rebuild from live versions once they dominate (same ~2:1
        # discipline as the book's lazy-deletion heap)
        if len(heap) > 3 * max(64, len(self.loops)):
            self._rebuild_bound_heap()
        for index in reeval:
            if not _prunable(float(self._profits[index]), threshold):
                requote.add(index)
        return sorted(requote)

    def _rebuild_bound_heap(self) -> None:
        self._bound_heap = [
            (negkey, version, index)
            for negkey, version, index in self._bound_heap
            if version == self._bound_version[index]
        ]
        heapq.heapify(self._bound_heap)


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------


def _shard_main(worker: ShardWorker, in_queue, out_queue) -> None:
    """Child-process loop: pull work until the ``None`` sentinel.

    The worker arrives by fork (Linux) or pickle (spawn platforms);
    the priming pass already ran in the parent, so the child starts
    with warm results and a warm cache.  A failing block is reported
    as an ``("error", ...)`` message — never a silent death that would
    leave the parent blocked on the result queue.

    Tracing: a forked child inherits the parent tracer's enabled flag
    *and* its ring buffer, so the buffer is cleared here — the parent
    already owns those spans — and the child's own spans ship back as
    plain dicts in the ``done`` message for the parent to re-ingest.
    (On spawn platforms the tracer state is not inherited and child
    spans are simply absent.)
    """
    trace.clear()
    out_queue.put(("ready", worker.shard_id))
    while True:
        item = in_queue.get()
        if item is None:
            # the stats dict rides along because the worker's counters
            # live in this child; the parent turns them into gauges
            out_queue.put(
                (
                    "done",
                    (
                        worker.shard_id,
                        worker.evaluator_stats.to_dict(),
                        trace.drain(),
                    ),
                )
            )
            return
        try:
            update = worker.process_block(item)
        except BaseException:
            out_queue.put(("error", (worker.shard_id, traceback.format_exc())))
            return
        out_queue.put(("update", update))


class ProcessShardPool:
    """All process-backed shards plus their shared result queue.

    Input queues are bounded to ``maxsize`` so the pipeline's
    backpressure reaches across the process boundary instead of
    piling unbounded work into IPC buffers.
    """

    def __init__(self, workers: Sequence[ShardWorker], maxsize: int = 64):
        self._ctx = mp.get_context()
        # the result path is bounded too (the pipeline's backpressure
        # must reach the children): a slow publish stage blocks shard
        # puts instead of letting updates pile up in IPC buffers
        self.out_queue = self._ctx.Queue(
            maxsize=max(1, maxsize) * max(1, len(workers))
        )
        self.in_queues = []
        self.processes = []
        for worker in workers:
            in_queue = self._ctx.Queue(maxsize=maxsize)
            process = self._ctx.Process(
                target=_shard_main,
                args=(worker, in_queue, self.out_queue),
                daemon=True,
            )
            self.in_queues.append(in_queue)
            self.processes.append(process)

    def start(self) -> None:
        for process in self.processes:
            process.start()
        for _ in self.processes:
            # next_message polls exitcodes, so a child that dies before
            # its ready marker (unpicklable worker on spawn platforms,
            # startup OOM) raises here instead of hanging the parent
            kind, shard = self.next_message()
            if kind != "ready":  # pragma: no cover - defensive
                raise RuntimeError(
                    f"shard {shard} sent {kind!r} before becoming ready"
                )

    def _put(self, shard: int, item, poll_s: float = 1.0) -> None:
        """Bounded put that notices a dead child instead of blocking
        forever on a queue nobody will ever drain."""
        while True:
            try:
                self.in_queues[shard].put(item, timeout=poll_s)
                return
            except Full:
                code = self.processes[shard].exitcode
                if code is not None:
                    raise RuntimeError(
                        f"shard {shard} process exited (code {code}) "
                        "with work still pending"
                    )

    def submit(self, shard: int, work: BlockWork) -> None:
        self._put(shard, work)

    def finish(self, shard: int) -> None:
        self._put(shard, None)

    def next_message(self, poll_s: float = 1.0):
        """Blocking read of the shared result queue (call off-loop).

        Polls so an abnormally dead child (OOM-kill, segfault — one
        that could not even send its ``error`` message) surfaces as an
        exception instead of a parent that waits forever.
        """
        while True:
            try:
                return self.out_queue.get(timeout=poll_s)
            except Empty:
                for shard, process in enumerate(self.processes):
                    code = process.exitcode
                    if code not in (None, 0):
                        raise RuntimeError(
                            f"shard {shard} process died with exit code {code}"
                        )

    def join(self, timeout: float = 5.0) -> None:
        for process in self.processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def __len__(self) -> int:
        return len(self.processes)
