"""Service observability: counters, gauges, and latency quantiles.

A :class:`ServiceMetrics` registry is threaded through every stage of
the streaming pipeline.  Since the telemetry layer landed it is a thin
view over a private :class:`~repro.telemetry.MetricRegistry` — the
same instruments the Prometheus endpoint scrapes — while keeping the
original accessors (``inc`` / ``set_gauge`` / ``latency`` /
``to_dict``) every call site and report already uses.

:class:`LatencyStat` is the service-facing name for the registry's
reservoir-sampled :class:`~repro.telemetry.Histogram`: exact count /
sum / min / max over every observation, a bounded uniform reservoir
(default 4096 samples) for nearest-rank quantiles, so week-long
``serve`` runs hold constant memory instead of one float per block.
"""

from __future__ import annotations

from ..telemetry.metrics import DEFAULT_RESERVOIR, Histogram, MetricRegistry

__all__ = ["LatencyStat", "ServiceMetrics"]


class LatencyStat(Histogram):
    """Streaming latency accumulator with on-demand quantiles.

    A name-only construction shim over the telemetry histogram (the
    service never labels its latency stats).  Memory is bounded by
    reservoir sampling: aggregates stay exact for every observation,
    quantiles come from a uniform ``max_samples``-sized reservoir.
    """

    __slots__ = ()

    def __init__(self, name: str, max_samples: int = DEFAULT_RESERVOIR):
        super().__init__(name, max_samples=max_samples)


class ServiceMetrics:
    """Named counters + gauges + latency stats for one service run.

    Each instance owns a private registry, so per-run windows stay
    isolated from the lifetime totals until :meth:`merge` folds them
    in.  The registry itself is exposed (:attr:`registry`) for the
    exporters; labeled instruments created through it render in
    :meth:`to_dict` with ``name{label=value}`` keys.
    """

    def __init__(self, registry: MetricRegistry | None = None):
        self.registry = registry if registry is not None else MetricRegistry()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        return self.registry.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe_gauge_max(self, name: str, value: float) -> None:
        """Track the high-water mark of a sampled quantity (queue depth)."""
        self.registry.gauge(name).max(value)

    def latency(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def merge(self, other: "ServiceMetrics") -> None:
        """Fold another registry into this one (lifetime accumulation:
        the service merges each run's window into its cumulative
        registry).  Counters add, ``*_max`` gauges keep the high-water
        mark, other gauges take the newer value, latencies merge
        reservoirs."""
        self.registry.merge(other.registry)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        """Unlabeled counters as a plain name → value dict."""
        return self.registry.counters()

    @property
    def gauges(self) -> dict[str, float]:
        return self.registry.gauges()

    def to_dict(self) -> dict:
        snap = self.registry.snapshot()
        return {
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "latencies": snap["histograms"],
        }

    def __repr__(self) -> str:
        latencies = self.registry.histograms()
        return (
            f"ServiceMetrics({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(latencies)} latency stats)"
        )
