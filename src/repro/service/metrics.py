"""Service observability: counters, gauges, and latency quantiles.

A :class:`ServiceMetrics` registry is threaded through every stage of
the streaming pipeline.  It is deliberately dependency-free (no
prometheus client in the image) but keeps the same shape — named
counters, gauges, and histogram-like latency stats — so the report it
renders (`to_dict`) can be scraped, uploaded as a CI artifact, or
printed as a table.

Latency stats keep a bounded reservoir of samples (the first
``max_samples`` observations; overflow keeps counting and tracking
min/max/sum but stops storing).  Quantiles are computed on demand with
the nearest-rank method — exact for the sample sizes the service and
its benchmark produce.
"""

from __future__ import annotations

import math

__all__ = ["LatencyStat", "ServiceMetrics"]


class LatencyStat:
    """Streaming latency accumulator with on-demand quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "max_samples")

    def __init__(self, name: str, max_samples: int = 100_000):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._samples: list[float] = []
        self.max_samples = max_samples

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency cannot be negative, got {seconds}")
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)

    @property
    def mean(self) -> float:
        """Mean latency; ``nan`` before any observation — an empty
        stat has no latency, and 0.0 would read as "instant" in
        reports and dashboards."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the stored samples (0 <= q <= 1);
        ``nan`` when no samples have been observed (consistent with
        :attr:`mean` and the ``to_dict`` fields — never a raise, never
        a fake zero)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def merge(self, other: "LatencyStat") -> None:
        """Absorb another stat's observations (same units assumed)."""
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        room = self.max_samples - len(self._samples)
        if room > 0:
            self._samples.extend(other._samples[:room])

    def to_dict(self) -> dict:
        empty = self.count == 0
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.quantile(0.50) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "min_ms": (math.nan if empty else self.min) * 1e3,
            "max_ms": (math.nan if empty else self.max) * 1e3,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyStat({self.name}: n={self.count}, "
            f"p50={self.quantile(0.5) * 1e3:.3f}ms, "
            f"p99={self.quantile(0.99) * 1e3:.3f}ms)"
        )


class ServiceMetrics:
    """Named counters + gauges + latency stats for one service run."""

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self._latencies: dict[str, LatencyStat] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        value = self.counters.get(name, 0) + amount
        self.counters[name] = value
        return value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe_gauge_max(self, name: str, value: float) -> None:
        """Track the high-water mark of a sampled quantity (queue depth)."""
        if value > self.gauges.get(name, 0.0):
            self.gauges[name] = value

    def latency(self, name: str) -> LatencyStat:
        stat = self._latencies.get(name)
        if stat is None:
            stat = self._latencies[name] = LatencyStat(name)
        return stat

    def merge(self, other: "ServiceMetrics") -> None:
        """Fold another registry into this one (lifetime accumulation:
        the service merges each run's window into its cumulative
        registry).  Counters add, ``*_max`` gauges keep the high-water
        mark, other gauges take the newer value, latencies absorb the
        window's samples."""
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, value in other.gauges.items():
            if name.endswith("_max"):
                self.observe_gauge_max(name, value)
            else:
                self.gauges[name] = value
        for name, stat in other._latencies.items():
            self.latency(name).merge(stat)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "latencies": {
                name: stat.to_dict()
                for name, stat in sorted(self._latencies.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"ServiceMetrics({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self._latencies)} latency stats)"
        )
