"""The streaming opportunity service: ingest → shards → live book.

:class:`OpportunityService` wires the pieces of this package into one
asyncio pipeline::

    source ──► ingest/route ──► shard queues ──► shard workers ──► publish ──► OpportunityBook
               (block batch,     (bounded,        (inline tasks                 (top-K, seq'd
                backpressure      per shard)       or processes)                 subscriptions)
                or drop)

* **Ingest** groups the event stream into blocks (AMM state advances
  per block) and routes each block's events to exactly the shards
  whose loops they touch.  Queues are bounded: the default policy
  ``"block"`` applies backpressure to the source (lossless — required
  for parity with batch detection); ``"drop"`` sheds whole blocks
  atomically across shards when any target queue is full (lossy but
  cross-shard consistent — the overload mode the load generator
  exercises), counting every dropped event.
* **Shards** run the replay layer's dirty-set invalidation over their
  slice of the loop universe (see :mod:`repro.service.worker`), either
  inline on the event loop or in long-lived child processes
  (``backend="process"``) for multi-core throughput.
* **Publish** applies each shard's updates to the
  :class:`~repro.service.book.OpportunityBook` as a sequenced delta
  and records per-stage latencies into :class:`ServiceMetrics`.

On a quiesced stream (source exhausted, queues drained) the book is
bit-identical to batch-evaluating every candidate loop against the
final market state — the integration and property tests assert this
for both backends and any shard count.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from typing import AsyncIterator

from ..amm.events import (
    BurnEvent,
    MarketEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from ..data.snapshot import MarketSnapshot
from ..engine import EvaluationEngine
from ..market import SharedMarketArrays, batch_kind, pool_handles
from ..replay.apply import build_loop_indices
from ..strategies.base import Strategy
from ..strategies.maxmax import MaxMaxStrategy
from ..telemetry import trace
from ..telemetry.memory import peak_rss_bytes
from ..telemetry.metrics import MetricRegistry, get_registry
from .book import BookSnapshot, Opportunity, OpportunityBook
from .metrics import ServiceMetrics
from .sharding import ShardPlan
from .worker import (
    BlockWork,
    ProcessShardPool,
    SharedBlockWork,
    SharedShardWorker,
    ShardUpdate,
    ShardWorker,
)

__all__ = ["OpportunityService", "ServiceReport", "batch_detect_ranking"]

logger = logging.getLogger("repro.service.pipeline")

#: Seconds between samples of the per-shard queue-depth and
#: event-loop-lag gauges while a run is live.
GAUGE_SAMPLE_INTERVAL_S = 0.05


def batch_detect_ranking(
    market: MarketSnapshot,
    events,
    length: int = 3,
    strategy: Strategy | None = None,
) -> list[tuple[float, str]]:
    """The quiesced-service oracle: apply ``events`` to a copy of
    ``market``, batch-evaluate every candidate loop against the final
    state, and rank the profitable ones in the book's total order.

    A drained :class:`OpportunityService` must produce exactly this
    list — ``[(o.profit_usd, o.loop_id) for o in report.book.entries]``
    — bit for bit.  The integration/property tests, the throughput
    benchmark, and the example all assert against this one definition.
    """
    from ..engine.core import LoopUniverse
    from ..replay.apply import apply_event
    from .book import opportunity_sort_key

    strategy = strategy if strategy is not None else MaxMaxStrategy()
    copy = market.copy()
    prices = copy.prices
    dirty_pools: set = set()
    dirty_tokens: set = set()
    for event in events:
        prices = apply_event(
            copy.registry, prices, event, dirty_pools, dirty_tokens
        )
    scored = [
        (result.monetized_profit, loop.canonical_id)
        for loop in LoopUniverse(copy.registry, length).candidates
        for result in [strategy.evaluate(loop, prices)]
        if result.monetized_profit > 0.0
    ]
    return sorted(scored, key=lambda pair: opportunity_sort_key(*pair))

_BACKENDS = ("inline", "process")
_POLICIES = ("block", "drop")


@dataclass(frozen=True)
class ServiceReport:
    """Summary of one service run (quiesced stream)."""

    duration_s: float
    events_ingested: int
    events_dropped: int
    blocks_ingested: int
    blocks_dropped: int
    evaluations: int
    cache_hits: int
    cache_misses: int
    n_shards: int
    backend: str
    loops_per_shard: tuple[int, ...]
    book: BookSnapshot
    metrics: dict
    loops_pruned: int = 0
    #: Memory accounting: per-shard market-state bytes, the shared
    #: segment (if any), and RSS high-water marks (see
    #: ``OpportunityService._memory_report``).
    memory: dict = field(default_factory=dict)

    @property
    def events_per_s(self) -> float:
        applied = self.events_ingested - self.events_dropped
        return applied / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def top(self, k: int) -> tuple[Opportunity, ...]:
        return self.book.top(k)

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "events_ingested": self.events_ingested,
            "events_dropped": self.events_dropped,
            "blocks_ingested": self.blocks_ingested,
            "blocks_dropped": self.blocks_dropped,
            "events_per_s": self.events_per_s,
            "evaluations": self.evaluations,
            "loops_pruned": self.loops_pruned,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "n_shards": self.n_shards,
            "backend": self.backend,
            "loops_per_shard": list(self.loops_per_shard),
            "book_seq": self.book.seq,
            "profitable_loops": len(self.book.entries),
            "memory": self.memory,
            "metrics": self.metrics,
        }


class OpportunityService:
    """Sharded streaming arbitrage detection over a live event stream.

    Parameters
    ----------
    market:
        Starting snapshot; every shard works on a private copy.
    n_shards:
        Number of shard workers; pools (and hence loops) are
        partitioned deterministically across them.
    length:
        Candidate loop length for the universe (default 3).
    strategy:
        The scoring strategy for the book; default MaxMax.
    backend:
        ``"inline"`` (shards as asyncio tasks, default) or
        ``"process"`` (one child process per shard — multi-core).
    queue_size:
        Bound of every inter-stage queue.
    ingest_policy:
        ``"block"`` (backpressure, lossless) or ``"drop"`` (shed whole
        blocks under overload, counted).
    metrics:
        A :class:`ServiceMetrics` registry; fresh one by default.
    prune_top_k:
        When set, enable bound-based re-quote pruning: each dispatched
        block carries the book's K-th profit (computed excluding every
        loop with results still in flight) as a threshold, and shards
        skip the exact quote for dirty loops whose profit upper bound
        *and* currently published profit both sit below it.  The
        quiesced top-``prune_top_k`` book is identical to the unpruned
        run; entries below rank K may retain stale (provably
        sub-threshold) values.  ``None`` (default) disables pruning —
        the full-book parity mode.
    shared:
        ``True`` backs the market with one shared-memory segment
        (:class:`~repro.market.SharedMarketArrays`) that every shard
        maps instead of copying: ingest becomes the single seqlock
        writer, shards hold only reserve-less pool handles (kernels
        read the mapped columns directly), and process-backend work
        items shrink to (block, epoch, dirty rows).  Requires a
        kernel-batchable strategy (the paper's three, on any solver
        method).  On a quiesced stream the book parity guarantee is
        unchanged; mid-stream, shards may quote *fresher* committed
        state than the block that dirtied a loop (never torn state —
        the seqlock retries those reads), so per-run pruning counters
        can differ from the private-copy model while the quiesced
        top-K cannot.  Default ``False`` (private copies — the
        oracle); the ``serve``/``loadgen`` CLI auto-enables it for the
        process backend.
    start_method:
        Multiprocessing start method for the process backend
        (``"fork"``, ``"spawn"``, ``"forkserver"``; ``None`` =
        platform default).
    """

    def __init__(
        self,
        market: MarketSnapshot,
        *,
        n_shards: int = 1,
        length: int = 3,
        strategy: Strategy | None = None,
        backend: str = "inline",
        queue_size: int = 64,
        ingest_policy: str = "block",
        metrics: ServiceMetrics | None = None,
        engine: EvaluationEngine | None = None,
        prune_top_k: int | None = None,
        shared: bool = False,
        start_method: str | None = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if ingest_policy not in _POLICIES:
            raise ValueError(
                f"ingest_policy must be one of {_POLICIES}, got {ingest_policy!r}"
            )
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if prune_top_k is not None and prune_top_k < 1:
            raise ValueError(f"prune_top_k must be >= 1, got {prune_top_k}")
        self.backend = backend
        self.prune_top_k = prune_top_k
        self.ingest_policy = ingest_policy
        self.queue_size = queue_size
        self.strategy = strategy if strategy is not None else MaxMaxStrategy()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.engine = engine if engine is not None else EvaluationEngine()
        self.shared = bool(shared)
        self.start_method = start_method
        if self.shared and batch_kind(self.strategy) is None:
            raise ValueError(
                "shared=True requires a kernel-batchable strategy "
                "(Traditional/MaxPrice/MaxMax on closed_form, bisection, "
                f"or golden); got {type(self.strategy).__name__!r}"
            )

        universe = self.engine.loop_universe(market.registry, length)
        self.plan = ShardPlan(
            [pool.pool_id for pool in market.registry],
            universe.candidates,
            n_shards,
        )
        self._shared_arrays: SharedMarketArrays | None = None
        if self.shared:
            # one segment for the whole market; each shard gets its own
            # zero-copy view and reserve-less handles for loop
            # topology — no registry copies anywhere
            self._shared_arrays = SharedMarketArrays(market.registry)
            handles = pool_handles(market.registry)
            self.workers: list = [
                SharedShardWorker(
                    shard,
                    self._shared_arrays.view(),
                    [universe.candidates[i] for i in self.plan.shard_loops[shard]],
                    self.strategy,
                    handles,
                    market.prices,
                )
                for shard in range(n_shards)
            ]
        else:
            self.workers = [
                ShardWorker(
                    shard,
                    market,
                    [universe.candidates[i] for i in self.plan.shard_loops[shard]],
                    self.strategy,
                )
                for shard in range(n_shards)
            ]
        self.book = OpportunityBook()
        for worker in self.workers:
            self.book.apply(-1, worker.shard_id, worker.initial_entries())
        self._process_spent = False
        # the in-flight run's metric window, exposed so a live scrape
        # (--metrics-port) sees this run's numbers before they are
        # merged into the cumulative registry at quiescence
        self._window: ServiceMetrics | None = None
        # global inverted indices (canonical loop ids, not positions):
        # the ingest stage uses them to name every loop a block dirties,
        # so the threshold it feeds back can exclude in-flight loops
        self._pool_loop_ids: dict[str, tuple[str, ...]] = {}
        self._token_loop_ids: dict = {}
        if prune_top_k is not None:
            pool_loops, token_loops = build_loop_indices(universe.candidates)
            ids = [loop.canonical_id for loop in universe.candidates]
            self._pool_loop_ids = {
                pool_id: tuple(ids[i] for i in positions)
                for pool_id, positions in pool_loops.items()
            }
            self._token_loop_ids = {
                token: tuple(ids[i] for i in positions)
                for token, positions in token_loops.items()
            }

    def _dirty_loop_ids(self, events) -> set[str]:
        """Canonical ids of every loop the events dirty (pool events
        dirty their pool's loops, price ticks their token's loops —
        mirroring :func:`repro.replay.apply.apply_event`)."""
        ids: set[str] = set()
        for event in events:
            pool_id = getattr(event, "pool_id", None)
            if pool_id is not None:
                ids.update(self._pool_loop_ids.get(pool_id, ()))
                continue
            token = getattr(event, "token", None)
            if token is not None:
                ids.update(self._token_loop_ids.get(token, ()))
        return ids

    def _write_shared_block(self, events, block: int) -> int:
        """Apply one (non-shed) block's routed pool events to the
        shared segment under the seqlock; return the committed epoch.

        The single-writer half of the shared-memory protocol: the
        epoch goes odd, the events apply through the same
        :meth:`~repro.market.MarketArrays.apply_events` arithmetic the
        columnar parity suite pins against the object path, and the
        epoch goes even.  Only events that route to at least one shard
        are applied — identical semantics to the private model, where
        a pool no loop crosses never has its events applied anywhere.
        """
        if self._shared_arrays is None:
            return 0
        writes = [
            event
            for event in events
            if isinstance(event, (SwapEvent, MintEvent, BurnEvent))
            and self.plan.shards_for_pool(event.pool_id)
        ]
        if writes:
            with trace.span("ingest.shm_write", block=block, events=len(writes)):
                with self._shared_arrays.write_block():
                    self._shared_arrays.apply_events(writes)
        return self._shared_arrays.epoch

    def _shared_work(
        self, block: int, epoch: int, events, t_ingest: float, threshold
    ) -> SharedBlockWork:
        """One shard's zero-copy work item: dirty segment rows (ordered,
        deduplicated) plus the block's price ticks."""
        pool_index = self._shared_arrays.pool_index
        rows: list[int] = []
        seen: set[int] = set()
        ticks: list[tuple] = []
        for event in events:
            if isinstance(event, PriceTickEvent):
                ticks.append((event.token, event.price))
                continue
            row = pool_index[event.pool_id]
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return SharedBlockWork(
            block=block,
            epoch=epoch,
            rows=tuple(rows),
            ticks=tuple(ticks),
            t_ingest=t_ingest,
            t_dispatch=time.perf_counter(),
            threshold=threshold,
        )

    def _memory_report(self, window: ServiceMetrics) -> dict:
        """The report's ``memory`` block: accounted market-state bytes
        per shard (what the shared-vs-private benchmark gates on) plus
        RSS high-water marks (observational — RSS includes the whole
        interpreter)."""
        shard_bytes = [worker.market_state_bytes() for worker in self.workers]
        segment = self._shared_arrays
        return {
            "shared": self.shared,
            "segment_name": segment.segment_name if segment is not None else None,
            "segment_nbytes": segment.segment_nbytes if segment is not None else 0,
            "shard_market_bytes": shard_bytes,
            "aggregate_shard_market_bytes": sum(shard_bytes),
            "total_market_bytes": sum(shard_bytes)
            + (segment.segment_nbytes if segment is not None else 0),
            "shard_rss_bytes_max": {
                name: int(value)
                for name, value in window.gauges.items()
                if name.endswith("rss_bytes_max")
            },
            "parent_rss_bytes_max": peak_rss_bytes(),
        }

    def close(self) -> None:
        """Release shared-memory state: detach every worker view and
        unlink the segment (idempotent; a no-op for private-copy
        services).  The process backend calls this automatically from
        the pool's cleanup path; inline shared services should close
        when done — though a leaked segment is still swept by the
        module's ``atexit`` guard and, ultimately, the stdlib resource
        tracker."""
        if self._shared_arrays is None:
            return
        for worker in self.workers:
            worker.close()
        self._shared_arrays.unlink()

    @property
    def n_shards(self) -> int:
        return len(self.workers)

    @property
    def total_loops(self) -> int:
        return sum(len(worker.loops) for worker in self.workers)

    def __repr__(self) -> str:
        return (
            f"OpportunityService({self.n_shards} shards, {self.backend}, "
            f"{self.total_loops} loops, book seq {self.book.seq})"
        )

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------

    async def _ingest(
        self,
        source: AsyncIterator[MarketEvent],
        shard_queues: list[asyncio.Queue],
        metrics: ServiceMetrics,
        inflight: dict | None = None,
        pending: dict | None = None,
    ) -> None:
        """Group the stream into blocks, route, enqueue (or shed)."""
        current_block: int | None = None
        buffer: list[MarketEvent] = []

        async def flush() -> None:
            if current_block is None:
                return
            t_ingest = time.perf_counter()
            metrics.inc("blocks_ingested")
            with trace.span(
                "ingest.block", block=current_block, events=len(buffer)
            ) as sp:
                await route_and_dispatch(t_ingest, sp)

        async def route_and_dispatch(t_ingest: float, sp) -> None:
            routed = self.plan.route_block(buffer)
            if not routed:
                return  # block touched nothing any shard evaluates
            if self.ingest_policy == "drop" and any(
                shard_queues[shard].full() for shard in routed
            ):
                # shed the whole block atomically: every shard skips the
                # same events, so cross-shard state stays consistent
                metrics.inc("blocks_dropped")
                metrics.inc("events_dropped", len(buffer))
                sp.set(shed=True)
                logger.warning(
                    "shed block %d (%d events): shard queue full under "
                    "drop policy",
                    current_block,
                    len(buffer),
                )
                return
            threshold = None
            if inflight is not None and pending is not None:
                # prune threshold: the book's K-th profit over entries
                # whose value is final — every loop this block (or any
                # block still in the pipeline) dirties is excluded, so
                # a falling entry can never prop up the threshold
                dirty_ids = self._dirty_loop_ids(buffer)
                threshold = self.book.kth_profit(
                    self.prune_top_k, exclude=dirty_ids | set(inflight)
                )
                for loop_id in dirty_ids:
                    inflight[loop_id] = inflight.get(loop_id, 0) + 1
                entry = pending.setdefault(current_block, [0, []])
                entry[0] += len(routed)
                entry[1].append(dirty_ids)
            epoch = self._write_shared_block(buffer, current_block)
            for shard, events in routed.items():
                queue = shard_queues[shard]
                metrics.observe_gauge_max("shard_queue_depth_max", queue.qsize())
                if self.shared:
                    work: BlockWork | SharedBlockWork = self._shared_work(
                        current_block, epoch, events, t_ingest, threshold
                    )
                else:
                    work = BlockWork(
                        block=current_block,
                        events=tuple(events),
                        t_ingest=t_ingest,
                        t_dispatch=time.perf_counter(),
                        threshold=threshold,
                    )
                t0 = time.perf_counter()
                await queue.put(work)
                metrics.latency("ingest_backpressure").observe(
                    time.perf_counter() - t0
                )

        async for event in source:
            metrics.inc("events_ingested")
            if current_block is None:
                current_block = event.block
            elif event.block != current_block:
                await flush()
                buffer = []
                current_block = event.block
            buffer.append(event)
        await flush()
        for queue in shard_queues:
            await queue.put(None)  # per-shard end-of-stream sentinel

    async def _inline_shard(
        self,
        worker: ShardWorker,
        in_queue: asyncio.Queue,
        out_queue: asyncio.Queue,
    ) -> None:
        """Inline backend: evaluate on the event loop, one block a time."""
        while True:
            work = await in_queue.get()
            if work is None:
                # inline shards record spans straight into the process
                # tracer, so the done message ships an empty span list
                await out_queue.put(
                    ("done", (worker.shard_id, worker.stats_snapshot(), []))
                )
                return
            update = worker.process_block(work)
            await out_queue.put(("update", update))
            # cooperative yield so ingest/publish interleave between blocks
            await asyncio.sleep(0)

    async def _process_feeder(
        self, shard: int, in_queue: asyncio.Queue, pool: ProcessShardPool
    ) -> None:
        """Process backend: forward the bounded asyncio queue into the
        shard's (equally bounded) IPC queue off-loop."""
        loop = asyncio.get_running_loop()
        while True:
            work = await in_queue.get()
            if work is None:
                await loop.run_in_executor(None, pool.finish, shard)
                return
            await loop.run_in_executor(None, pool.submit, shard, work)

    async def _process_collector(
        self, pool: ProcessShardPool, out_queue: asyncio.Queue
    ) -> None:
        """Forward child results into the publish stage until every
        shard has acknowledged its sentinel."""
        loop = asyncio.get_running_loop()
        done = 0
        while done < len(pool):
            kind, payload = await loop.run_in_executor(None, pool.next_message)
            if kind == "done":
                done += 1
                await out_queue.put(("done", payload))
            elif kind == "error":
                shard, tb = payload
                raise RuntimeError(f"shard {shard} worker failed:\n{tb}")
            else:
                await out_queue.put((kind, payload))

    async def _publish(
        self,
        out_queue: asyncio.Queue,
        metrics: ServiceMetrics,
        inflight: dict | None = None,
        pending: dict | None = None,
    ) -> None:
        """Apply shard updates to the book and record latencies."""
        remaining = self.n_shards
        while remaining:
            kind, payload = await out_queue.get()
            if kind == "done":
                shard_id, stats, shard_spans = payload
                # per-shard evaluator routing/pruning counters (lifetime
                # totals — the worker's stats are never reset) surfaced
                # as gauges so reports show where the quotes went
                for name, value in stats.items():
                    metrics.set_gauge(f"shard{shard_id}_{name}", float(value))
                if shard_spans:
                    # spans recorded inside a shard child process: merge
                    # them into the parent tracer on the shard's display
                    # lane (tid 0 is the parent pipeline itself)
                    trace.ingest(shard_spans, tid=shard_id + 1)
                remaining -= 1
                continue
            update: ShardUpdate = payload
            t_publish = time.perf_counter()
            with trace.span(
                "publish.book",
                shard=update.shard,
                block=update.block,
                entries=len(update.entries),
            ):
                self.book.apply(update.block, update.shard, update.entries)
            if pending is not None and inflight is not None:
                entry = pending.get(update.block)
                if entry is not None:
                    entry[0] -= 1
                    if entry[0] == 0:
                        # every shard has published this block: its dirty
                        # loops' book values are final again
                        for dirty_ids in entry[1]:
                            for loop_id in dirty_ids:
                                count = inflight.get(loop_id, 0) - 1
                                if count > 0:
                                    inflight[loop_id] = count
                                else:
                                    inflight.pop(loop_id, None)
                        del pending[update.block]
            metrics.inc("updates_published")
            metrics.inc("evaluations", update.evaluated)
            metrics.inc("loops_pruned", update.pruned)
            metrics.inc("cache_hits", update.cache_hits)
            metrics.inc("cache_misses", update.cache_misses)
            if self.shared:
                # seqlock retry accounting (zero-valued incs still
                # materialize the counters, so shared-run reports and
                # the bench artifact always carry them)
                metrics.inc("shm_epoch_waits", update.shm_epoch_waits)
                metrics.inc("shm_torn_retries", update.shm_torn_retries)
            metrics.latency("shard_eval").observe(update.eval_s)
            metrics.latency("dispatch_wait").observe(
                max(0.0, update.t_dispatch - update.t_ingest)
            )
            metrics.latency("end_to_end").observe(
                max(0.0, t_publish - update.t_ingest)
            )
        self.book.close()

    async def _sample_gauges(
        self,
        shard_queues: list[asyncio.Queue],
        metrics: ServiceMetrics,
        interval_s: float = GAUGE_SAMPLE_INTERVAL_S,
    ) -> None:
        """Timer-driven gauges: per-shard queue depth and event-loop
        lag (how late the timer itself fires — the scheduling delay
        every coroutine on this loop is experiencing).  Runs until
        cancelled at quiescence; the ``*_max`` variants survive the
        run-end merge as high-water marks."""
        registry = metrics.registry
        loop = asyncio.get_running_loop()
        while True:
            t0 = loop.time()
            await asyncio.sleep(interval_s)
            lag_ms = max(0.0, loop.time() - t0 - interval_s) * 1e3
            registry.gauge("event_loop_lag_ms").set(lag_ms)
            registry.gauge("event_loop_lag_ms_max").max(lag_ms)
            for shard, queue in enumerate(shard_queues):
                depth = queue.qsize()
                registry.gauge("shard_queue_depth", shard=shard).set(depth)
                metrics.observe_gauge_max("shard_queue_depth_max", depth)

    def scrape_registry(self) -> MetricRegistry:
        """A merged snapshot for live exporters (``--metrics-port``):
        the process-wide registry (engine/evaluator publishes), the
        service's cumulative run history, and — while a run is in
        flight — its live window.  Inline-backend evaluator routing
        counters are synced in at scrape time; process-backend shards
        report theirs in their done message instead."""
        merged = MetricRegistry()
        merged.merge(get_registry())
        merged.merge(self.metrics.registry)
        window = self._window
        if window is not None:
            merged.merge(window.registry)
        if self.backend == "inline":
            for worker in self.workers:
                worker.evaluator_stats.publish(merged, shard=worker.shard_id)
        return merged

    @staticmethod
    async def _gather(*coros) -> None:
        """``asyncio.gather`` that actually tears the pipeline down on
        failure: a raising stage cancels its siblings instead of
        leaving them blocked on queues forever."""
        tasks = [asyncio.ensure_future(coro) for coro in coros]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    async def run(self, source: AsyncIterator[MarketEvent]) -> ServiceReport:
        """Consume ``source`` to exhaustion and return the quiesced report.

        The service can be run repeatedly with consecutive sources
        (shard state carries over, like a driver replaying several
        logs); each call drains fully before returning.
        """
        shard_queues = [
            asyncio.Queue(maxsize=self.queue_size) for _ in range(self.n_shards)
        ]
        out_queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_size)
        # each run records into a fresh window, merged into the
        # cumulative self.metrics at the end — so a report's counters
        # AND latency quantiles are per-run, never mixed across runs
        window = ServiceMetrics()
        self._window = window
        # pruning bookkeeping shared by ingest (register + exclude) and
        # publish (release): refcounts of loops with results in flight,
        # and per-block outstanding shard-update counts
        inflight: dict | None = {} if self.prune_top_k is not None else None
        pending: dict | None = {} if self.prune_top_k is not None else None
        # a previous run closed the delta stream at quiescence; anyone
        # who subscribed since must see this run's deltas, not a
        # premature end-of-stream
        self.book.reopen()
        sampler = asyncio.ensure_future(
            self._sample_gauges(shard_queues, window)
        )
        t_start = time.perf_counter()
        try:
            if self.backend == "process":
                if self._process_spent:
                    raise RuntimeError(
                        "a process-backed service is single-shot: the shard "
                        "processes (and their advanced state) are gone after "
                        "run(); build a new service for another stream"
                    )
                self._process_spent = True
                pool = ProcessShardPool(
                    self.workers,
                    maxsize=self.queue_size,
                    start_method=self.start_method,
                    # a process-backed service is single-shot, so the
                    # segment can be unlinked as soon as the pool winds
                    # down — on *every* exit path, including errors and
                    # KeyboardInterrupt, which is what keeps /dev/shm
                    # clean after killed runs
                    cleanup=self.close if self.shared else None,
                )
                pool.start()
                try:
                    await self._gather(
                        self._ingest(
                            source, shard_queues, window, inflight, pending
                        ),
                        *(
                            self._process_feeder(shard, shard_queues[shard], pool)
                            for shard in range(self.n_shards)
                        ),
                        self._process_collector(pool, out_queue),
                        self._publish(out_queue, window, inflight, pending),
                    )
                finally:
                    pool.close()
            else:
                await self._gather(
                    self._ingest(source, shard_queues, window, inflight, pending),
                    *(
                        self._inline_shard(
                            self.workers[shard], shard_queues[shard], out_queue
                        )
                        for shard in range(self.n_shards)
                    ),
                    self._publish(out_queue, window, inflight, pending),
                )
        finally:
            sampler.cancel()
            await asyncio.gather(sampler, return_exceptions=True)
        duration = time.perf_counter() - t_start

        counters = window.counters
        window.set_gauge("events_per_s", (
            (counters.get("events_ingested", 0) - counters.get("events_dropped", 0))
            / duration
            if duration > 0 else 0.0
        ))
        self.metrics.merge(window)
        self._window = None  # merged above: scrapes read self.metrics now
        return ServiceReport(
            duration_s=duration,
            events_ingested=counters.get("events_ingested", 0),
            events_dropped=counters.get("events_dropped", 0),
            blocks_ingested=counters.get("blocks_ingested", 0),
            blocks_dropped=counters.get("blocks_dropped", 0),
            evaluations=counters.get("evaluations", 0),
            loops_pruned=counters.get("loops_pruned", 0),
            cache_hits=counters.get("cache_hits", 0),
            cache_misses=counters.get("cache_misses", 0),
            n_shards=self.n_shards,
            backend=self.backend,
            loops_per_shard=self.plan.loops_per_shard(),
            book=self.book.snapshot(),
            metrics=window.to_dict(),
            memory=self._memory_report(window),
        )
