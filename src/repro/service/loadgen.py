"""Load-generation harness for the opportunity service.

Builds a seeded synthetic market and event stream, offers it to an
:class:`~repro.service.OpportunityService` at a target rate (or as
fast as the pipeline will take it), and reduces the run to a flat
:class:`LoadReport` — sustained events/sec, end-to-end latency
quantiles, drop and backpressure accounting, cache hit-rate.  The
``repro-arb loadgen`` command and ``benchmarks/
bench_service_throughput.py`` are thin wrappers over this module, so
CLI runs, CI smoke runs, and the full benchmark ladder all measure
exactly the same code path.
"""

from __future__ import annotations

import asyncio
import csv
from dataclasses import dataclass
from pathlib import Path

from ..data.snapshot import MarketSnapshot
from ..data.synthetic import SyntheticMarketGenerator
from ..replay.generator import generate_event_stream
from ..replay.log import MarketEventLog
from .pipeline import OpportunityService, ServiceReport
from .sources import log_source, paced

__all__ = ["LoadReport", "make_workload", "run_load"]

#: Flat column order for CSV reports (one row per run).
_CSV_FIELDS = [
    "n_pools", "n_tokens", "n_blocks", "n_shards", "backend", "rate",
    "events_ingested", "events_dropped", "blocks_dropped", "duration_s",
    "events_per_s", "evaluations", "loops_pruned", "cache_hit_rate",
    "e2e_p50_ms", "e2e_p95_ms", "e2e_p99_ms", "book_seq", "profitable_loops",
]


@dataclass(frozen=True)
class LoadReport:
    """One load-generation run, flattened for tables and CSV."""

    n_pools: int
    n_tokens: int
    n_blocks: int
    rate: float  # offered events/sec; 0 = unthrottled
    service: ServiceReport

    def to_row(self) -> dict:
        s = self.service
        e2e = s.metrics["latencies"].get("end_to_end", {})
        return {
            "n_pools": self.n_pools,
            "n_tokens": self.n_tokens,
            "n_blocks": self.n_blocks,
            "n_shards": s.n_shards,
            "backend": s.backend,
            "rate": self.rate,
            "events_ingested": s.events_ingested,
            "events_dropped": s.events_dropped,
            "blocks_dropped": s.blocks_dropped,
            "duration_s": s.duration_s,
            "events_per_s": s.events_per_s,
            "evaluations": s.evaluations,
            "loops_pruned": s.loops_pruned,
            "cache_hit_rate": s.cache_hit_rate,
            "e2e_p50_ms": e2e.get("p50_ms", 0.0),
            "e2e_p95_ms": e2e.get("p95_ms", 0.0),
            "e2e_p99_ms": e2e.get("p99_ms", 0.0),
            "book_seq": s.book.seq,
            "profitable_loops": len(s.book.entries),
        }

    def to_dict(self) -> dict:
        return {
            "n_pools": self.n_pools,
            "n_tokens": self.n_tokens,
            "n_blocks": self.n_blocks,
            "rate": self.rate,
            "service": self.service.to_dict(),
        }


def save_rows_csv(reports: list[LoadReport], path: str | Path) -> Path:
    """One CSV row per run (the golden-file-friendly shape)."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for report in reports:
            writer.writerow(report.to_row())
    return path


def make_workload(
    n_tokens: int,
    n_pools: int,
    n_blocks: int,
    events_per_block: int,
    seed: int,
    *,
    pools_per_block: int | None = None,
    price_ticks_per_block: int = 1,
    stableswap_fraction: float = 0.0,
) -> tuple[MarketSnapshot, MarketEventLog]:
    """Seeded synthetic market + stream (the loadgen's event supply)."""
    market = SyntheticMarketGenerator(
        n_tokens=n_tokens,
        n_pools=n_pools,
        seed=seed,
        price_noise=0.02,
        stableswap_fraction=stableswap_fraction,
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=seed,
        pools_per_block=pools_per_block,
        price_ticks_per_block=price_ticks_per_block,
    )
    return market, log


def run_load(
    market: MarketSnapshot,
    log: MarketEventLog,
    *,
    rate: float = 0.0,
    n_shards: int = 1,
    length: int = 3,
    backend: str = "inline",
    ingest_policy: str = "block",
    queue_size: int = 64,
    n_tokens: int | None = None,
    n_blocks: int | None = None,
    prune_top_k: int | None = None,
    shared: bool = False,
    start_method: str | None = None,
) -> LoadReport:
    """Drive one service run over ``log`` and flatten the result.

    ``rate`` throttles the offered stream (events/sec); 0 means "as
    fast as the pipeline accepts", which measures sustained capacity.
    ``prune_top_k`` enables bound-based re-quote pruning with the
    book's K-th profit as feedback (see :class:`OpportunityService`);
    ``shared`` backs the market with one shared-memory segment instead
    of per-shard copies (the zero-copy model the memory benchmark
    compares against this private-copy default).
    """
    service = OpportunityService(
        market,
        n_shards=n_shards,
        length=length,
        backend=backend,
        ingest_policy=ingest_policy,
        queue_size=queue_size,
        prune_top_k=prune_top_k,
        shared=shared,
        start_method=start_method,
    )
    try:
        source = log_source(log)
        if rate > 0:
            source = paced(source, rate)
        report = asyncio.run(service.run(source))
    finally:
        service.close()
    return LoadReport(
        n_pools=len(market.registry),
        n_tokens=n_tokens if n_tokens is not None else len(market.registry.tokens),
        n_blocks=n_blocks if n_blocks is not None else len(log.blocks()),
        rate=rate,
        service=report,
    )
