"""Pool partitioning and event routing across shards.

A :class:`ShardPlan` splits the market deterministically:

* **pool ownership** — pool ids are sorted and dealt round-robin, so
  every shard owns ~``n_pools / n_shards`` pools regardless of id
  distribution;
* **loop assignment** — each candidate loop lives on exactly one
  shard: the owner of its lexicographically smallest pool id.  Loops
  are the unit of evaluation work, so this is what actually balances
  the pipeline;
* **routing tables** — a pool event must reach every shard holding a
  loop over that pool (a loop's pools can span ownership boundaries),
  and a price tick every shard holding a loop through that token.
  Both tables are precomputed from the loop assignment.

The plan is a pure function of ``(sorted pool ids, loops, n_shards)``
— identical across runs and across processes, which is what lets the
process-backed shards agree with the inline ones bit for bit.
"""

from __future__ import annotations

from typing import Sequence

from ..amm.events import BurnEvent, MarketEvent, MintEvent, PriceTickEvent, SwapEvent
from ..core.errors import UnknownPoolError
from ..core.loop import ArbitrageLoop
from ..core.types import Token

__all__ = ["ShardPlan"]


class ShardPlan:
    """Deterministic partition of pools and loops over ``n_shards``."""

    def __init__(
        self,
        pool_ids: Sequence[str],
        loops: Sequence[ArbitrageLoop],
        n_shards: int,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        #: pool id -> owning shard (round-robin over sorted ids)
        self.pool_owner: dict[str, int] = {
            pool_id: i % n_shards
            for i, pool_id in enumerate(sorted(set(pool_ids)))
        }
        #: per shard, the *global* indices of its loops (into ``loops``)
        self.shard_loops: tuple[tuple[int, ...], ...]
        #: loop index -> shard
        self.loop_shard: tuple[int, ...]
        per_shard: list[list[int]] = [[] for _ in range(n_shards)]
        loop_shard: list[int] = []
        pool_routes: dict[str, set[int]] = {}
        token_routes: dict[Token, set[int]] = {}
        for index, loop in enumerate(loops):
            anchor = min(pool.pool_id for pool in loop.pools)
            shard = self.pool_owner[anchor]
            per_shard[shard].append(index)
            loop_shard.append(shard)
            for pool in loop.pools:
                pool_routes.setdefault(pool.pool_id, set()).add(shard)
            for token in loop.tokens:
                token_routes.setdefault(token, set()).add(shard)
        self.shard_loops = tuple(tuple(indices) for indices in per_shard)
        self.loop_shard = tuple(loop_shard)
        self._pool_routes: dict[str, tuple[int, ...]] = {
            pool_id: tuple(sorted(shards))
            for pool_id, shards in pool_routes.items()
        }
        self._token_routes: dict[Token, tuple[int, ...]] = {
            token: tuple(sorted(shards)) for token, shards in token_routes.items()
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shards_for_pool(self, pool_id: str) -> tuple[int, ...]:
        """Shards holding at least one loop over ``pool_id``."""
        return self._pool_routes.get(pool_id, ())

    def shards_for_token(self, token: Token) -> tuple[int, ...]:
        """Shards holding at least one loop through ``token``."""
        return self._token_routes.get(token, ())

    def shards_for_event(self, event: MarketEvent) -> tuple[int, ...]:
        """Shards whose state (and hence results) this event can touch."""
        if isinstance(event, (SwapEvent, MintEvent, BurnEvent)):
            return self.shards_for_pool(event.pool_id)
        if isinstance(event, PriceTickEvent):
            return self.shards_for_token(event.token)
        return ()  # block markers carry no state

    def route_block(
        self, events: Sequence[MarketEvent]
    ) -> dict[int, list[MarketEvent]]:
        """Split one block's events into per-shard sub-streams.

        Each shard receives exactly the events that touch its loops'
        pools or tokens, in stream order — enough to keep every pool a
        shard evaluates bit-identical to a global replay.  An event for
        a pool the market does not have raises
        :class:`~repro.core.errors.UnknownPoolError`, the same typed
        error a replay of the stream would produce — corrupt input is
        never silently shed.  (Known pools no loop crosses route to
        zero shards: applying them cannot change any result.)
        """
        routed: dict[int, list[MarketEvent]] = {}
        for event in events:
            if (
                isinstance(event, (SwapEvent, MintEvent, BurnEvent))
                and event.pool_id not in self.pool_owner
            ):
                raise UnknownPoolError(
                    f"event references pool {event.pool_id!r} which is "
                    "not in the market"
                )
            for shard in self.shards_for_event(event):
                routed.setdefault(shard, []).append(event)
        return routed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def loops_per_shard(self) -> tuple[int, ...]:
        return tuple(len(indices) for indices in self.shard_loops)

    def __repr__(self) -> str:
        return (
            f"ShardPlan({self.n_shards} shards, "
            f"{len(self.pool_owner)} pools, "
            f"loops per shard {self.loops_per_shard()})"
        )
