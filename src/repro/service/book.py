"""The live top-K arbitrage book.

:class:`OpportunityBook` holds the latest evaluation of every candidate
loop and serves two read paths:

* :meth:`top` — the current K best opportunities, heap-backed with
  lazy invalidation, ordered by :func:`opportunity_sort_key` (profit
  descending, canonical loop id ascending on ties — the same total
  order ``repro-arb detect`` prints, which is what makes the quiesced
  service bit-comparable to batch detection);
* sequence-numbered subscriptions — :meth:`snapshot` returns the book
  at its current sequence number, :meth:`subscribe` a bounded delta
  feed.  A subscriber that falls behind loses deltas (counted, and the
  subscription is marked gapped) and must resynchronize from a fresh
  snapshot; the book itself never blocks on slow consumers.

Writes are single-writer by design: the publish stage of the pipeline
is the only caller of :meth:`apply`, so the book needs no locking.
"""

from __future__ import annotations

import asyncio
import heapq
import logging
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "BookDelta",
    "BookSnapshot",
    "BookSubscription",
    "Opportunity",
    "OpportunityBook",
    "opportunity_sort_key",
    "rank_opportunities",
]

logger = logging.getLogger("repro.service.book")


def opportunity_sort_key(profit_usd: float, loop_id: str) -> tuple:
    """Total order on opportunities: profit descending, then canonical
    loop id ascending.  Shared by the book and ``detect`` so both rank
    profit ties identically."""
    return (-profit_usd, loop_id)


@dataclass(frozen=True)
class Opportunity:
    """One loop's latest evaluation, as published by a shard."""

    loop_id: str
    path: str
    profit_usd: float
    amount_in: float | None
    start_symbol: str | None
    block: int
    shard: int

    @property
    def is_profitable(self) -> bool:
        return self.profit_usd > 0.0

    def sort_key(self) -> tuple:
        return opportunity_sort_key(self.profit_usd, self.loop_id)

    def to_dict(self) -> dict:
        return {
            "loop_id": self.loop_id,
            "path": self.path,
            "profit_usd": self.profit_usd,
            "amount_in": self.amount_in,
            "start_symbol": self.start_symbol,
            "block": self.block,
            "shard": self.shard,
        }


@dataclass(frozen=True)
class BookDelta:
    """One applied update batch: the entries that changed at ``seq``."""

    seq: int
    block: int
    shard: int
    changed: tuple[Opportunity, ...]


@dataclass(frozen=True)
class BookSnapshot:
    """The whole profitable book at one sequence number."""

    seq: int
    entries: tuple[Opportunity, ...]

    def top(self, k: int) -> tuple[Opportunity, ...]:
        return self.entries[:k]


class BookSubscription:
    """A bounded delta feed off the book.

    ``dropped`` counts deltas lost to a full queue; once any are lost
    the subscription is ``gapped`` and the consumer should call
    :meth:`resync`, which clears the flag and returns a fresh
    :meth:`OpportunityBook.snapshot` to rebuild from.
    """

    def __init__(self, book: "OpportunityBook", maxsize: int):
        self._book = book
        self.queue: asyncio.Queue[BookDelta | None] = asyncio.Queue(maxsize=maxsize)
        self.dropped = 0
        self.gapped = False
        self.closed = False

    async def next_delta(self) -> BookDelta | None:
        """Next delta, or ``None`` once the book is closed and drained."""
        while True:
            if self.closed and self.queue.empty():
                return None
            delta = await self.queue.get()
            if delta is None and not self.closed:
                # stale end-of-stream sentinel from a run that has since
                # been reopened: skip it, the stream is live again
                continue
            return delta

    def resync(self) -> BookSnapshot:
        """Acknowledge a gap: clear the flag and take a fresh snapshot."""
        if self.gapped:
            logger.info(
                "subscriber resyncing after gap (%d deltas dropped so far)",
                self.dropped,
            )
        self.gapped = False
        return self._book.snapshot()

    def close(self) -> None:
        self._book.unsubscribe(self)


class OpportunityBook:
    """Current best-known result per loop, with heap-backed top-K."""

    def __init__(self):
        self._entries: dict[str, Opportunity] = {}
        #: lazy max-heap of (sort_key, loop_id); stale tuples are
        #: skipped at read time by comparing against ``_entries``
        self._heap: list[tuple[tuple, str]] = []
        self._seq = 0
        self._subscribers: list[BookSubscription] = []
        self._closed = False

    # ------------------------------------------------------------------
    # writes (single writer: the pipeline's publish stage)
    # ------------------------------------------------------------------

    def apply(
        self, block: int, shard: int, entries: Iterable[Opportunity]
    ) -> BookDelta:
        """Upsert a batch of loop results as one sequenced delta.

        ``seq`` advances exactly when content changes, so a subscriber
        whose last delta seq equals ``book.seq`` is provably current —
        an all-unchanged batch (e.g. a swap and its exact reverse)
        leaves both the sequence and the delta stream untouched.
        """
        changed = []
        for entry in entries:
            previous = self._entries.get(entry.loop_id)
            if previous is not None and previous.profit_usd == entry.profit_usd:
                # same number at the same loop: the heap entry is still
                # valid and subscribers don't need to hear about it
                self._entries[entry.loop_id] = entry
                continue
            self._entries[entry.loop_id] = entry
            heapq.heappush(self._heap, (entry.sort_key(), entry.loop_id))
            changed.append(entry)
        # lazy deletion leaves stale tuples behind; rebuild once stale
        # tuples outnumber live entries ~2:1 so a long-running service
        # stays O(loops) in memory (the floor keeps tiny books from
        # compacting on every churn)
        if len(self._heap) > 3 * max(16, len(self._entries)):
            self._heap = [
                (entry.sort_key(), loop_id)
                for loop_id, entry in self._entries.items()
            ]
            heapq.heapify(self._heap)
        if not changed:
            return BookDelta(seq=self._seq, block=block, shard=shard, changed=())
        self._seq += 1
        delta = BookDelta(
            seq=self._seq, block=block, shard=shard, changed=tuple(changed)
        )
        self._publish(delta)
        return delta

    def _publish(self, delta: BookDelta) -> None:
        for sub in self._subscribers:
            try:
                sub.queue.put_nowait(delta)
            except asyncio.QueueFull:
                sub.dropped += 1
                if not sub.gapped:
                    # log the transition, not every dropped delta — a
                    # slow consumer would otherwise flood the log
                    logger.warning(
                        "subscriber queue full at seq %d: delta dropped, "
                        "subscription gapped until resync",
                        delta.seq,
                    )
                sub.gapped = True

    def close(self) -> None:
        """Mark the stream finished; wake subscribers with a sentinel."""
        self._closed = True
        for sub in self._subscribers:
            sub.closed = True
            try:
                sub.queue.put_nowait(None)
            except asyncio.QueueFull:
                pass  # a queued delta is already there to wake the reader

    def reopen(self) -> None:
        """Resume the delta stream (a service starting another run).

        Clears the closed state on the book *and* its current
        subscribers, so a consumer that subscribed between runs is not
        born dead; one that already consumed the end-of-stream sentinel
        and left is unaffected."""
        self._closed = False
        for sub in self._subscribers:
            sub.closed = False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        return self._seq

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, loop_id: str) -> Opportunity | None:
        return self._entries.get(loop_id)

    def top(self, k: int) -> list[Opportunity]:
        """The K most profitable current entries (profit > 0 only).

        Heap-backed with lazy deletion: stale heap tuples (superseded
        by a later upsert of the same loop) are discarded as they
        surface; live ones are collected and pushed back.
        """
        if k <= 0:
            return []
        collected: list[tuple[tuple, str]] = []
        seen: set[str] = set()
        out: list[Opportunity] = []
        while self._heap and len(out) < k:
            key, loop_id = heapq.heappop(self._heap)
            entry = self._entries.get(loop_id)
            if entry is None or entry.sort_key() != key:
                continue  # stale: superseded or removed
            if loop_id in seen:
                # a profit that cycled back to an earlier value leaves
                # two identical live tuples; keep one, discard the rest
                continue
            seen.add(loop_id)
            collected.append((key, loop_id))
            if entry.is_profitable:
                out.append(entry)
            else:
                break  # heap order: everything after is unprofitable too
        for item in collected:
            heapq.heappush(self._heap, item)
        return out

    def kth_profit(self, k: int, exclude: "set[str] | frozenset[str] | None" = None) -> float:
        """Profit of the K-th most profitable entry, or 0.0 when fewer
        than ``k`` profitable entries qualify.

        ``exclude`` skips the named loop ids — the pruning pipeline
        passes every in-flight dirty loop, so the threshold it feeds
        back to shards rests only on entries whose book value is
        provably final for the blocks being dispatched.  Heap-backed
        with the same lazy-deletion discipline as :meth:`top`.
        """
        if k <= 0:
            return 0.0
        excluded = exclude if exclude is not None else frozenset()
        collected: list[tuple[tuple, str]] = []
        seen: set[str] = set()
        found = 0
        value = 0.0
        while self._heap and found < k:
            key, loop_id = heapq.heappop(self._heap)
            entry = self._entries.get(loop_id)
            if entry is None or entry.sort_key() != key:
                continue  # stale: superseded or removed
            if loop_id in seen:
                continue  # duplicate live tuple (profit cycled back)
            seen.add(loop_id)
            collected.append((key, loop_id))
            if not entry.is_profitable:
                break  # heap order: everything after is unprofitable too
            if loop_id in excluded:
                continue
            found += 1
            value = entry.profit_usd
        for item in collected:
            heapq.heappush(self._heap, item)
        return value if found == k else 0.0

    def snapshot(self) -> BookSnapshot:
        """All profitable entries in book order, stamped with ``seq``."""
        entries = sorted(
            (e for e in self._entries.values() if e.is_profitable),
            key=Opportunity.sort_key,
        )
        return BookSnapshot(seq=self._seq, entries=tuple(entries))

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    def subscribe(self, maxsize: int = 256) -> BookSubscription:
        sub = BookSubscription(self, maxsize)
        sub.closed = self._closed
        self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: BookSubscription) -> None:
        if sub in self._subscribers:
            self._subscribers.remove(sub)
        sub.closed = True
        try:  # wake any reader blocked in next_delta()
            sub.queue.put_nowait(None)
        except asyncio.QueueFull:
            pass  # a queued delta is already there to wake it

    def __repr__(self) -> str:
        return (
            f"OpportunityBook(seq={self._seq}, {len(self._entries)} loops, "
            f"{len(self._subscribers)} subscribers)"
        )


def rank_opportunities(
    entries: Sequence[Opportunity], k: int | None = None
) -> list[Opportunity]:
    """Sort entries by the book's total order (helper for reports)."""
    ranked = sorted(entries, key=Opportunity.sort_key)
    return ranked if k is None else ranked[:k]
