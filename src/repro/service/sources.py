"""Async event sources feeding the streaming pipeline.

Every source is an ``AsyncIterator[MarketEvent]``; the pipeline does
not care whether events come from a prerecorded log, a JSONL file on
disk, a live :class:`~repro.simulation.SimulationEngine`, or a paced
load generator.  Sources never mutate market state — they only emit
the events; the shards apply them.

* :func:`log_source` — replay a :class:`~repro.replay.MarketEventLog`;
* :func:`jsonl_source` — stream a saved JSONL log from disk;
* :func:`simulation_source` — *live* ingest: steps a simulation engine
  block by block and yields each block's events as they are recorded,
  so the service consumes a market that is being generated under it;
* :func:`paced` — wrap any source with a target event rate
  (events/sec), the load generator's throttle.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import AsyncIterator

from ..amm.events import MarketEvent
from ..replay.log import MarketEventLog
from ..simulation.engine import SimulationEngine

__all__ = ["jsonl_source", "log_source", "paced", "simulation_source"]


async def log_source(log: MarketEventLog) -> AsyncIterator[MarketEvent]:
    """Emit a prerecorded log, yielding control at block boundaries."""
    for block, events in log.iter_blocks():
        for event in events:
            yield event
        # one cooperative yield per block keeps the pipeline's other
        # stages (dispatch, publish) interleaved with a fast source
        await asyncio.sleep(0)


async def jsonl_source(path: str | Path) -> AsyncIterator[MarketEvent]:
    """Emit a saved JSONL stream (see :class:`MarketEventLog`)."""
    log = MarketEventLog.load(path)
    async for event in log_source(log):
        yield event


async def simulation_source(
    engine: SimulationEngine, n_blocks: int
) -> AsyncIterator[MarketEvent]:
    """Live ingest off a simulation: step, then emit what was recorded.

    The engine must be constructed with ``record_events=True`` (the
    default).  Each iteration advances one block and yields exactly
    the events that block appended to the engine's canonical log, so
    the service observes the same stream a post-hoc replay would.
    """
    if engine.event_log is None:
        raise ValueError(
            "simulation_source needs a SimulationEngine with record_events=True"
        )
    if n_blocks < 0:
        raise ValueError(f"n_blocks must be >= 0, got {n_blocks}")
    seen = len(engine.event_log)
    for _ in range(n_blocks):
        engine.step()
        for event in engine.event_log.events_since(seen):
            yield event
        seen = len(engine.event_log)
        await asyncio.sleep(0)


async def paced(
    source: AsyncIterator[MarketEvent], rate: float
) -> AsyncIterator[MarketEvent]:
    """Throttle ``source`` to ``rate`` events per second.

    Uses an absolute schedule (event *i* is due at ``start + i/rate``)
    rather than per-event sleeps, so pacing error does not accumulate
    and bursts after a slow block catch back up to the offered rate.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    interval = 1.0 / rate
    start = time.perf_counter()
    emitted = 0
    async for event in source:
        due = start + emitted * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        yield event
        emitted += 1
