"""Synthetic standalone loops of arbitrary length.

The §VII runtime claim compares MaxMax and ConvexOptimization on loops
up to length 10; real snapshots rarely contain long profitable loops,
so :func:`synthetic_loop` manufactures one directly: a token ring
whose pool reserves imply a chosen round-trip rate.

The loop's profitability is controlled by ``edge_rate``: each hop's
fee-less spot price is ``edge_rate`` (times lognormal jitter), so the
round-trip rate is about ``edge_rate**length`` before fees.  With
``edge_rate = 1.01`` and λ = 0.003 a length-*k* loop is profitable for
every k >= 2.
"""

from __future__ import annotations

import numpy as np

from ..amm.pool import DEFAULT_FEE, Pool
from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, Token

__all__ = ["synthetic_loop", "synthetic_loop_prices"]


def synthetic_loop(
    length: int,
    seed: int = 0,
    edge_rate: float = 1.01,
    base_reserve: float = 1_000_000.0,
    jitter: float = 0.002,
    fee: float = DEFAULT_FEE,
    token_prefix: str = "L",
) -> ArbitrageLoop:
    """A profitable ring of ``length`` tokens.

    Hop *i* trades token *i* for token *i+1* in a fresh pool whose
    reserves are ``(base_reserve, base_reserve * edge_rate * jitter_i)``
    — the spot price of the input token is then roughly ``edge_rate``
    per hop.
    """
    if length < 2:
        raise ValueError(f"a loop needs length >= 2, got {length}")
    if edge_rate <= 0:
        raise ValueError(f"edge_rate must be positive, got {edge_rate}")
    rng = np.random.default_rng(seed)
    tokens = [Token(f"{token_prefix}{i:02d}") for i in range(length)]
    pools = []
    for i in range(length):
        noise = float(np.exp(jitter * rng.standard_normal()))
        pools.append(
            Pool(
                tokens[i],
                tokens[(i + 1) % length],
                base_reserve,
                base_reserve * edge_rate * noise,
                fee=fee,
                pool_id=f"ring-{token_prefix}-{i:02d}",
            )
        )
    return ArbitrageLoop(tokens, pools)


def synthetic_loop_prices(
    loop: ArbitrageLoop, seed: int = 0, median_price: float = 10.0, sigma: float = 1.0
) -> PriceMap:
    """Deterministic lognormal CEX prices for a synthetic loop's tokens."""
    rng = np.random.default_rng(seed)
    return PriceMap(
        {
            token: float(median_price * np.exp(sigma * rng.standard_normal()))
            for token in loop.tokens
        }
    )
