"""Market data substrate (DESIGN.md S10): snapshots, the synthetic
§VI-scale market generator, and the paper's Section-V example."""

from .example import (
    SECTION5_PAPER_NUMBERS,
    TOKEN_X,
    TOKEN_Y,
    TOKEN_Z,
    section5_loop,
    section5_prices,
    section5_snapshot,
)
from .loops import synthetic_loop, synthetic_loop_prices
from .snapshot import MarketSnapshot
from .synthetic import SyntheticMarketGenerator, paper_market
from .uniswap import load_pairs, load_pairs_file

__all__ = [
    "MarketSnapshot",
    "SECTION5_PAPER_NUMBERS",
    "SyntheticMarketGenerator",
    "TOKEN_X",
    "TOKEN_Y",
    "TOKEN_Z",
    "load_pairs",
    "load_pairs_file",
    "paper_market",
    "synthetic_loop",
    "synthetic_loop_prices",
    "section5_loop",
    "section5_prices",
    "section5_snapshot",
]
