"""Loader for Uniswap-V2-subgraph-style pair data.

Users with real data (the paper pulled the 2023-09-01 on-chain state)
typically hold it in the shape The Graph's ``uniswap-v2`` subgraph
returns for the ``pairs`` entity:

.. code-block:: json

    [
      {
        "id": "0x0d4a11d5eeaac28ec3f61d100daf4d40471f1852",
        "token0": {"symbol": "WETH", "decimals": "18"},
        "token1": {"symbol": "USDT", "decimals": "6"},
        "reserve0": "31522.123",
        "reserve1": "51234567.1"
      }
    ]

:func:`load_pairs` converts such a list (plus a price table) into a
:class:`~repro.data.snapshot.MarketSnapshot`, after which the whole
§VI pipeline applies unchanged.  Numeric fields may be strings (the
subgraph serializes decimals as strings) or numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from ..amm.pool import DEFAULT_FEE, Pool
from ..amm.registry import PoolRegistry
from ..core.errors import SnapshotFormatError
from ..core.types import PriceMap, Token
from .snapshot import MarketSnapshot

__all__ = ["load_pairs", "load_pairs_file"]


def _token_from_spec(spec: Mapping) -> Token:
    try:
        symbol = spec["symbol"]
    except (KeyError, TypeError) as exc:
        raise SnapshotFormatError(f"pair token missing 'symbol': {spec!r}") from exc
    decimals = int(spec.get("decimals", 18))
    return Token(symbol=symbol, decimals=decimals, address=str(spec.get("id", "")))


def load_pairs(
    pairs: Iterable[Mapping],
    prices: PriceMap | Mapping[str, float],
    fee: float = DEFAULT_FEE,
    label: str = "uniswap-pairs",
) -> MarketSnapshot:
    """Build a snapshot from subgraph-style pair records.

    Pairs with non-positive reserves are skipped (empty pairs are
    common in subgraph dumps); malformed records raise
    :class:`~repro.core.errors.SnapshotFormatError`.
    """
    if not isinstance(prices, PriceMap):
        prices = PriceMap.from_symbols(dict(prices))
    registry = PoolRegistry()
    skipped = 0
    for record in pairs:
        try:
            token0 = _token_from_spec(record["token0"])
            token1 = _token_from_spec(record["token1"])
            reserve0 = float(record["reserve0"])
            reserve1 = float(record["reserve1"])
            pair_id = str(record.get("id", f"pair-{len(registry)}"))
        except SnapshotFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(f"malformed pair record: {record!r}") from exc
        if reserve0 <= 0 or reserve1 <= 0:
            skipped += 1
            continue
        if token0 == token1:
            skipped += 1
            continue
        registry.add(
            Pool(token0, token1, reserve0, reserve1, fee=fee, pool_id=pair_id)
        )
    return MarketSnapshot(
        registry=registry,
        prices=prices,
        label=label,
        metadata={"source": "uniswap-pairs", "skipped_pairs": skipped},
    )


def load_pairs_file(
    path: str | Path,
    prices: PriceMap | Mapping[str, float],
    fee: float = DEFAULT_FEE,
) -> MarketSnapshot:
    """Load pair records from a JSON file (a list, or ``{"pairs": [...]}``)."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotFormatError(f"invalid JSON in {path}: {exc}") from exc
    if isinstance(data, Mapping):
        data = data.get("pairs")
    if not isinstance(data, list):
        raise SnapshotFormatError(
            f"{path} must hold a list of pairs or an object with a 'pairs' list"
        )
    return load_pairs(data, prices, fee=fee, label=path.stem)
