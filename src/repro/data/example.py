"""The paper's Section V worked example, as a reusable fixture.

Pools: ``(x, y) = (100, 200)``, ``(y, z) = (300, 200)``,
``(z, x) = (200, 400)``; CEX prices ``Px = 2$``, ``Py = 10.2$``,
``Pz = 20$``; Uniswap-V2 fee λ = 0.003 (the paper's quoted results —
33.7$/201.1$/205.6$ per rotation, MaxMax 205.6$, Convex 206.1$ with a
surplus of ~5 Y and ~7.7 Z — are reproduced exactly with this fee).
"""

from __future__ import annotations

from ..amm.pool import DEFAULT_FEE, Pool
from ..amm.registry import PoolRegistry
from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, Token
from .snapshot import MarketSnapshot

__all__ = [
    "TOKEN_X",
    "TOKEN_Y",
    "TOKEN_Z",
    "section5_prices",
    "section5_loop",
    "section5_snapshot",
    "SECTION5_PAPER_NUMBERS",
]

TOKEN_X = Token("X")
TOKEN_Y = Token("Y")
TOKEN_Z = Token("Z")

#: The paper's quoted results for the example (for tests and docs).
SECTION5_PAPER_NUMBERS = {
    "monetized_from_X": 33.7,
    "monetized_from_Y": 201.1,
    "monetized_from_Z": 205.6,
    "maxmax": 205.6,
    "convex": 206.1,
    "input_X": 27.0,
    "profit_X": 16.8,
    "input_Y": 31.5,
    "profit_Y": 19.7,
    "input_Z": 16.4,
    "profit_Z": 10.3,
    "convex_profit_Y": 5.0,
    "convex_profit_Z": 7.7,
    "spot_product": 8.0 / 3.0,
}


def section5_prices(px: float = 2.0) -> PriceMap:
    """CEX prices of the example; ``px`` is swept in Figs. 2–4."""
    return PriceMap({TOKEN_X: px, TOKEN_Y: 10.2, TOKEN_Z: 20.0})


def section5_loop(fee: float = DEFAULT_FEE) -> ArbitrageLoop:
    """The loop ``X -> Y -> Z -> X`` with fresh pools at paper reserves."""
    pool_xy = Pool(TOKEN_X, TOKEN_Y, 100.0, 200.0, fee=fee, pool_id="s5-xy")
    pool_yz = Pool(TOKEN_Y, TOKEN_Z, 300.0, 200.0, fee=fee, pool_id="s5-yz")
    pool_zx = Pool(TOKEN_Z, TOKEN_X, 200.0, 400.0, fee=fee, pool_id="s5-zx")
    return ArbitrageLoop([TOKEN_X, TOKEN_Y, TOKEN_Z], [pool_xy, pool_yz, pool_zx])


def section5_snapshot(fee: float = DEFAULT_FEE, px: float = 2.0) -> MarketSnapshot:
    """The example as a full market snapshot (three pools, three prices)."""
    loop = section5_loop(fee=fee)
    registry = PoolRegistry(loop.pools)
    return MarketSnapshot(
        registry=registry,
        prices=section5_prices(px),
        label="section5-example",
        metadata={"source": "paper §V", "fee": fee},
    )
