"""Synthetic Uniswap-V2 market generator calibrated to the paper's §VI.

The paper's empirical snapshot (2023-09-01, after filters) had **51
tokens**, **208 pools**, and **123 profitable length-3 loops**.  The
on-chain data is unavailable offline, so :class:`SyntheticMarketGenerator`
produces statistically comparable snapshots:

* a connected multigraph of pools over the requested token set (random
  spanning tree for connectivity, then preferential random extra
  edges, occasionally parallel to an existing pair — Uniswap has
  duplicate pools too);
* CEX prices: a few well-known symbols at realistic magnitudes plus
  lognormal tails (five orders of magnitude of price spread);
* pool reserves sized so every pool passes the paper's filters by
  construction (TVL >= $30k, each reserve > 100), with pool prices set
  to the CEX price ratio times a multiplicative *mispricing noise*
  ``exp(N(0, price_noise))`` — the noise is what creates arbitrage
  loops, exactly as cross-pool price discrepancies do on mainnet.

With the default parameters and seed, the generated snapshot's count
of profitable 3-loops lands near the paper's 123 (the calibration
benchmark asserts the band).  Everything is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..amm.pool import DEFAULT_FEE
from ..amm.registry import PoolRegistry
from ..amm.stableswap import DEFAULT_AMPLIFICATION, StableSwapPool
from ..cex.static import REFERENCE_PRICES_2023_09
from ..core.types import PriceMap, Token
from ..graph.filters import PAPER_MIN_RESERVE, PAPER_MIN_TVL_USD
from .snapshot import MarketSnapshot

__all__ = ["SyntheticMarketGenerator", "paper_market"]


@dataclass
class SyntheticMarketGenerator:
    """Deterministic generator of paper-scale market snapshots.

    Parameters
    ----------
    n_tokens:
        Tokens in the market (paper: 51).
    n_pools:
        Pools / graph edges (paper: 208).
    seed:
        RNG seed; snapshots are identical per seed.
    price_noise:
        Sigma of the lognormal pool-mispricing noise.  0 means every
        pool agrees exactly with CEX parity (no arbitrage beyond fee
        rounding); the default 0.012 (~1.2 %) yields a §VI-like density
        of profitable loops.
    fee:
        Pool fee λ (Uniswap V2: 0.003).
    parallel_pool_fraction:
        Fraction of extra edges placed parallel to an existing pair.
    median_tvl:
        Median pool TVL in USD (lognormal around this).
    tvl_sigma:
        Lognormal sigma of pool TVL.
    price_sigma:
        Lognormal sigma of generated token prices (tail tokens).
    stableswap_fraction:
        Fraction of pools built as amplified-invariant
        :class:`~repro.amm.stableswap.StableSwapPool` instances instead
        of constant-product pools.  A stableswap pool models a pegged
        pair, so its reserves are drawn near-balanced in *token* terms
        (the mispricing noise supplies the imbalance); pairing tokens
        whose CEX prices differ therefore injects arbitrage, exactly
        like a depegged pool does on mainnet.  The default 0 draws no
        extra RNG values at all, so snapshots generated before this
        knob existed are reproduced byte-identically per seed.
    stableswap_amplification:
        Amplification coefficient A for generated stableswap pools.
    """

    n_tokens: int = 51
    n_pools: int = 208
    seed: int = 20230901
    price_noise: float = 0.012
    fee: float = DEFAULT_FEE
    parallel_pool_fraction: float = 0.05
    median_tvl: float = 250_000.0
    tvl_sigma: float = 1.0
    price_sigma: float = 2.0
    stableswap_fraction: float = 0.0
    stableswap_amplification: float = DEFAULT_AMPLIFICATION
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_tokens < 3:
            raise ValueError(f"need >= 3 tokens, got {self.n_tokens}")
        if self.n_pools < self.n_tokens - 1:
            raise ValueError(
                f"{self.n_pools} pools cannot connect {self.n_tokens} tokens"
            )
        if self.price_noise < 0:
            raise ValueError(f"price_noise must be >= 0, got {self.price_noise}")
        if not 0.0 <= self.stableswap_fraction <= 1.0:
            raise ValueError(
                "stableswap_fraction must be in [0, 1], "
                f"got {self.stableswap_fraction}"
            )
        if self.stableswap_fraction > 0 and self.stableswap_amplification <= 0:
            raise ValueError(
                "stableswap_amplification must be > 0, "
                f"got {self.stableswap_amplification}"
            )

    # ------------------------------------------------------------------

    def generate(self) -> MarketSnapshot:
        """Produce one snapshot (fresh RNG from the seed every call)."""
        self._rng = np.random.default_rng(self.seed)
        tokens = self._make_tokens()
        prices = self._make_prices(tokens)
        registry = self._make_pools(tokens, prices)
        metadata = {
            "generator": "SyntheticMarketGenerator",
            "n_tokens": self.n_tokens,
            "n_pools": self.n_pools,
            "seed": self.seed,
            "price_noise": self.price_noise,
            "fee": self.fee,
        }
        if self.stableswap_fraction > 0:
            # key added only when active so pre-knob snapshots (and
            # their checked-in JSON) stay byte-identical per seed
            metadata["stableswap_fraction"] = self.stableswap_fraction
            metadata["stableswap_amplification"] = self.stableswap_amplification
        return MarketSnapshot(
            registry=registry,
            prices=prices,
            label=f"synthetic-{self.seed}",
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------

    def _make_tokens(self) -> list[Token]:
        known = [Token(sym) for sym in sorted(REFERENCE_PRICES_2023_09)]
        tokens = known[: self.n_tokens]
        index = 0
        while len(tokens) < self.n_tokens:
            tokens.append(Token(f"TOK{index:03d}"))
            index += 1
        return tokens

    def _make_prices(self, tokens: list[Token]) -> PriceMap:
        prices: dict[Token, float] = {}
        for token in tokens:
            reference = REFERENCE_PRICES_2023_09.get(token.symbol)
            if reference is not None:
                prices[token] = reference
            else:
                z = float(self._rng.standard_normal())
                prices[token] = 5.0 * float(np.exp(self.price_sigma * z))
        return PriceMap(prices)

    def _make_pairs(self, tokens: list[Token]) -> list[tuple[Token, Token]]:
        """Connected edge list: spanning tree + preferential extras.

        Real DEX graphs are hub-dominated — WETH / stablecoins sit in
        a large share of pools — so extra edges attach to existing
        nodes with probability proportional to degree (preferential
        attachment).  Hubs produce the triangle density the paper's
        123-profitable-loop count implies; a uniform random graph with
        208 edges over 51 nodes has far too few triangles.
        """
        n = len(tokens)
        order = list(self._rng.permutation(n))
        pairs: list[tuple[Token, Token]] = []
        seen_pairs: set[frozenset[Token]] = set()
        degree: dict[Token, int] = {token: 0 for token in tokens}

        def add_pair(a: Token, b: Token) -> None:
            pairs.append((a, b))
            seen_pairs.add(frozenset((a, b)))
            degree[a] += 1
            degree[b] += 1

        # Spanning tree: attach each node to a degree-weighted earlier node.
        for i in range(1, n):
            earlier = [tokens[order[k]] for k in range(i)]
            weights = np.array([degree[t] + 1.0 for t in earlier])
            j = int(self._rng.choice(i, p=weights / weights.sum()))
            add_pair(tokens[order[i]], earlier[j])

        # Extra edges up to n_pools, degree-weighted on both ends.
        attempts = 0
        while len(pairs) < self.n_pools:
            attempts += 1
            if attempts > 100 * self.n_pools:
                raise RuntimeError(
                    "edge sampling stalled; parameters leave too few free pairs"
                )
            if pairs and float(self._rng.random()) < self.parallel_pool_fraction:
                # duplicate an existing pair (parallel pool)
                a, b = pairs[int(self._rng.integers(0, len(pairs)))]
                pairs.append((a, b))
                degree[a] += 1
                degree[b] += 1
                continue
            weights = np.array([degree[t] + 1.0 for t in tokens], dtype=float)
            probs = weights / weights.sum()
            i, j = self._rng.choice(n, size=2, replace=False, p=probs)
            a, b = tokens[int(i)], tokens[int(j)]
            if frozenset((a, b)) in seen_pairs:
                continue
            add_pair(a, b)
        return pairs

    def _make_pools(self, tokens: list[Token], prices: PriceMap) -> PoolRegistry:
        registry = PoolRegistry()
        for index, (a, b) in enumerate(self._make_pairs(tokens)):
            tvl = self.median_tvl * float(
                np.exp(self.tvl_sigma * self._rng.standard_normal())
            )
            tvl = max(tvl, PAPER_MIN_TVL_USD * 1.2)
            # Half the TVL on each side at CEX parity, then inject the
            # mispricing noise asymmetrically so the pool's relative
            # price deviates from the CEX ratio.  The per-pool sigma is
            # itself lognormal (heavy-tailed): most pools sit near
            # parity while a few are badly mispriced, matching the
            # dispersion real DEX snapshots show (and giving Fig. 5 its
            # spread of points well below the 45-degree line).
            sigma = self.price_noise * float(
                np.exp(self._rng.standard_normal())
            )
            noise = float(np.exp(sigma * self._rng.standard_normal()))
            reserve_a = (tvl / 2.0) / prices[a] * noise
            reserve_b = (tvl / 2.0) / prices[b]
            # Guarantee the paper's reserve filter passes: scale the
            # whole pool up (preserves its relative price and noise).
            min_reserve = min(reserve_a, reserve_b)
            floor = PAPER_MIN_RESERVE * 1.5
            if min_reserve < floor:
                scale = floor / min_reserve
                reserve_a *= scale
                reserve_b *= scale
            # The noise multiplier shrinks one side, so a pool drawn
            # near the TVL floor can land below it post-noise; scale it
            # back up only in that case, so every seed that already
            # satisfied the contract is reproduced unchanged.
            tvl_now = prices[a] * reserve_a + prices[b] * reserve_b
            if tvl_now < PAPER_MIN_TVL_USD:
                scale = PAPER_MIN_TVL_USD * 1.05 / tvl_now
                reserve_a *= scale
                reserve_b *= scale
            pool_id = f"syn-{index:04d}"
            if (
                self.stableswap_fraction > 0
                and float(self._rng.random()) < self.stableswap_fraction
            ):
                # Pegged pair: a stableswap pool quotes near 1:1 in
                # token terms, so its reserves are near-balanced with
                # the already-drawn mispricing noise as the imbalance.
                # The gate above is the only extra RNG draw this branch
                # makes, and it is skipped entirely at fraction 0.
                ss_a = reserve_a
                ss_b = reserve_a / noise
                floor_scale = max(
                    1.0,
                    PAPER_MIN_RESERVE * 1.5 / min(ss_a, ss_b),
                    PAPER_MIN_TVL_USD * 1.05
                    / (prices[a] * ss_a + prices[b] * ss_b),
                )
                registry.add(
                    StableSwapPool(
                        a,
                        b,
                        ss_a * floor_scale,
                        ss_b * floor_scale,
                        amplification=self.stableswap_amplification,
                        fee=self.fee,
                        pool_id=pool_id,
                    )
                )
                continue
            registry.create(
                a,
                b,
                reserve_a,
                reserve_b,
                fee=self.fee,
                pool_id=pool_id,
            )
        return registry


def paper_market(
    seed: int = 20230901,
    price_noise: float = 0.012,
    stableswap_fraction: float = 0.0,
) -> MarketSnapshot:
    """The default §VI-scale market: 51 tokens, 208 pools."""
    return SyntheticMarketGenerator(
        seed=seed,
        price_noise=price_noise,
        stableswap_fraction=stableswap_fraction,
    ).generate()
