"""Market snapshots: pools + CEX prices at one instant.

A :class:`MarketSnapshot` bundles everything the §VI pipeline needs —
a :class:`~repro.amm.registry.PoolRegistry` and a
:class:`~repro.core.types.PriceMap` — plus a label and free-form
metadata, with JSON (de)serialization so generated markets can be
checked in, diffed, and reloaded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..amm.families import FAMILY_G3M, FAMILY_STABLESWAP, pool_family
from ..amm.pool import Pool
from ..amm.registry import PoolRegistry
from ..core.errors import SnapshotFormatError
from ..core.types import PriceMap, Token
from ..graph.build import TokenGraph, build_token_graph
from ..graph.filters import paper_filters

__all__ = ["MarketSnapshot"]

_FORMAT_VERSION = 1


@dataclass
class MarketSnapshot:
    """Pools and prices frozen at one moment."""

    registry: PoolRegistry
    prices: PriceMap
    label: str = ""
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # pipeline helpers
    # ------------------------------------------------------------------

    def graph(self, apply_paper_filters: bool = True) -> TokenGraph:
        """Token graph over the snapshot, §VI filters applied by default."""
        filters = paper_filters(self.prices) if apply_paper_filters else ()
        return build_token_graph(self.registry, filters)

    def copy(self) -> "MarketSnapshot":
        """Deep copy with independent pool states (prices are immutable)."""
        return MarketSnapshot(
            registry=self.registry.copy(),
            prices=self.prices,
            label=self.label,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "label": self.label,
            "metadata": self.metadata,
            "tokens": [
                {
                    "symbol": token.symbol,
                    "decimals": token.decimals,
                    "address": token.address,
                }
                # union: pooled tokens plus priced-but-unpooled tokens
                for token in sorted(
                    self.registry.tokens | set(self.prices),
                    key=lambda t: t.symbol,
                )
            ],
            "prices": {
                token.symbol: price
                for token, price in sorted(
                    self.prices.items(), key=lambda kv: kv[0].symbol
                )
            },
            "pools": [self._pool_to_dict(pool)
                      for pool in sorted(self.registry, key=lambda p: p.pool_id)],
        }

    @staticmethod
    def _pool_to_dict(pool) -> dict:
        spec = {
            "pool_id": pool.pool_id,
            "token0": pool.token0.symbol,
            "token1": pool.token1.symbol,
            "reserve0": pool.reserve_of(pool.token0),
            "reserve1": pool.reserve_of(pool.token1),
            "fee": pool.fee,
        }
        family = pool_family(pool)
        if family == FAMILY_G3M:
            spec["type"] = "weighted"
            spec["weight0"] = pool.weight_of(pool.token0)
            spec["weight1"] = pool.weight_of(pool.token1)
        elif family == FAMILY_STABLESWAP:
            spec["type"] = "stableswap"
            spec["amplification"] = pool.amplification
        return spec

    @classmethod
    def from_dict(cls, data: Mapping) -> "MarketSnapshot":
        try:
            version = data["version"]
            if version != _FORMAT_VERSION:
                raise SnapshotFormatError(
                    f"unsupported snapshot version {version} "
                    f"(this library reads version {_FORMAT_VERSION})"
                )
            tokens = {
                spec["symbol"]: Token(
                    symbol=spec["symbol"],
                    decimals=spec.get("decimals", 18),
                    address=spec.get("address", ""),
                )
                for spec in data["tokens"]
            }
            prices = PriceMap(
                {tokens[symbol]: float(price) for symbol, price in data["prices"].items()}
            )
            registry = PoolRegistry()
            for spec in data["pools"]:
                pool_type = spec.get("type")
                if pool_type == "weighted":
                    from ..amm.weighted import WeightedPool

                    registry.add(
                        WeightedPool(
                            tokens[spec["token0"]],
                            tokens[spec["token1"]],
                            float(spec["reserve0"]),
                            float(spec["reserve1"]),
                            weight0=float(spec["weight0"]),
                            weight1=float(spec["weight1"]),
                            fee=float(spec["fee"]),
                            pool_id=spec["pool_id"],
                        )
                    )
                elif pool_type == "stableswap":
                    from ..amm.stableswap import StableSwapPool

                    registry.add(
                        StableSwapPool(
                            tokens[spec["token0"]],
                            tokens[spec["token1"]],
                            float(spec["reserve0"]),
                            float(spec["reserve1"]),
                            amplification=float(spec["amplification"]),
                            fee=float(spec["fee"]),
                            pool_id=spec["pool_id"],
                        )
                    )
                elif pool_type is not None:
                    raise SnapshotFormatError(
                        f"unknown pool type {pool_type!r} in "
                        f"{spec.get('pool_id', '<no id>')!r}"
                    )
                else:
                    registry.add(
                        Pool(
                            tokens[spec["token0"]],
                            tokens[spec["token1"]],
                            float(spec["reserve0"]),
                            float(spec["reserve1"]),
                            fee=float(spec["fee"]),
                            pool_id=spec["pool_id"],
                        )
                    )
            return cls(
                registry=registry,
                prices=prices,
                label=data.get("label", ""),
                metadata=dict(data.get("metadata", {})),
            )
        except SnapshotFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(f"malformed snapshot: {exc}") from exc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MarketSnapshot":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotFormatError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "MarketSnapshot":
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"MarketSnapshot({self.label or 'unlabeled'}: "
            f"{len(self.registry.tokens)} tokens, {len(self.registry)} pools)"
        )
