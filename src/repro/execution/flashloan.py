"""Flash-loan provider model.

The paper recommends executing a loop's swaps "in the same transaction
by applying flash loan".  :class:`FlashLoanProvider` models the lender
side explicitly: bounded liquidity per token, a proportional fee, and
loan/repay bookkeeping with the invariant that within one atomic
context every loan is repaid in full or the context reverts.

:class:`~repro.execution.simulator.ExecutionSimulator` embeds a
zero-fee unlimited lender for convenience; this class backs the more
realistic scenarios in the examples and failure-injection tests
(bounded liquidity, non-zero fee eating a thin arbitrage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ExecutionRevertedError
from ..core.types import Token

__all__ = ["FlashLoan", "FlashLoanProvider"]


@dataclass(frozen=True)
class FlashLoan:
    """An outstanding loan: ``amount`` of ``token``, owing ``repayment``."""

    token: Token
    amount: float
    repayment: float


@dataclass
class FlashLoanProvider:
    """A lender with per-token liquidity and a proportional fee.

    Parameters
    ----------
    liquidity:
        Maximum lendable amount per token.  Tokens absent from the
        mapping cannot be borrowed.
    fee:
        Proportional fee on the principal (Aave V2: 0.0009).
    """

    liquidity: dict[Token, float] = field(default_factory=dict)
    fee: float = 0.0009

    def __post_init__(self) -> None:
        if self.fee < 0:
            raise ValueError(f"fee must be >= 0, got {self.fee}")
        for token, amount in self.liquidity.items():
            if amount < 0:
                raise ValueError(
                    f"liquidity of {token.symbol} must be >= 0, got {amount}"
                )
        self._outstanding: list[FlashLoan] = []

    @property
    def outstanding(self) -> tuple[FlashLoan, ...]:
        return tuple(self._outstanding)

    def available(self, token: Token) -> float:
        return self.liquidity.get(token, 0.0)

    def borrow(self, token: Token, amount: float) -> FlashLoan:
        """Take a loan; raises when the pool lacks liquidity."""
        if amount <= 0:
            raise ValueError(f"loan amount must be positive, got {amount}")
        if amount > self.available(token):
            raise ExecutionRevertedError(
                f"flash-loan pool holds {self.available(token)} "
                f"{token.symbol}, cannot lend {amount}"
            )
        loan = FlashLoan(
            token=token, amount=amount, repayment=amount * (1.0 + self.fee)
        )
        self.liquidity[token] = self.available(token) - amount
        self._outstanding.append(loan)
        return loan

    def repay(self, loan: FlashLoan, amount: float) -> None:
        """Repay a loan in full; partial repayment reverts."""
        if loan not in self._outstanding:
            raise ExecutionRevertedError("repaying a loan that is not outstanding")
        if amount + 1e-12 < loan.repayment:
            raise ExecutionRevertedError(
                f"flash loan of {loan.amount} {loan.token.symbol} needs "
                f"repayment {loan.repayment}, got {amount}"
            )
        self.liquidity[loan.token] = self.available(loan.token) + loan.repayment
        self._outstanding.remove(loan)

    def assert_settled(self) -> None:
        """Raise unless every loan has been repaid (end-of-transaction check)."""
        if self._outstanding:
            owed = ", ".join(
                f"{loan.repayment:g} {loan.token.symbol}" for loan in self._outstanding
            )
            raise ExecutionRevertedError(f"unsettled flash loans: {owed}")
