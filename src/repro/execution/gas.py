"""Gas-cost model for arbitrage profitability.

The paper's profits are gross of transaction costs; a real searcher
nets out gas.  :class:`GasModel` prices a plan's execution the way an
Ethereum searcher would:

    cost_usd = (base_gas + n_swaps * gas_per_swap [+ flash-loan gas])
               * gas_price_gwei * 1e-9 * eth_price_usd

and :func:`net_profit` / :func:`is_profitable_after_gas` apply it to
strategy results.  Defaults approximate mainnet magnitudes: a V2 swap
costs ~100k gas, transaction overhead 21k, a flash loan ~90k.

This model also yields a natural ablation (see
``benchmarks/bench_gas_sensitivity.py``): how many of the §VI loops
survive at a given gas price — the reason small arbitrage loops go
unharvested in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.loop import ArbitrageLoop
from ..strategies.base import StrategyResult

__all__ = ["GasModel", "DEFAULT_GAS_MODEL"]


@dataclass(frozen=True)
class GasModel:
    """USD execution cost as a function of plan size.

    Parameters
    ----------
    gas_per_swap:
        Gas units per V2 swap hop (~100k on mainnet).
    base_gas:
        Fixed transaction overhead (21k) plus router dispatch.
    flash_loan_gas:
        Extra gas when the plan is funded by a flash loan.
    gas_price_gwei:
        Gas price in gwei.
    eth_price_usd:
        ETH price used to convert gas to dollars.
    """

    gas_per_swap: float = 100_000.0
    base_gas: float = 30_000.0
    flash_loan_gas: float = 90_000.0
    gas_price_gwei: float = 20.0
    eth_price_usd: float = 1_650.0

    def __post_init__(self) -> None:
        for name in ("gas_per_swap", "base_gas", "flash_loan_gas",
                     "gas_price_gwei", "eth_price_usd"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def gas_units(self, n_swaps: int, flash_loan: bool = True) -> float:
        """Total gas units for a plan with ``n_swaps`` hops."""
        if n_swaps < 1:
            raise ValueError(f"a plan has at least one swap, got {n_swaps}")
        units = self.base_gas + n_swaps * self.gas_per_swap
        if flash_loan:
            units += self.flash_loan_gas
        return units

    def cost_usd(self, n_swaps: int, flash_loan: bool = True) -> float:
        """USD cost of executing ``n_swaps`` hops."""
        return (
            self.gas_units(n_swaps, flash_loan)
            * self.gas_price_gwei
            * 1e-9
            * self.eth_price_usd
        )

    def cost_for_loop(self, loop: ArbitrageLoop, flash_loan: bool = True) -> float:
        return self.cost_usd(len(loop), flash_loan)

    def net_profit(self, result: StrategyResult, flash_loan: bool = True) -> float:
        """Monetized profit minus execution cost (can be negative)."""
        return result.monetized_profit - self.cost_for_loop(result.loop, flash_loan)

    def is_profitable_after_gas(
        self, result: StrategyResult, flash_loan: bool = True
    ) -> bool:
        return self.net_profit(result, flash_loan) > 0.0

    def breakeven_gross_usd(self, loop_length: int, flash_loan: bool = True) -> float:
        """Smallest gross profit that survives gas for a given length."""
        return self.cost_usd(loop_length, flash_loan)


#: Mainnet-flavoured defaults (20 gwei, 1650 $ ETH).
DEFAULT_GAS_MODEL = GasModel()
