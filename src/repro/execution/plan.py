"""Execution plans: the bridge from strategy results to swaps.

An :class:`ExecutionPlan` is an ordered list of :class:`PlannedSwap`
steps.  Strategy results carry per-hop amounts; :func:`plan_from_result`
turns them into a validated plan.  Validation catches the errors that
would burn gas on-chain: hops that do not chain, inputs exceeding the
previous hop's output (spending tokens you do not have), and
non-positive amounts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..amm.pool import Pool
from ..core.errors import PlanValidationError
from ..core.loop import Rotation
from ..core.types import Token
from ..strategies.base import StrategyResult

__all__ = ["PlannedSwap", "ExecutionPlan", "plan_from_result"]


@dataclass(frozen=True)
class PlannedSwap:
    """One intended swap: put ``amount_in`` of ``token_in`` into ``pool``.

    ``min_amount_out`` is the slippage guard: execution reverts if the
    realized output falls below it (like a router's ``amountOutMin``).
    """

    pool: Pool
    token_in: Token
    amount_in: float
    min_amount_out: float = 0.0

    def __post_init__(self) -> None:
        if self.token_in not in self.pool:
            raise PlanValidationError(
                f"{self.token_in} is not in pool {self.pool.pool_id}"
            )
        if self.amount_in <= 0:
            raise PlanValidationError(
                f"swap input must be positive, got {self.amount_in}"
            )
        if self.min_amount_out < 0:
            raise PlanValidationError(
                f"min_amount_out must be >= 0, got {self.min_amount_out}"
            )

    @property
    def token_out(self) -> Token:
        return self.pool.other(self.token_in)

    def __str__(self) -> str:
        return (
            f"{self.amount_in:g} {self.token_in.symbol} -> "
            f">={self.min_amount_out:g} {self.token_out.symbol} "
            f"@ {self.pool.pool_id}"
        )


class ExecutionPlan:
    """A validated ordered sequence of swaps forming a path or loop.

    Parameters
    ----------
    swaps:
        The swaps in execution order; consecutive hops must chain
        (each hop consumes the token the previous one emitted).
    budgets:
        Optional mapping token -> externally available amount.  A
        convex-strategy plan deliberately feeds *less* than a hop's
        output into the next hop (the difference is profit kept);
        fixed-start plans feed outputs forward exactly.  Either way
        the amounts are data, not re-derived here — the simulator
        checks them against reality at execution time.
    """

    def __init__(self, swaps: list[PlannedSwap] | tuple[PlannedSwap, ...]):
        swaps = tuple(swaps)
        if not swaps:
            raise PlanValidationError("a plan needs at least one swap")
        for prev, nxt in zip(swaps, swaps[1:]):
            if prev.token_out != nxt.token_in:
                raise PlanValidationError(
                    f"plan does not chain: hop emits {prev.token_out} but the "
                    f"next hop consumes {nxt.token_in}"
                )
        self._swaps = swaps

    @property
    def swaps(self) -> tuple[PlannedSwap, ...]:
        return self._swaps

    def __len__(self) -> int:
        return len(self._swaps)

    def __iter__(self):
        return iter(self._swaps)

    @property
    def start_token(self) -> Token:
        return self._swaps[0].token_in

    @property
    def end_token(self) -> Token:
        return self._swaps[-1].token_out

    @property
    def is_cyclic(self) -> bool:
        """True when the plan returns to its start token."""
        return self.start_token == self.end_token

    @property
    def total_input(self) -> float:
        return self._swaps[0].amount_in

    def tokens_touched(self) -> frozenset[Token]:
        touched = set()
        for swap in self._swaps:
            touched.add(swap.token_in)
            touched.add(swap.token_out)
        return frozenset(touched)

    def __repr__(self) -> str:
        path = " -> ".join(
            [self._swaps[0].token_in.symbol]
            + [swap.token_out.symbol for swap in self._swaps]
        )
        return f"ExecutionPlan({path}, in={self.total_input:g})"


def plan_from_result(
    result: StrategyResult,
    slippage_tolerance: float = 0.0,
) -> ExecutionPlan:
    """Build a plan from a strategy result's hop amounts.

    ``slippage_tolerance`` sets each hop's ``min_amount_out`` to
    ``(1 - tolerance) * predicted_out`` — tolerance 0 demands at least
    the predicted outputs exactly.

    Fixed-start results execute their rotation's hop order; convex
    results execute in loop order starting from the first hop with a
    positive input (the paper notes the convex plan "can be
    implemented in any order").

    Raises :class:`PlanValidationError` for zero-profit results (there
    is nothing to execute).
    """
    if not result.hop_amounts:
        raise PlanValidationError(
            f"strategy result for {result.loop!r} has no trades to execute"
        )
    if not 0.0 <= slippage_tolerance < 1.0:
        raise PlanValidationError(
            f"slippage tolerance must be in [0, 1), got {slippage_tolerance}"
        )
    loop = result.loop
    if result.start_token is not None:
        hop_seq = list(loop.rotation_from(result.start_token).hops())
        amounts = list(result.hop_amounts)
    else:
        hop_seq = list(Rotation(loop, 0).hops())
        amounts = list(result.hop_amounts)
    if len(amounts) != len(hop_seq):
        raise PlanValidationError(
            f"{len(amounts)} hop amounts for {len(hop_seq)} hops"
        )
    swaps = []
    for (token_in, _token_out, pool), (a_in, a_out) in zip(hop_seq, amounts):
        if a_in <= 0:
            raise PlanValidationError(
                f"hop through {pool.pool_id} has non-positive input {a_in}"
            )
        swaps.append(
            PlannedSwap(
                pool=pool,
                token_in=token_in,
                amount_in=a_in,
                min_amount_out=a_out * (1.0 - slippage_tolerance),
            )
        )
    return ExecutionPlan(swaps)
