"""Atomic plan execution against live pool state.

:class:`ExecutionSimulator` plays the role of the flash-loan-wrapped
arbitrage transaction the paper recommends ("it is better to implement
these three exchanges in the same transaction by applying flash loan"):
either every swap in the plan executes and the profit is banked, or
the whole thing reverts and pool reserves are exactly as before.

Execution semantics per swap:

* the trader's balance of the swap's input token must cover
  ``amount_in`` (the first hop may be funded by a flash loan, see
  :mod:`repro.execution.flashloan`);
* the realized output must reach ``min_amount_out``, otherwise the
  transaction reverts (slippage guard).

The simulator reports realized per-token profit, which integration
tests reconcile against the strategy's *predicted* profit — on a quiet
market they must agree to float precision; after interfering trades
the guard triggers instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..amm.registry import PoolRegistry
from ..core.errors import ExecutionRevertedError
from ..core.types import PriceMap, ProfitVector, Token
from .plan import ExecutionPlan

__all__ = ["ExecutionReceipt", "ExecutionSimulator"]


@dataclass(frozen=True)
class ExecutionReceipt:
    """Outcome of one atomic execution.

    ``profit`` is net of the flash-loan repayment: what the trader
    keeps per token after returning all borrowed principal.
    """

    plan: ExecutionPlan
    profit: ProfitVector
    realized_outputs: tuple[float, ...]
    reverted: bool = False
    revert_reason: str = ""

    def monetized(self, prices: PriceMap) -> float:
        return self.profit.monetize(prices)


@dataclass
class ExecutionSimulator:
    """Executes plans atomically against a :class:`PoolRegistry`.

    Parameters
    ----------
    registry:
        The pools to trade against.  Must contain every pool a plan
        touches (enforced at execution time by pool-id lookup).
    balances:
        The trader's starting token balances.  With
        ``allow_flash_loans=True`` (default) any shortfall of the
        *start* token is borrowed at ``flash_fee`` and repaid from the
        final output, matching the paper's same-transaction pattern.
    flash_fee:
        Proportional flash-loan fee (e.g. 0.0009 for Aave V2); zero by
        default, as the paper's analysis ignores loan fees.
    """

    registry: PoolRegistry
    balances: dict[Token, float] = field(default_factory=dict)
    allow_flash_loans: bool = True
    flash_fee: float = 0.0

    def __post_init__(self) -> None:
        if self.flash_fee < 0:
            raise ValueError(f"flash_fee must be >= 0, got {self.flash_fee}")

    # ------------------------------------------------------------------

    def balance_of(self, token: Token) -> float:
        return self.balances.get(token, 0.0)

    def execute(self, plan: ExecutionPlan) -> ExecutionReceipt:
        """Run ``plan`` atomically; revert everything on any failure."""
        snapshot = self.registry.snapshot()
        balances_before = dict(self.balances)
        # Reverting must also unwind the pools' event logs: a restored
        # reserve with a surviving SwapEvent would replay a phantom
        # trade (see repro.replay).
        event_marks = {
            swap.pool.pool_id: len(self.registry[swap.pool.pool_id].events)
            for swap in plan.swaps
        }
        try:
            return self._run(plan, balances_before)
        except ExecutionRevertedError as exc:
            self.registry.restore(snapshot)
            for pool_id, mark in event_marks.items():
                self.registry[pool_id].discard_events_after(mark)
            self.balances.clear()
            self.balances.update(balances_before)
            return ExecutionReceipt(
                plan=plan,
                profit=ProfitVector.zero(),
                realized_outputs=(),
                reverted=True,
                revert_reason=str(exc),
            )

    # ------------------------------------------------------------------

    def _run(self, plan: ExecutionPlan, balances_before: dict[Token, float]) -> ExecutionReceipt:
        start_token = plan.start_token
        borrowed = 0.0
        shortfall = plan.total_input - self.balance_of(start_token)
        if shortfall > 0:
            if not self.allow_flash_loans:
                raise ExecutionRevertedError(
                    f"insufficient {start_token.symbol}: need {plan.total_input}, "
                    f"hold {self.balance_of(start_token)} and flash loans are off"
                )
            borrowed = shortfall
            self._credit(start_token, borrowed)

        realized: list[float] = []
        for index, swap in enumerate(plan.swaps):
            pool = self.registry[swap.pool.pool_id]
            balance = self.balance_of(swap.token_in)
            # Router semantics: after the first hop, forward what the
            # previous hop actually produced (never more than planned)
            # — realized outputs can fall short of predictions when
            # other trades interfere; the min_amount_out guard decides
            # whether that shortfall is acceptable.
            amount_in = swap.amount_in if index == 0 else min(swap.amount_in, balance)
            if balance + 1e-12 < amount_in or amount_in <= 0:
                raise ExecutionRevertedError(
                    f"insufficient {swap.token_in.symbol} for hop through "
                    f"{pool.pool_id}: need {swap.amount_in}, hold {balance}"
                )
            amount_out = pool.swap(swap.token_in, amount_in)
            if amount_out + 1e-12 < swap.min_amount_out:
                raise ExecutionRevertedError(
                    f"slippage guard: hop through {pool.pool_id} returned "
                    f"{amount_out}, below minimum {swap.min_amount_out}"
                )
            self._debit(swap.token_in, amount_in)
            self._credit(swap.token_out, amount_out)
            realized.append(amount_out)

        if borrowed > 0:
            repayment = borrowed * (1.0 + self.flash_fee)
            if self.balance_of(start_token) + 1e-12 < repayment:
                raise ExecutionRevertedError(
                    f"cannot repay flash loan of {repayment} {start_token.symbol}; "
                    f"final balance {self.balance_of(start_token)}"
                )
            self._debit(start_token, repayment)

        # Profit is the trader's balance diff — the flash-loan credit
        # and repayment cancel, leaving trading gains minus loan fee.
        net: dict[Token, float] = {}
        for token in set(balances_before) | set(self.balances):
            delta = self.balance_of(token) - balances_before.get(token, 0.0)
            if abs(delta) > 1e-12:
                net[token] = delta
        return ExecutionReceipt(
            plan=plan,
            profit=ProfitVector.from_mapping(net),
            realized_outputs=tuple(realized),
        )

    def _credit(self, token: Token, amount: float) -> None:
        self.balances[token] = self.balance_of(token) + amount

    def _debit(self, token: Token, amount: float) -> None:
        self.balances[token] = self.balance_of(token) - amount
