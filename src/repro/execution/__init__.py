"""Atomic execution simulator (DESIGN.md S11)."""

from .gas import DEFAULT_GAS_MODEL, GasModel
from .flashloan import FlashLoan, FlashLoanProvider
from .plan import ExecutionPlan, PlannedSwap, plan_from_result
from .simulator import ExecutionReceipt, ExecutionSimulator

__all__ = [
    "ExecutionPlan",
    "ExecutionReceipt",
    "ExecutionSimulator",
    "DEFAULT_GAS_MODEL",
    "FlashLoan",
    "GasModel",
    "FlashLoanProvider",
    "PlannedSwap",
    "plan_from_result",
]
