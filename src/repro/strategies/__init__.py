"""The paper's arbitrage strategies (DESIGN.md S8)."""

from .base import Strategy, StrategyResult
from .convexopt import ConvexOptimizationStrategy
from .maxmax import MaxMaxStrategy
from .maxprice import MaxPriceStrategy
from .registry import available_strategies, make_strategy
from .traditional import (
    RotationQuote,
    TraditionalStrategy,
    optimize_rotation_by,
    result_from_quote,
    rotation_quote,
    rotation_result,
)

__all__ = [
    "ConvexOptimizationStrategy",
    "MaxMaxStrategy",
    "MaxPriceStrategy",
    "RotationQuote",
    "Strategy",
    "StrategyResult",
    "TraditionalStrategy",
    "available_strategies",
    "make_strategy",
    "optimize_rotation_by",
    "result_from_quote",
    "rotation_quote",
    "rotation_result",
]
