"""Strategy registry: build strategies by name.

Used by the CLI and the experiment harness so configuration stays
string-based (``--strategy maxmax``) without scattering ``if`` chains.
"""

from __future__ import annotations

from typing import Callable

from .base import Strategy
from .convexopt import ConvexOptimizationStrategy
from .maxmax import MaxMaxStrategy
from .maxprice import MaxPriceStrategy
from .traditional import TraditionalStrategy

__all__ = ["STRATEGY_FACTORIES", "make_strategy", "available_strategies"]

STRATEGY_FACTORIES: dict[str, Callable[..., Strategy]] = {
    "traditional": TraditionalStrategy,
    "maxprice": MaxPriceStrategy,
    "maxmax": MaxMaxStrategy,
    "convex": ConvexOptimizationStrategy,
}


def available_strategies() -> tuple[str, ...]:
    """Names accepted by :func:`make_strategy`, sorted."""
    return tuple(sorted(STRATEGY_FACTORIES))


def make_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by its registry name.

    Extra keyword arguments pass through to the strategy constructor
    (e.g. ``make_strategy("convex", backend="slsqp")``).
    """
    try:
        factory = STRATEGY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        ) from None
    return factory(**kwargs)
