"""The MaxMax strategy: best fixed start over all rotations.

The paper's second strategy (eq. 6): optimize the single-token profit
for *every* rotation of the loop, monetize each with the CEX price of
its start token, and keep the maximum:

    MaxMax = max_j  max_t  P_j * (F_rot_j(t) - t).

By construction MaxMax dominates every traditional fixed-start result
and the MaxPrice result on the same loop — the dominance the paper's
Fig. 5 and Fig. 6 scatter plots visualize and our property tests
assert.
"""

from __future__ import annotations

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap
from .base import Strategy, StrategyResult
from .traditional import rotation_result

__all__ = ["MaxMaxStrategy"]


class MaxMaxStrategy(Strategy):
    """Evaluate every rotation; return the best monetized result.

    Ties (e.g. a loop with no profitable rotation at all, where every
    rotation monetizes to zero) resolve to the first rotation in loop
    order, keeping results deterministic.
    """

    name = "maxmax"

    def __init__(self, method: str = "closed_form"):
        self.method = method

    def evaluate(self, loop: ArbitrageLoop, prices: PriceMap) -> StrategyResult:
        return self.evaluate_cached(loop, prices, None)

    def evaluate_cached(
        self, loop: ArbitrageLoop, prices: PriceMap, cache=None
    ) -> StrategyResult:
        best: StrategyResult | None = None
        per_rotation: dict[str, float] = {}
        for rotation in loop.rotations():
            candidate = rotation_result(
                rotation, prices, strategy_name=self.name, method=self.method,
                cache=cache,
            )
            per_rotation[rotation.start_token.symbol] = candidate.monetized_profit
            if best is None or candidate.monetized_profit > best.monetized_profit:
                best = candidate
        assert best is not None  # loops have >= 2 rotations
        best.details["per_rotation"] = per_rotation
        return best

    def evaluate_grid(self, loop, base_prices, token, grid, *, cache=None):
        from ..engine.vectorized import is_vectorizable_loop, maxmax_grid

        if not is_vectorizable_loop(loop):
            return super().evaluate_grid(
                loop, base_prices, token, grid, cache=cache
            )
        return maxmax_grid(
            loop,
            base_prices,
            token,
            grid,
            strategy_name=self.name,
            method=self.method,
            cache=cache,
        )
