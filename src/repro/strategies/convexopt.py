"""The ConvexOptimization strategy (paper eq. 8).

Relaxes the flow-conservation equalities of the fixed-start problem to
inequalities, letting the arbitrage *keep a surplus of every loop
token*, and maximizes the CEX-priced sum of surpluses over the
resulting convex set.  The paper proves (and our property tests check):

* ConvexOptimization >= MaxMax on every loop;
* if no rotation is profitable, ConvexOptimization finds exactly the
  zero solution (the "zero-solution theorem").

Two backends solve the program:

* ``"barrier"`` (default) — the from-scratch log-barrier interior
  point, warm-started from the best MaxMax path;
* ``"slsqp"`` — scipy SLSQP, same warm start.

Whatever the backend returns, the result is *floored at the MaxMax
solution*: the MaxMax path is a feasible point of eq. (8), so if the
numerical solver lands slightly below it (or fails), returning the
MaxMax result is both mathematically sound and closer to the true
optimum.  The ``details`` dict records when the floor was applied.
"""

from __future__ import annotations

import logging

import numpy as np

from ..core.errors import InfeasibleProgramError, OptimizationError
from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap
from ..optimize.barrier import BarrierSolver
from ..optimize.loop_program import LoopProgram, build_loop_program
from ..optimize.slsqp import solve_slsqp
from .base import Strategy, StrategyResult
from .maxmax import MaxMaxStrategy

__all__ = ["ConvexOptimizationStrategy"]

logger = logging.getLogger("repro.strategies.convexopt")

_BACKENDS = ("barrier", "slsqp")


class ConvexOptimizationStrategy(Strategy):
    """Solve eq. (8) for the loop's stored direction.

    Parameters
    ----------
    backend:
        ``"barrier"`` or ``"slsqp"``.
    linking:
        ``"inequality"`` (eq. 8, default) or ``"equality"`` (eq. 7,
        which provably collapses to the fixed-start problem; kept for
        the ablation benchmark).  The equality variant is solved with
        SLSQP regardless of ``backend`` because the barrier method
        needs a strictly feasible interior that equality linking
        rarely leaves room for.
    profit_tol:
        Components of the profit vector with absolute value at or
        below ``profit_tol * scale`` are clipped to zero when
        reporting (solver noise suppression).
    """

    name = "convex"

    def __init__(
        self,
        backend: str = "barrier",
        linking: str = "inequality",
        profit_tol: float = 1e-9,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.linking = linking
        self.profit_tol = profit_tol
        self._maxmax = MaxMaxStrategy()

    # ------------------------------------------------------------------

    def evaluate(self, loop: ArbitrageLoop, prices: PriceMap) -> StrategyResult:
        return self.evaluate_cached(loop, prices, None)

    def evaluate_cached(
        self, loop: ArbitrageLoop, prices: PriceMap, cache=None
    ) -> StrategyResult:
        """The convex solve itself is price-dependent and never cached,
        but the MaxMax warm start / floor reuses the rotation cache."""
        loop_program = build_loop_program(loop, prices, linking=self.linking)
        maxmax = self._maxmax.evaluate_cached(loop, prices, cache)

        solution, backend_used, solve_info = self._solve(loop_program, maxmax)

        if solution is not None:
            monetized = loop_program.monetized_profit(solution)
        else:
            monetized = -np.inf

        if solution is None or monetized < maxmax.monetized_profit:
            # MaxMax's path is feasible for eq. (8); floor the answer.
            result = StrategyResult(
                strategy=self.name,
                loop=loop,
                profit=maxmax.profit,
                monetized_profit=maxmax.monetized_profit,
                start_token=None,
                amount_in=None,
                hop_amounts=maxmax.hop_amounts,
                details={
                    "backend": backend_used,
                    "floored_to_maxmax": True,
                    **solve_info,
                },
            )
            return result

        # solver produced >= MaxMax: report its solution
        profit = loop_program.profit_vector(solution, tol=self.profit_tol)
        return StrategyResult(
            strategy=self.name,
            loop=loop,
            profit=profit,
            # monetize the *clipped* vector so the reported profit and
            # number agree (clipping only removes solver noise)
            monetized_profit=profit.monetize(prices),
            start_token=None,
            amount_in=None,
            hop_amounts=tuple(loop_program.hop_amounts(solution)),
            details={
                "backend": backend_used,
                "floored_to_maxmax": False,
                **solve_info,
            },
        )

    # ------------------------------------------------------------------

    def _solve(self, loop_program: LoopProgram, maxmax: StrategyResult):
        """Run the configured backend; return (x | None, backend, info)."""
        program = loop_program.program
        if self.linking == "equality":
            x0 = self._warm_start(loop_program, maxmax)
            result = solve_slsqp(program, initial_point=x0)
            return result.x, "slsqp", {"iterations": result.iterations}

        if self.backend == "barrier":
            try:
                x0 = loop_program.interior_point()
            except InfeasibleProgramError:
                # Zero-solution theorem: no interior <=> no arbitrage.
                return None, "barrier", {"no_interior": True}
            try:
                result = BarrierSolver().solve(program, x0)
                return result.x, "barrier", {"iterations": result.iterations}
            except OptimizationError as exc:
                # Fall back to SLSQP rather than fail the evaluation.
                logger.warning(
                    "barrier solver failed on loop %s (%s); "
                    "falling back to SLSQP",
                    loop_program.loop.canonical_id,
                    exc,
                )
                fallback = solve_slsqp(
                    program, initial_point=self._warm_start(loop_program, maxmax)
                )
                return (
                    fallback.x,
                    "slsqp-fallback",
                    {"barrier_error": str(exc), "iterations": fallback.iterations},
                )

        x0 = self._warm_start(loop_program, maxmax)
        result = solve_slsqp(program, initial_point=x0)
        return result.x, "slsqp", {"iterations": result.iterations}

    @staticmethod
    def _warm_start(loop_program: LoopProgram, maxmax: StrategyResult) -> np.ndarray:
        """Start SLSQP from the MaxMax hop amounts (feasible for eq. 8)."""
        n = len(loop_program.loop)
        v = np.zeros(2 * n)
        if maxmax.amount_in and maxmax.amount_in > 0 and maxmax.hop_amounts:
            offset = loop_program.loop.tokens.index(maxmax.start_token)
            for k, (a_in, a_out) in enumerate(maxmax.hop_amounts):
                hop_index = (offset + k) % n
                v[2 * hop_index] = a_in
                v[2 * hop_index + 1] = a_out
        return v
