"""The traditional fixed-start strategy.

Prior work (paper refs [4], [5]) picks one start token — usually ETH —
and optimizes the input amount for the rotation that starts there.
The monetized profit is then ``P_start * (delta_out - delta_in)``.

Three interchangeable 1-D optimizers are exposed (`method=`):

* ``"closed_form"`` (default) — exact optimum via the composition
  algebra, the fastest and the reference for the others;
* ``"bisection"`` — the paper's stated method: bisect on the composed
  marginal rate crossing 1 (Fig. 1);
* ``"golden"`` — derivative-free golden-section search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import StrategyError
from ..core.loop import ArbitrageLoop, Rotation
from ..core.types import PriceMap, ProfitVector, Token
from ..optimize.bisection import maximize_by_derivative
from ..optimize.closed_form import optimize_rotation
from ..optimize.golden import golden_section_maximize
from ..optimize.result import ScalarOptResult
from .base import Strategy, StrategyResult

__all__ = [
    "RotationQuote",
    "TraditionalStrategy",
    "optimize_rotation_by",
    "quote_profit_vector",
    "result_from_quote",
    "rotation_quote",
    "rotation_result",
]

_METHODS = ("closed_form", "bisection", "golden")


def optimize_rotation_by(rotation: Rotation, method: str = "closed_form") -> ScalarOptResult:
    """Optimal input for one rotation using the chosen 1-D optimizer.

    Rotations containing non-constant-product hops (weighted pools)
    always use the generic chain-rule bisection, whatever ``method``
    says — the composition algebra does not apply to them.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    try:
        comp = rotation.composition()
    except TypeError:
        from ..optimize.chain import optimize_rotation_chain

        return optimize_rotation_chain(rotation)
    if method == "closed_form":
        return optimize_rotation(rotation)
    if method == "bisection":
        # Start the bracket expansion near the input-side reserve scale
        # so only a few doublings are needed.
        first_pool = rotation.pools[0]
        hint = max(first_pool.reserve_of(rotation.start_token) * 1e-3, 1e-9)
        return maximize_by_derivative(
            profit=comp.profit, rate=comp.derivative, initial_hi=hint
        )
    # golden: bracket [0, hi] where hi generously exceeds the optimum.
    if not comp.is_profitable:
        return ScalarOptResult(x=0.0, value=0.0, iterations=0, converged=True)
    hi = comp.optimal_input() * 4.0 + 1.0  # safe unimodal bracket
    return golden_section_maximize(comp.profit, 0.0, hi)


@dataclass(frozen=True)
class RotationQuote:
    """The price-independent part of a fixed-start evaluation.

    Given fixed reserves, the optimal input, the per-hop amounts, and
    the single-token profit of a rotation do not depend on CEX prices
    — only the *monetization* does.  Splitting the two lets the
    engine's :class:`~repro.engine.cache.PoolStateCache` reuse this
    object across price points and across repeated evaluations of an
    unchanged loop.
    """

    amount_in: float
    hop_amounts: tuple[tuple[float, float], ...]
    profit: float
    iterations: int


def rotation_quote(rotation: Rotation, method: str = "closed_form") -> RotationQuote:
    """Optimize one rotation and capture its price-independent outcome."""
    opt = optimize_rotation_by(rotation, method=method)
    if opt.x <= 0.0:
        return RotationQuote(
            amount_in=opt.x, hop_amounts=(), profit=0.0, iterations=opt.iterations
        )
    amounts = rotation.simulate(opt.x)
    hops = tuple((amounts[i], amounts[i + 1]) for i in range(len(amounts) - 1))
    return RotationQuote(
        amount_in=opt.x,
        hop_amounts=hops,
        profit=amounts[-1] - amounts[0],
        iterations=opt.iterations,
    )


def quote_profit_vector(rotation: Rotation, quote: RotationQuote) -> ProfitVector:
    """The profit vector a quote implies (zero when no profitable input)."""
    if quote.amount_in <= 0.0:
        return ProfitVector.zero()
    return ProfitVector.single(rotation.start_token, quote.profit)


def result_from_quote(
    rotation: Rotation,
    quote: RotationQuote,
    prices: PriceMap | None,
    strategy_name: str = "traditional",
    method: str = "closed_form",
    *,
    profit: ProfitVector | None = None,
    monetized: float | None = None,
    extra_details: dict | None = None,
) -> StrategyResult:
    """Monetize a :class:`RotationQuote` into a full result.

    The single assembly point for both the scalar and the vectorized
    paths, so the result shape cannot diverge between them.  The
    vectorized grid kernels pass ``profit`` (one shared vector per
    rotation) and ``monetized`` (already computed in the array pass);
    ``prices`` may then be ``None``.
    """
    if profit is None:
        profit = quote_profit_vector(rotation, quote)
    if monetized is None:
        assert prices is not None, "need prices when monetized is not given"
        monetized = profit.monetize(prices)
    details = {"method": method, "iterations": quote.iterations}
    if extra_details:
        details.update(extra_details)
    return StrategyResult(
        strategy=strategy_name,
        loop=rotation.loop,
        profit=profit,
        monetized_profit=monetized,
        start_token=rotation.start_token,
        amount_in=quote.amount_in,
        hop_amounts=quote.hop_amounts,
        details=details,
    )


def rotation_result(
    rotation: Rotation,
    prices: PriceMap,
    strategy_name: str = "traditional",
    method: str = "closed_form",
    cache=None,
) -> StrategyResult:
    """Full :class:`StrategyResult` for a fixed rotation.

    When ``cache`` (a :class:`~repro.engine.cache.PoolStateCache`) is
    given, the optimization reuses a memoized quote whenever the
    rotation's reserves are unchanged.
    """
    if cache is not None:
        quote = cache.rotation_quote(rotation, method)
    else:
        quote = rotation_quote(rotation, method)
    return result_from_quote(
        rotation, quote, prices, strategy_name=strategy_name, method=method
    )


class TraditionalStrategy(Strategy):
    """Fixed-start arbitrage: optimize one rotation only.

    Parameters
    ----------
    start_token:
        The token to start from.  When ``None`` the loop's first token
        is used (matching how prior work always starts from a fixed
        numeraire).  Loops that do not contain the start token raise
        :class:`~repro.core.errors.StrategyError`.
    method:
        1-D optimizer: ``closed_form`` / ``bisection`` / ``golden``.
    """

    name = "traditional"

    def __init__(self, start_token: Token | None = None, method: str = "closed_form"):
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        self.start_token = start_token
        self.method = method

    def evaluate(self, loop: ArbitrageLoop, prices: PriceMap) -> StrategyResult:
        return self.evaluate_cached(loop, prices, None)

    def evaluate_cached(
        self, loop: ArbitrageLoop, prices: PriceMap, cache=None
    ) -> StrategyResult:
        rotation = self._rotation(loop)
        return rotation_result(
            rotation, prices, strategy_name=self.name, method=self.method, cache=cache
        )

    def evaluate_grid(self, loop, base_prices, token, grid, *, cache=None):
        from ..engine.vectorized import is_vectorizable_loop, traditional_grid

        if not is_vectorizable_loop(loop):
            return super().evaluate_grid(
                loop, base_prices, token, grid, cache=cache
            )
        rotation = self._rotation(loop)
        return traditional_grid(
            rotation,
            base_prices,
            token,
            grid,
            strategy_name=self.name,
            method=self.method,
            cache=cache,
        )

    def _rotation(self, loop: ArbitrageLoop) -> Rotation:
        start = self.start_token if self.start_token is not None else loop.tokens[0]
        if start not in loop.tokens:
            raise StrategyError(
                f"start token {start} is not in {loop!r}; the traditional "
                "strategy needs a loop through its numeraire"
            )
        return loop.rotation_from(start)

    def __repr__(self) -> str:
        start = self.start_token.symbol if self.start_token else None
        return f"TraditionalStrategy(start_token={start!r}, method={self.method!r})"
