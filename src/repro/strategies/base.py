"""Strategy interface and shared result type.

A *strategy* answers one question for one arbitrage loop: given the
current pool reserves and a CEX price map, what trades should run and
what monetized profit do they yield?  All four strategies from the
paper implement :class:`Strategy`:

* :class:`~repro.strategies.traditional.TraditionalStrategy`
* :class:`~repro.strategies.maxprice.MaxPriceStrategy`
* :class:`~repro.strategies.maxmax.MaxMaxStrategy`
* :class:`~repro.strategies.convexopt.ConvexOptimizationStrategy`
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, ProfitVector, Token

__all__ = ["Strategy", "StrategyResult"]


@dataclass(frozen=True)
class StrategyResult:
    """Outcome of evaluating one strategy on one loop.

    Attributes
    ----------
    strategy:
        Name of the strategy that produced this result.
    loop:
        The loop evaluated.
    profit:
        Net per-token profit vector.
    monetized_profit:
        ``profit`` valued with the CEX price map (USD).
    start_token:
        The start token, for fixed-start strategies; ``None`` for the
        convex strategy, which has no distinguished start.
    amount_in:
        Optimal input amount of ``start_token`` for fixed-start
        strategies; ``None`` otherwise.
    hop_amounts:
        Per-hop ``(amount_in, amount_out)`` pairs in the loop's hop
        order — enough to build an execution plan.
    details:
        Free-form solver metadata (backend, iterations, ...).
    """

    strategy: str
    loop: ArbitrageLoop
    profit: ProfitVector
    monetized_profit: float
    start_token: Token | None = None
    amount_in: float | None = None
    hop_amounts: tuple[tuple[float, float], ...] = ()
    details: dict = field(default_factory=dict)

    @property
    def is_profitable(self) -> bool:
        return self.monetized_profit > 0.0

    def __str__(self) -> str:
        start = f" from {self.start_token.symbol}" if self.start_token else ""
        return (
            f"{self.strategy}{start}: {self.profit} "
            f"(${self.monetized_profit:,.2f})"
        )


class Strategy(abc.ABC):
    """Evaluate arbitrage loops under a CEX price map.

    Besides the scalar :meth:`evaluate`, every strategy exposes three
    batched entry points used by the evaluation engine
    (:mod:`repro.engine`):

    * :meth:`evaluate_cached` — one loop, with an optional
      :class:`~repro.engine.cache.PoolStateCache` so repeated
      evaluations of an unchanged loop reuse the price-independent
      optimization work;
    * :meth:`evaluate_many` — a batch of loops at one price map;
    * :meth:`evaluate_grid` — one loop across a whole price grid
      (one token's price swept).  The closed-form strategies override
      this with a vectorized numpy pass; the default walks the grid
      point by point.
    """

    #: Human-readable name used in results, reports, and figures.
    name: str = "strategy"

    @abc.abstractmethod
    def evaluate(self, loop: ArbitrageLoop, prices: PriceMap) -> StrategyResult:
        """Compute this strategy's best action for ``loop``.

        Implementations never mutate pool state; they only *quote*.
        A loop without profitable action yields a zero-profit result,
        not an exception.
        """

    def evaluate_cached(
        self, loop: ArbitrageLoop, prices: PriceMap, cache=None
    ) -> StrategyResult:
        """Cache-aware evaluation; numerically identical to
        :meth:`evaluate`.  The base implementation ignores ``cache``;
        strategies whose per-loop work is price-independent override
        it to memoize on pool reserves."""
        return self.evaluate(loop, prices)

    def evaluate_many(
        self, loops, prices: PriceMap, *, cache=None
    ) -> list[StrategyResult]:
        """Evaluate a batch of loops (used by the empirical pipeline)."""
        return [self.evaluate_cached(loop, prices, cache) for loop in loops]

    def evaluate_grid(
        self,
        loop: ArbitrageLoop,
        base_prices: PriceMap,
        token,
        grid,
        *,
        cache=None,
    ) -> list[StrategyResult]:
        """Evaluate ``loop`` as ``token``'s price sweeps over ``grid``.

        Returns one result per grid value, in grid order.  The default
        is the scalar walk :func:`repro.analysis.sweep.price_sweep`
        historically performed; closed-form strategies override it
        with the vectorized fast path.
        """
        return [
            self.evaluate_cached(
                loop, base_prices.with_price(token, float(price)), cache
            )
            for price in grid
        ]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
