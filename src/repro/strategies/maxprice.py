"""The MaxPrice strategy: start from the highest-CEX-price token.

The paper's first strategy.  Practitioners might assume that starting
from the most valuable token maximizes monetized profit; the paper's
Fig. 2 (example) and Fig. 6 (empirical) show this is *not* reliable —
the strategy is included precisely so the benchmarks can reproduce
that negative result.
"""

from __future__ import annotations

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap
from .base import Strategy, StrategyResult
from .traditional import rotation_result

__all__ = ["MaxPriceStrategy"]


class MaxPriceStrategy(Strategy):
    """Fixed-start arbitrage from the token with the highest CEX price.

    Ties on price break deterministically by token symbol (see
    :meth:`repro.core.types.PriceMap.max_price_token`).
    """

    name = "maxprice"

    def __init__(self, method: str = "closed_form"):
        self.method = method

    def evaluate(self, loop: ArbitrageLoop, prices: PriceMap) -> StrategyResult:
        return self.evaluate_cached(loop, prices, None)

    def evaluate_cached(
        self, loop: ArbitrageLoop, prices: PriceMap, cache=None
    ) -> StrategyResult:
        start = prices.max_price_token(loop.tokens)
        rotation = loop.rotation_from(start)
        return rotation_result(
            rotation, prices, strategy_name=self.name, method=self.method, cache=cache
        )

    def evaluate_grid(self, loop, base_prices, token, grid, *, cache=None):
        from ..engine.vectorized import is_vectorizable_loop, maxprice_grid

        if not is_vectorizable_loop(loop):
            return super().evaluate_grid(
                loop, base_prices, token, grid, cache=cache
            )
        return maxprice_grid(
            loop,
            base_prices,
            token,
            grid,
            strategy_name=self.name,
            method=self.method,
            cache=cache,
        )
