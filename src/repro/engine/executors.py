"""Pluggable execution backends for evaluation batches.

Two executors implement the same contract — results in request order,
bit-identical to evaluating the requests one by one:

* :class:`SerialExecutor` — in-process loop, shares one
  :class:`~repro.engine.cache.PoolStateCache` across the whole batch;
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fan-out with
  deterministic contiguous chunking.  Chunks are submitted in order
  and reassembled in order (``Executor.map`` preserves submission
  order), so the output never depends on worker scheduling.  The
  shared cache crosses the process boundary by value: each chunk is
  seeded with the parent's current quotes and ships its new ones
  back, so iterative workloads (harvest rounds, repeated figures)
  keep their cross-round reuse under ``--jobs``.

Everything a request carries (strategies, loops, pools, price maps)
pickles with the default protocol, which is what makes the process
pool a drop-in.
"""

from __future__ import annotations

import abc
import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..strategies.base import StrategyResult
from .cache import PoolStateCache
from .request import EvaluationRequest

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor"]


class Executor(abc.ABC):
    """Run a sequence of evaluation requests, preserving order."""

    name: str = "executor"

    @abc.abstractmethod
    def run(
        self,
        requests: Sequence[EvaluationRequest],
        cache: PoolStateCache | None = None,
    ) -> list[StrategyResult]:
        """Evaluate ``requests``; result ``i`` answers request ``i``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Evaluate requests one after another in the calling process."""

    name = "serial"

    def run(
        self,
        requests: Sequence[EvaluationRequest],
        cache: PoolStateCache | None = None,
    ) -> list[StrategyResult]:
        return [
            request.strategy.evaluate_cached(request.loop, request.prices, cache)
            for request in requests
        ]


#: Per-worker seed installed once by the pool initializer (cheaper than
#: pickling the whole parent cache into every chunk payload).
_worker_seed: dict = {}


def _init_worker(seed_entries) -> None:
    global _worker_seed
    _worker_seed = seed_entries


def _run_chunk(requests):
    """Worker entry point: evaluate one chunk with a chunk-local cache.

    The chunk cache is seeded from the parent engine's shared cache
    (shipped once per worker via the initializer) and the worker ships
    its *new* quotes back, so quote reuse survives the process
    boundary in both directions.
    """
    cache = PoolStateCache()
    if _worker_seed:
        cache.merge_entries(_worker_seed)
    results = [
        request.strategy.evaluate_cached(request.loop, request.prices, cache)
        for request in requests
    ]
    new_entries = {
        key: quote
        for key, quote in cache.export_entries().items()
        if key not in _worker_seed
    }
    return results, new_entries


class ParallelExecutor(Executor):
    """Fan a batch out over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Requests per worker task.  Defaults to splitting the batch
        into ~4 chunks per worker, floored at 1 — large enough to
        amortize pickling, small enough to balance load.
    min_batch_size:
        Batches smaller than this skip the pool entirely (process
        startup would dominate) and run serially — same results,
        same order.

    Each :meth:`run` starts a fresh process pool and ships the current
    cache snapshot to each worker once (via the pool initializer), so
    workers always see up-to-date reserves and quotes.  That makes a
    single large batch cheap but adds per-call overhead for tight
    iterative loops (e.g. a many-round harvest); such workloads are
    better served by the default serial executor, whose shared cache
    makes the repeated rounds nearly free anyway.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        min_batch_size: int = 8,
    ):
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_batch_size = min_batch_size

    def chunks(
        self, requests: Sequence[EvaluationRequest]
    ) -> list[list[EvaluationRequest]]:
        """Deterministic contiguous chunking of the request list."""
        n = len(requests)
        if n == 0:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(n / (self.max_workers * 4)))
        return [list(requests[i : i + size]) for i in range(0, n, size)]

    def run(
        self,
        requests: Sequence[EvaluationRequest],
        cache: PoolStateCache | None = None,
    ) -> list[StrategyResult]:
        if len(requests) < max(self.min_batch_size, 2) or self.max_workers == 1:
            return SerialExecutor().run(requests, cache)
        seed = cache.export_entries() if cache is not None else {}
        chunks = self.chunks(requests)
        workers = min(self.max_workers, len(chunks))
        results: list[StrategyResult] = []
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(seed,)
        ) as pool:
            # map() yields chunk results in submission order, so the
            # flattened list is in request order whatever the workers'
            # completion order was.
            for chunk_results, new_entries in pool.map(_run_chunk, chunks):
                results.extend(chunk_results)
                if cache is not None:
                    cache.merge_entries(new_entries)
        return results

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(max_workers={self.max_workers}, "
            f"chunk_size={self.chunk_size})"
        )
