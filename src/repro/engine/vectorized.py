"""Vectorized numpy fast path for price-grid evaluation.

The observation that makes a Fig. 2-style sweep collapse: for the
fixed-start strategies on a loop with *fixed reserves*, the optimal
input, hop amounts, and single-token profit of each rotation are
independent of CEX prices — only the monetization (``P_start *
profit``) varies across the grid.  So a 101-point sweep needs one
optimization per rotation, not one per (rotation, point); the whole
monetized series is a single array multiply, and MaxMax's envelope is
one ``argmax`` over the rotation × grid matrix.

Parity with the scalar path is exact, not approximate: the quotes are
produced by the same :func:`repro.strategies.traditional.rotation_quote`
computation, monetization multiplies the same two floats (IEEE-754
multiplication is identical in numpy and pure Python), MaxMax's
``argmax`` mirrors the scalar strict-``>`` first-wins tie-break, and
MaxPrice's column argmax over symbol-sorted rows mirrors
:meth:`repro.core.types.PriceMap.max_price_token`'s
``(-price, symbol)`` ordering.

Only constant-product loops take this path (see
:func:`is_vectorizable_loop`); weighted pools and the convex strategy
fall back to the scalar walk.
"""

from __future__ import annotations

import numpy as np

from ..core.loop import ArbitrageLoop, Rotation
from ..core.types import PriceMap, ProfitVector, Token
from ..strategies.base import StrategyResult
from ..strategies.traditional import (
    RotationQuote,
    quote_profit_vector,
    result_from_quote,
    rotation_quote,
)

__all__ = [
    "is_vectorizable_loop",
    "traditional_grid",
    "maxmax_grid",
    "maxprice_grid",
]


def is_vectorizable_loop(loop: ArbitrageLoop) -> bool:
    """True iff every hop is constant-product (the closed-form family)."""
    return all(
        getattr(pool, "is_constant_product", True) for pool in loop.pools
    )


# ----------------------------------------------------------------------
# shared pieces
# ----------------------------------------------------------------------


def _quote(rotation: Rotation, method: str, cache) -> RotationQuote:
    if cache is not None:
        return cache.rotation_quote(rotation, method)
    return rotation_quote(rotation, method=method)


def _price_vector(
    start: Token, base_prices: PriceMap, token: Token, grid: np.ndarray
) -> np.ndarray:
    """``start``'s price at every grid point of the swept ``token``."""
    if start == token:
        return grid
    return np.full(grid.shape, base_prices[start])


def _monetized_row(
    rotation: Rotation,
    quote: RotationQuote,
    base_prices: PriceMap,
    token: Token,
    grid: np.ndarray,
) -> np.ndarray:
    """Monetized profit of one rotation across the grid.

    Unprofitable rotations monetize to zero without any price lookup,
    matching the scalar path (an empty profit vector never touches the
    price map).
    """
    if quote.amount_in <= 0.0:
        return np.zeros(grid.shape)
    return _price_vector(rotation.start_token, base_prices, token, grid) * quote.profit


# ----------------------------------------------------------------------
# per-strategy kernels
# ----------------------------------------------------------------------


def traditional_grid(
    rotation: Rotation,
    base_prices: PriceMap,
    token: Token,
    grid,
    strategy_name: str = "traditional",
    method: str = "closed_form",
    cache=None,
) -> list[StrategyResult]:
    """Fixed-rotation sweep: one optimization, one array multiply."""
    g = np.asarray(grid, dtype=float)
    if g.size == 0:
        return []
    quote = _quote(rotation, method, cache)
    monetized = _monetized_row(rotation, quote, base_prices, token, g)
    profit = quote_profit_vector(rotation, quote)
    return [
        result_from_quote(
            rotation, quote, None, strategy_name, method,
            profit=profit, monetized=float(value),
        )
        for value in monetized
    ]


def maxmax_grid(
    loop: ArbitrageLoop,
    base_prices: PriceMap,
    token: Token,
    grid,
    strategy_name: str = "maxmax",
    method: str = "closed_form",
    cache=None,
) -> list[StrategyResult]:
    """MaxMax sweep: rotation × grid matrix, envelope via argmax.

    ``argmax`` picks the first maximal row, which reproduces the
    scalar loop's strict-``>`` comparison (ties resolve to the first
    rotation in loop order).
    """
    g = np.asarray(grid, dtype=float)
    if g.size == 0:
        return []
    rotations = loop.rotations()
    quotes = [_quote(rotation, method, cache) for rotation in rotations]
    matrix = np.vstack(
        [
            _monetized_row(rotation, quote, base_prices, token, g)
            for rotation, quote in zip(rotations, quotes)
        ]
    )
    best = np.argmax(matrix, axis=0)
    symbols = [rotation.start_token.symbol for rotation in rotations]
    profits = [
        quote_profit_vector(rotation, quote)
        for rotation, quote in zip(rotations, quotes)
    ]
    results = []
    for j in range(g.size):
        r = int(best[j])
        per_rotation = {
            symbols[i]: float(matrix[i, j]) for i in range(len(rotations))
        }
        results.append(
            result_from_quote(
                rotations[r], quotes[r], None, strategy_name, method,
                profit=profits[r],
                monetized=float(matrix[r, j]),
                extra_details={"per_rotation": per_rotation},
            )
        )
    return results


def maxprice_grid(
    loop: ArbitrageLoop,
    base_prices: PriceMap,
    token: Token,
    grid,
    strategy_name: str = "maxprice",
    method: str = "closed_form",
    cache=None,
) -> list[StrategyResult]:
    """MaxPrice sweep: per-point start selection, then fixed rotations.

    The start token can flip along the sweep (the swept token
    overtakes the rest); selection is a column argmax over
    symbol-sorted price rows, reproducing ``max_price_token``'s
    ``(-price, symbol)`` tie-break.
    """
    g = np.asarray(grid, dtype=float)
    if g.size == 0:
        return []
    candidates = sorted(loop.tokens, key=lambda t: t.symbol)
    price_rows = np.vstack(
        [_price_vector(t, base_prices, token, g) for t in candidates]
    )
    selection = np.argmax(price_rows, axis=0)
    quotes: dict[Token, tuple[Rotation, RotationQuote, ProfitVector]] = {}
    results = []
    for j in range(g.size):
        start = candidates[int(selection[j])]
        if start not in quotes:
            rotation = loop.rotation_from(start)
            quote = _quote(rotation, method, cache)
            quotes[start] = (rotation, quote, quote_profit_vector(rotation, quote))
        rotation, quote, profit = quotes[start]
        if quote.amount_in <= 0.0:
            monetized = 0.0
        else:
            monetized = float(price_rows[int(selection[j]), j] * quote.profit)
        results.append(
            result_from_quote(
                rotation, quote, None, strategy_name, method,
                profit=profit, monetized=monetized,
            )
        )
    return results
