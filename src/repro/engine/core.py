"""The batched evaluation engine: one pipeline for loops × strategies
× price scenarios.

:class:`EvaluationEngine` is the single entry point every consumer —
price sweeps, scatter figures, harvesting, the simulation engine, the
CLI — routes through.  It composes three independent accelerations:

* a reserve-keyed :class:`~repro.engine.cache.PoolStateCache`, so
  repeated evaluations of unchanged loops (across strategies, rounds,
  or price points) pay for the optimization once;
* a pluggable :class:`~repro.engine.executors.Executor` — serial by
  default, ``ProcessPoolExecutor``-backed with deterministic chunking
  via :class:`~repro.engine.executors.ParallelExecutor`;
* the vectorized numpy grid kernels (:mod:`repro.engine.vectorized`)
  for the closed-form strategies, reached through each strategy's
  ``evaluate_grid`` override, with automatic scalar fallback for
  weighted pools and the convex strategy;
* the cross-loop batch kernels (:mod:`repro.market`): loops-at-one-
  price-map calls on the serial executor compile *every* loop —
  constant-product and weighted alike, on any of the three fixed-start
  solvers — into hop-index matrices over columnar reserves and quote
  them per rotation in one vectorized pass (closed form for CPMM
  groups, batched chain-rule/iterative solvers otherwise), with scalar
  fallback only for non-batchable strategies and tiny slices.

Results are always identical to the scalar path — the engine changes
*when* work happens, never *what* is computed.

:class:`LoopUniverse` complements it on the detection side: loop
*topology* (which token cycles exist, through which pools) depends
only on which pools exist, while *profitability* depends on reserves.
Splitting the two lets block-by-block consumers enumerate once and
re-filter cheaply.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

from ..amm.pool import Pool
from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, Token
from ..graph.build import build_token_graph
from ..graph.cycles import enumerate_token_cycles, expand_cycle_to_loops
from ..strategies.base import Strategy, StrategyResult
from ..telemetry import trace
from .cache import PoolStateCache
from .executors import Executor, SerialExecutor
from .request import BatchResult, EvaluationBatch

__all__ = ["EvaluationEngine", "LoopUniverse"]

#: Loop batches below this size skip building a batch evaluator: the
#: compile + numpy dispatch overhead only pays for itself across tens
#: of loops.
_MIN_BATCH_LOOPS = 16


class LoopUniverse:
    """All candidate loops of one length over a fixed pool topology.

    Enumeration (cycle DFS + pool expansion) is the expensive part of
    :func:`repro.graph.cycles.find_arbitrage_loops` and depends only
    on the pool set, not on reserves.  The universe enumerates once,
    keeps live pool references, and re-applies the paper's
    ``sum(log p_ij) > tol`` criterion against current reserves on each
    :meth:`profitable` call — same loops, same order, no re-walk of
    the graph.
    """

    def __init__(self, pools: Iterable[Pool], length: int):
        graph = build_token_graph(pools)
        self.length = length
        self.candidates: tuple[ArbitrageLoop, ...] = tuple(
            loop
            for cycle in enumerate_token_cycles(graph, length)
            for loop in expand_cycle_to_loops(graph, cycle)
        )

    def __len__(self) -> int:
        return len(self.candidates)

    def profitable(self, tol: float = 0.0) -> list[ArbitrageLoop]:
        """Candidates currently admitting arbitrage — identical to
        ``find_arbitrage_loops`` on the same pools."""
        return [loop for loop in self.candidates if loop.log_rate_sum() > tol]

    def count_profitable(self, tol: float = 0.0) -> int:
        return sum(1 for loop in self.candidates if loop.log_rate_sum() > tol)


def _universe_key(pools: Sequence[Pool], length: int) -> tuple:
    """Identity of a pool topology: the same live pool objects.

    ``id()`` is included so a copied registry (fresh pool objects with
    the same ids) gets its own universe; the universe keeps references
    to the pools, so the ids stay valid for its lifetime.
    """
    return (length,) + tuple(
        sorted((pool.pool_id, id(pool)) for pool in pools)
    )


class EvaluationEngine:
    """Batched strategy evaluation with caching, executors, and the
    vectorized grid fast path.

    Parameters
    ----------
    executor:
        Batch execution backend; default :class:`SerialExecutor`.
    cache:
        A shared :class:`PoolStateCache`; pass ``None`` to get a fresh
        one, or an existing cache to share quotes across engines.
    vectorize:
        When True (default) grid evaluations go through each
        strategy's ``evaluate_grid`` (the numpy fast path for the
        closed-form strategies); when False every point is evaluated
        scalar through the executor — useful for benchmarking and as a
        correctness oracle.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        cache: PoolStateCache | None = None,
        vectorize: bool = True,
    ):
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache if cache is not None else PoolStateCache()
        self.vectorize = vectorize
        # Universes hold strong references to every candidate loop (and
        # hence every pool) of a topology, so the memo is bounded: a
        # long-lived engine fed many distinct snapshots evicts the
        # least recently used topology instead of pinning them all.
        self._universes: OrderedDict[tuple, LoopUniverse] = OrderedDict()
        self._max_universes = 8
        # Batch evaluators memoized like universes: compiled hop
        # matrices are reserve-independent, so iterative consumers
        # (harvest rounds re-scoring a universe's filtered sub-lists)
        # pay compilation once and only refresh the reserve columns.
        self._batch_evaluators: OrderedDict[int, "object"] = OrderedDict()
        self._max_batch_evaluators = 4
        self._batch_evaluator_counter = 0

    def __repr__(self) -> str:
        return (
            f"EvaluationEngine(executor={self.executor!r}, "
            f"vectorize={self.vectorize}, cache={self.cache!r})"
        )

    # ------------------------------------------------------------------
    # evaluation entry points
    # ------------------------------------------------------------------

    def evaluate(
        self, strategy: Strategy, loop: ArbitrageLoop, prices: PriceMap
    ) -> StrategyResult:
        """One evaluation through the shared cache."""
        return strategy.evaluate_cached(loop, prices, self.cache)

    def run(self, batch: EvaluationBatch) -> BatchResult:
        """Execute a batch on the configured executor, in order."""
        results = self.executor.run(batch.requests, cache=self.cache)
        return BatchResult(requests=batch.requests, results=tuple(results))

    def evaluate_strategy(
        self,
        strategy: Strategy,
        loops: Sequence[ArbitrageLoop],
        prices: PriceMap,
    ) -> list[StrategyResult]:
        """One strategy over many loops at one price map.

        On the serial executor, loops under a fixed-start strategy
        (any solver method, weighted hops included) take the
        cross-loop batch kernels; everything else — and everything
        when ``vectorize=False`` — evaluates scalar, with identical
        numbers either way.
        """
        if isinstance(self.executor, SerialExecutor):
            picked = self._batch_evaluator([strategy], loops)
            if picked is not None:
                evaluator, indices = picked
                return evaluator.evaluate_many(
                    strategy, prices, indices=indices, cache=self.cache
                )
            return strategy.evaluate_many(loops, prices, cache=self.cache)
        batch = EvaluationBatch.cross({strategy.name: strategy}, loops, prices)
        return list(self.run(batch).results)

    def evaluate_loops(
        self,
        strategies: Mapping[str, Strategy],
        loops: Sequence[ArbitrageLoop],
        prices: PriceMap,
    ) -> dict[str, list[StrategyResult]]:
        """Several labeled strategies over many loops at one price map.

        The batch evaluator (arrays + compiled hop matrices) is built
        once and shared across all labels.
        """
        with trace.span(
            "engine.evaluate_loops", loops=len(loops), strategies=len(strategies)
        ):
            return self._evaluate_loops(strategies, loops, prices)

    def _evaluate_loops(
        self,
        strategies: Mapping[str, Strategy],
        loops: Sequence[ArbitrageLoop],
        prices: PriceMap,
    ) -> dict[str, list[StrategyResult]]:
        if isinstance(self.executor, SerialExecutor):
            picked = self._batch_evaluator(strategies.values(), loops)
            if picked is not None:
                evaluator, indices = picked
                return {
                    label: evaluator.evaluate_many(
                        strategy, prices, indices=indices, cache=self.cache
                    )
                    for label, strategy in strategies.items()
                }
            return {
                label: strategy.evaluate_many(loops, prices, cache=self.cache)
                for label, strategy in strategies.items()
            }
        batch = EvaluationBatch.cross(strategies, loops, prices)
        grouped = self.run(batch).by_label()
        # preserve the caller's label order, including empty loop lists
        return {label: grouped.get(label, []) for label in strategies}

    def _batch_evaluator(self, strategies, loops):
        """``(evaluator, indices)`` routing ``loops`` through the batch
        kernel, or ``None`` when the batch path cannot win
        (vectorization off, batch too small, or no batchable strategy
        in the mix).

        A memoized evaluator whose compiled loop set covers every
        requested loop (by object identity — e.g. a universe's filtered
        sub-list on a later harvest round) is reused after a reserve
        refresh; otherwise a fresh one is compiled and memoized.
        ``indices`` maps the request onto the evaluator's positions
        (``None`` means "all, in order" for a fresh build).
        """
        if not self.vectorize or len(loops) < _MIN_BATCH_LOOPS:
            return None
        from ..market import BatchEvaluator, batch_kind

        if all(batch_kind(strategy) is None for strategy in strategies):
            return None
        for key in reversed(self._batch_evaluators):
            evaluator = self._batch_evaluators[key]
            indices = evaluator.positions_for(loops)
            if indices is not None:
                self._batch_evaluators.move_to_end(key)
                evaluator.refresh()
                return evaluator, indices
        evaluator = BatchEvaluator(loops)
        self._batch_evaluator_counter += 1
        self._batch_evaluators[self._batch_evaluator_counter] = evaluator
        if len(self._batch_evaluators) > self._max_batch_evaluators:
            self._batch_evaluators.popitem(last=False)
        return evaluator, None

    def sweep_results(
        self,
        strategies: Mapping[str, Strategy],
        loop: ArbitrageLoop,
        base_prices: PriceMap,
        token: Token,
        grid,
    ) -> dict[str, list[StrategyResult]]:
        """Every strategy across a price grid of one token.

        Strategies with a vectorized ``evaluate_grid`` override take
        the numpy fast path; the rest (and everything when
        ``vectorize=False``) go point-by-point through the executor.
        """
        from .vectorized import is_vectorizable_loop

        out: dict[str, list[StrategyResult]] = {}
        vectorizable_loop = is_vectorizable_loop(loop)
        scalar_labels: dict[str, Strategy] = {}
        for label, strategy in strategies.items():
            has_fast_path = (
                type(strategy).evaluate_grid is not Strategy.evaluate_grid
            )
            if self.vectorize and has_fast_path and vectorizable_loop:
                out[label] = strategy.evaluate_grid(
                    loop, base_prices, token, grid, cache=self.cache
                )
            else:
                scalar_labels[label] = strategy
        if scalar_labels:
            # one batch for every scalar series: the executor (and any
            # process-pool spin-up) is paid once, not once per label
            batch = EvaluationBatch.sweep(
                scalar_labels, loop, base_prices, token, grid
            )
            grouped = self.run(batch).by_label()
            for label in scalar_labels:
                out[label] = grouped.get(label, [])
        # preserve the caller's label order
        return {label: out[label] for label in strategies}

    # ------------------------------------------------------------------
    # loop detection
    # ------------------------------------------------------------------

    def loop_universe(
        self, pools: Iterable[Pool], length: int
    ) -> LoopUniverse:
        """Memoized :class:`LoopUniverse` for a pool topology.

        Re-enumerates only when the pool set itself changes (pools
        created or destroyed); reserve changes reuse the universe.
        """
        pool_list = list(pools)
        key = _universe_key(pool_list, length)
        universe = self._universes.get(key)
        if universe is None:
            universe = LoopUniverse(pool_list, length)
            self._universes[key] = universe
            if len(self._universes) > self._max_universes:
                self._universes.popitem(last=False)
        else:
            self._universes.move_to_end(key)
        return universe

    def find_profitable_loops(
        self, pools: Iterable[Pool], length: int, tol: float = 0.0
    ) -> list[ArbitrageLoop]:
        """Drop-in for ``find_arbitrage_loops(build_token_graph(pools),
        length)`` with topology caching."""
        return self.loop_universe(pools, length).profitable(tol)

    def count_profitable_loops(
        self, pools: Iterable[Pool], length: int, tol: float = 0.0
    ) -> int:
        return self.loop_universe(pools, length).count_profitable(tol)
