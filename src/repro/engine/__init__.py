"""Batched evaluation engine (DESIGN: one pipeline for loops ×
strategies × scenarios).

Public surface:

* :class:`EvaluationEngine` — the orchestrator every consumer routes
  through (sweeps, figures, harvest, simulation, CLI);
* :class:`EvaluationRequest` / :class:`EvaluationBatch` /
  :class:`BatchResult` — the job model;
* :class:`SerialExecutor` / :class:`ParallelExecutor` — execution
  backends with identical, deterministic results;
* :class:`PoolStateCache` — reserve-keyed memoization of
  price-independent rotation quotes;
* :class:`LoopUniverse` — topology-cached candidate loops with cheap
  per-block profitability re-filtering;
* the vectorized grid kernels in :mod:`repro.engine.vectorized`.
"""

from .cache import PoolStateCache, RotationQuote, rotation_state_key
from .core import EvaluationEngine, LoopUniverse
from .executors import Executor, ParallelExecutor, SerialExecutor
from .request import BatchResult, EvaluationBatch, EvaluationRequest
from .vectorized import (
    is_vectorizable_loop,
    maxmax_grid,
    maxprice_grid,
    traditional_grid,
)

__all__ = [
    "BatchResult",
    "EvaluationBatch",
    "EvaluationEngine",
    "EvaluationRequest",
    "Executor",
    "LoopUniverse",
    "ParallelExecutor",
    "PoolStateCache",
    "RotationQuote",
    "SerialExecutor",
    "is_vectorizable_loop",
    "maxmax_grid",
    "maxprice_grid",
    "rotation_state_key",
    "traditional_grid",
]
