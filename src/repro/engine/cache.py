"""Reserve-keyed memoization of price-independent evaluation work.

The fixed-start strategies (traditional / MaxPrice / MaxMax) split
cleanly into a price-independent optimization — optimal input, hop
amounts, single-token profit, all functions of the *reserves* only —
and a trivial monetization step.  :class:`PoolStateCache` memoizes the
former, keyed on each hop's ``(pool_id, input token, reserves, fee)``,
so:

* a price sweep re-evaluating one loop at hundreds of CEX prices pays
  for the optimization exactly once per rotation;
* a harvest / simulation round re-evaluating loops whose pools did not
  move since the last round gets its quotes for free;
* any pool mutation (swap, mint, burn) changes the reserves and hence
  the key — stale entries are simply never hit again, so the cache
  needs no explicit invalidation.

Entries are evicted LRU once ``maxsize`` is exceeded.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.loop import Rotation
from ..strategies.traditional import RotationQuote, rotation_quote

__all__ = ["PoolStateCache", "RotationQuote", "rotation_state_key"]


def rotation_state_key(rotation: Rotation, method: str) -> tuple:
    """Hashable key identifying a rotation *at its current reserves*.

    Includes the optimizer method (quotes differ across methods by
    solver tolerance) and, per hop, the pool identity, orientation,
    oriented reserves, and fee.  Weighted-pool weights are immutable
    attributes of the pool identified by ``pool_id``, so reserves +
    identity pin the quote for them too.

    The static part (pool ids, symbols, fees — everything but the
    reserves) is precomputed once per loop
    (:attr:`repro.core.loop.ArbitrageLoop.rotation_key_statics`), so a
    lookup only gathers the current reserves; on the hot per-block
    paths this key is built once per rotation per cache access.
    """
    static, hop_refs = rotation.loop.rotation_key_statics[rotation.offset]
    reserves = []
    for pool, token_in, is_token0 in hop_refs:
        if is_token0 is None:
            reserves.append(pool.reserves_oriented(token_in))
        elif is_token0:
            reserves.append((pool.reserve0, pool.reserve1))
        else:
            reserves.append((pool.reserve1, pool.reserve0))
    return (method, static, tuple(reserves))


class PoolStateCache:
    """LRU cache of :class:`RotationQuote` objects keyed on reserves.

    Thread-compatible for the serial executor; the process-pool
    executor gives each worker chunk its own instance instead of
    sharing one across processes.
    """

    __slots__ = ("_entries", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 65536):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._entries: OrderedDict[tuple, RotationQuote] = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def rotation_quote(
        self, rotation: Rotation, method: str = "closed_form"
    ) -> RotationQuote:
        """Memoized :func:`repro.strategies.traditional.rotation_quote`."""
        key = rotation_state_key(rotation, method)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        quote = rotation_quote(rotation, method=method)
        self._entries[key] = quote
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return quote

    # ------------------------------------------------------------------
    # bulk transfer (parallel executor seeding / merge-back)
    # ------------------------------------------------------------------

    def export_entries(self) -> dict[tuple, RotationQuote]:
        """Snapshot of the stored quotes, for seeding worker caches."""
        return dict(self._entries)

    def merge_entries(self, entries: dict[tuple, RotationQuote]) -> None:
        """Absorb quotes computed elsewhere (e.g. in worker processes).

        Keys are reserve-exact, so merged entries are as sound as
        locally computed ones; normal LRU eviction applies.
        """
        for key, quote in entries.items():
            self._entries[key] = quote
            self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot (feeds the service's cache hit-rate metric)."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def publish(self, registry, **labels) -> None:
        """Mirror the counters into a telemetry registry
        (``cache_hits`` / ``cache_misses`` counters plus a
        ``cache_entries`` gauge).  The hot path keeps the plain int
        attributes; syncing happens at publish points."""
        registry.counter("cache_hits", **labels).set(self.hits)
        registry.counter("cache_misses", **labels).set(self.misses)
        registry.gauge("cache_entries", **labels).set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"PoolStateCache({len(self._entries)} entries, "
            f"hits={self.hits}, misses={self.misses})"
        )
