"""The batched-evaluation job model.

An :class:`EvaluationRequest` is one atomic unit of work — evaluate one
strategy on one loop under one price map.  An :class:`EvaluationBatch`
expresses a whole experiment ("these strategies over these loops at
these price points") as one job, so every consumer — price sweeps,
scatter figures, harvesting, the CLI — feeds the same pipeline instead
of hand-rolling its own ``for`` loops.

Batches are plain data: they can be chunked, shipped to worker
processes, and reassembled deterministically.  :class:`BatchResult`
keeps requests and results aligned in submission order and offers the
reshaping accessors the figure harnesses need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..core.loop import ArbitrageLoop
from ..core.types import PriceMap, Token
from ..strategies.base import Strategy, StrategyResult

__all__ = ["EvaluationRequest", "EvaluationBatch", "BatchResult"]


@dataclass(frozen=True)
class EvaluationRequest:
    """One (strategy, loop, prices) evaluation.

    ``label`` groups requests belonging to one logical series (a
    strategy label in a sweep, a figure axis); ``loop_index`` and
    ``price_index`` record the request's coordinates in the batch's
    loop list / price grid so results can be reshaped without
    re-deriving positions.
    """

    strategy: Strategy
    loop: ArbitrageLoop
    prices: PriceMap
    label: str = ""
    loop_index: int = 0
    price_index: int | None = None


@dataclass(frozen=True)
class EvaluationBatch:
    """An ordered collection of evaluation requests."""

    requests: tuple[EvaluationRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[EvaluationRequest]:
        return iter(self.requests)

    @classmethod
    def cross(
        cls,
        strategies: Mapping[str, Strategy],
        loops: Sequence[ArbitrageLoop],
        prices: PriceMap,
    ) -> "EvaluationBatch":
        """The cross product: every strategy on every loop, one price map.

        Request order is strategy-major (all loops of the first label,
        then the next), matching how the scatter figures consume them.
        """
        requests = tuple(
            EvaluationRequest(
                strategy=strategy,
                loop=loop,
                prices=prices,
                label=label,
                loop_index=index,
            )
            for label, strategy in strategies.items()
            for index, loop in enumerate(loops)
        )
        return cls(requests)

    @classmethod
    def sweep(
        cls,
        strategies: Mapping[str, Strategy],
        loop: ArbitrageLoop,
        base_prices: PriceMap,
        token: Token,
        grid,
    ) -> "EvaluationBatch":
        """A price sweep: every strategy at every grid value of one token."""
        price_maps = [
            base_prices.with_price(token, float(price)) for price in grid
        ]
        requests = tuple(
            EvaluationRequest(
                strategy=strategy,
                loop=loop,
                prices=prices,
                label=label,
                loop_index=0,
                price_index=index,
            )
            for label, strategy in strategies.items()
            for index, prices in enumerate(price_maps)
        )
        return cls(requests)


@dataclass(frozen=True)
class BatchResult:
    """Results aligned one-to-one with the submitted requests."""

    requests: tuple[EvaluationRequest, ...]
    results: tuple[StrategyResult, ...]

    def __post_init__(self) -> None:
        if len(self.requests) != len(self.results):
            raise ValueError(
                f"{len(self.requests)} requests but {len(self.results)} results"
            )

    def __len__(self) -> int:
        return len(self.results)

    def by_label(self) -> dict[str, list[StrategyResult]]:
        """Results grouped by request label, preserving request order."""
        grouped: dict[str, list[StrategyResult]] = {}
        for request, result in zip(self.requests, self.results):
            grouped.setdefault(request.label, []).append(result)
        return grouped

    def for_label(self, label: str) -> list[StrategyResult]:
        return [
            result
            for request, result in zip(self.requests, self.results)
            if request.label == label
        ]
