"""Curve-style amplified-invariant stableswap pools (two-asset).

The paper's strategies only need each hop's swap map to be increasing
and concave; that also holds for Curve's *stableswap* family, which
interpolates between constant-sum (``x + y = const``, ideal for pegged
assets) and constant-product as reserves drift off balance.  For two
assets with amplification ``A`` (``ann = A * n**n = 4A``) the invariant
``D`` satisfies

    4A * (x + y) + D  =  4A * D + D**3 / (4 * x * y)

``D`` is found by the classic fixed-point/Newton iteration
(:func:`calculate_d`); the out-side reserve on the curve, given the new
in-side reserve, by the companion iteration :func:`calculate_y`.  An
exact-in swap is then ``dy = y - Y(x + gamma * dx)`` and the marginal
rate is ``gamma`` times the curve slope

    -dy/dx  =  (4A + D^3/(4 x^2 y)) / (4A + D^3/(4 x y^2))

(:func:`invariant_rate`).

Parity contract with the columnar kernel
----------------------------------------
Both iterations use **only** ``+ - * /`` — correctly-rounded IEEE-754
operations — and the batched lockstep twins in
:mod:`repro.market.solvers` replay the *same operation order* per row,
freezing converged rows with the PR-5 converged-mask pattern.  Unlike
the weighted family (whose ``pow`` is not correctly rounded), scalar
and batched stableswap quotes therefore agree bit for bit wherever
float64 arithmetic is IEEE-compliant; ``STABLESWAP_PARITY_RTOL`` in
:mod:`repro.market.weighted_kernel` documents the portable contract.
Keep every expression here in lockstep with
``batched_stableswap_d`` / ``batched_stableswap_y`` — reordering an
operand is a parity break, not a style fix.
"""

from __future__ import annotations

import itertools
import math

from ..core.errors import InvalidReserveError, SolverConvergenceError, UnknownTokenError
from ..core.types import Token
from .events import BurnEvent, MarketEvent, MintEvent, SwapEvent
from .families import FAMILY_STABLESWAP
from .swap import validate_fee, validate_reserves

__all__ = [
    "DEFAULT_AMPLIFICATION",
    "DEFAULT_STABLESWAP_FEE",
    "STABLESWAP_MAX_ITER",
    "STABLESWAP_TOL",
    "StableSwapPool",
    "StableSwapSnapshot",
    "calculate_d",
    "calculate_y",
    "invariant_rate",
]

_stable_counter = itertools.count()

#: Curve mainnet stable pools commonly run A in the tens-to-hundreds.
DEFAULT_AMPLIFICATION = 80.0
#: Curve's classic stable-pool fee (4 bps) — lower than CPMM's 30 bps.
DEFAULT_STABLESWAP_FEE = 0.0004

#: Relative convergence tolerance shared by the scalar and batched
#: solvers (the iterations are Newton-quadratic; a handful of steps
#: reach it from the ``x + y`` / ``D`` warm starts).
STABLESWAP_TOL = 1e-14
#: Iteration cap shared by the scalar and batched solvers.
STABLESWAP_MAX_ITER = 256


def calculate_d(x: float, y: float, amp: float) -> float:
    """Invariant ``D`` of a two-asset stableswap pool.

    Fixed-point iteration on ``D`` (Curve's ``get_D``, specialized to
    ``n = 2`` so ``ann = 4 * amp``), starting from the constant-sum
    solution ``x + y``.  Operation order is pinned — the batched twin
    ``repro.market.solvers.batched_stableswap_d`` replays it per row.
    """
    s = x + y
    if s == 0.0:
        return 0.0
    ann = 4.0 * amp
    d = s
    for _ in range(STABLESWAP_MAX_ITER):
        d_p = d * d / (2.0 * x) * d / (2.0 * y)
        d_prev = d
        d = (ann * s + 2.0 * d_p) * d / ((ann - 1.0) * d + 3.0 * d_p)
        if abs(d - d_prev) <= STABLESWAP_TOL * max(1.0, d):
            return d
    raise SolverConvergenceError(
        f"stableswap D iteration did not converge for "
        f"x={x!r}, y={y!r}, amp={amp!r}"
    )


def calculate_y(x: float, d: float, amp: float) -> float:
    """Out-side reserve on the invariant curve, given in-side ``x``.

    Newton iteration on ``y**2 + (b - D) * y = c`` with
    ``b = x + D/ann`` and ``c = D**3 / (4 * x * ann)`` (Curve's
    ``get_y``, ``n = 2``), starting from ``D``.  Operation order is
    pinned — ``repro.market.solvers.batched_stableswap_y`` replays it.
    """
    ann = 4.0 * amp
    c = d * d / (2.0 * x) * d / (2.0 * ann)
    b = x + d / ann
    y = d
    for _ in range(STABLESWAP_MAX_ITER):
        y_prev = y
        y = (y * y + c) / (2.0 * y + b - d)
        if abs(y - y_prev) <= STABLESWAP_TOL * max(1.0, y):
            return y
    raise SolverConvergenceError(
        f"stableswap Y iteration did not converge for "
        f"x={x!r}, d={d!r}, amp={amp!r}"
    )


def invariant_rate(x: float, y: float, d: float, amp: float) -> float:
    """Curve slope ``-dy/dx`` at ``(x, y)`` on the invariant ``d``.

    ``(4A + D^3/(4 x^2 y)) / (4A + D^3/(4 x y^2))`` — implicit
    differentiation of the invariant.  The shared factor is computed as
    ``d/x * d/y * d/4`` so magnitudes stay near the reserve scale
    instead of cubing ``d`` (which overflows first); the batched twin
    uses the identical grouping.
    """
    ann = 4.0 * amp
    term = d / x * d / y * d / 4.0
    return (ann + term / x) / (ann + term / y)


class StableSwapSnapshot:
    """Frozen reserves of a stableswap pool (atomic revert support)."""

    __slots__ = ("pool_id", "reserve0", "reserve1", "amplification", "fee")

    def __init__(self, pool_id, reserve0, reserve1, amplification, fee):
        self.pool_id = pool_id
        self.reserve0 = reserve0
        self.reserve1 = reserve1
        self.amplification = amplification
        self.fee = fee


class StableSwapPool:
    """A two-token amplified-invariant (Curve-style) pool.

    Implements the same duck interface as
    :class:`~repro.amm.pool.Pool` / :class:`~repro.amm.weighted.WeightedPool`
    (``quote_out``, ``spot_price``, ``marginal_rate``,
    ``reserves_oriented``, ``swap``, events, snapshot/restore), so
    loops, strategies, replay, and the columnar market layer take it
    without special cases; the linear-fractional composition algebra is
    constant-product-specific and refuses it (``is_constant_product``
    stays ``False``), routing scalar optimization through the generic
    chain-rule path.

    Parameters
    ----------
    token0, token1:
        The pooled tokens (normalized so token0.symbol < token1.symbol).
    reserve0, reserve1:
        Reserves matching the argument order before normalization.
    amplification:
        Curve's ``A`` (>= 1); higher values hug constant-sum longer.
        ``A -> inf`` is constant-sum, ``A`` small approaches
        constant-product behaviour.
    fee:
        Swap fee on the input side, default 4 bps.
    """

    is_constant_product = False
    family = FAMILY_STABLESWAP

    __slots__ = (
        "_token0", "_token1", "_reserve0", "_reserve1",
        "_amplification", "_fee", "_pool_id", "_events",
    )

    def __init__(
        self,
        token0: Token,
        token1: Token,
        reserve0: float,
        reserve1: float,
        amplification: float = DEFAULT_AMPLIFICATION,
        fee: float = DEFAULT_STABLESWAP_FEE,
        pool_id: str | None = None,
    ):
        if token0 == token1:
            raise InvalidReserveError(
                f"a pool needs two distinct tokens, got {token0} twice"
            )
        validate_reserves(reserve0, reserve1)
        validate_fee(fee)
        if not (math.isfinite(amplification) and amplification >= 1.0):
            raise InvalidReserveError(
                f"amplification must be finite and >= 1, got {amplification}"
            )
        if token1.symbol < token0.symbol:
            token0, token1 = token1, token0
            reserve0, reserve1 = reserve1, reserve0
        self._token0 = token0
        self._token1 = token1
        self._reserve0 = float(reserve0)
        self._reserve1 = float(reserve1)
        self._amplification = float(amplification)
        self._fee = float(fee)
        self._pool_id = (
            pool_id if pool_id is not None else f"spool-{next(_stable_counter)}"
        )
        self._events: list[MarketEvent] = []

    # ------------------------------------------------------------------
    # identity & orientation
    # ------------------------------------------------------------------

    @property
    def pool_id(self) -> str:
        return self._pool_id

    @property
    def token0(self) -> Token:
        return self._token0

    @property
    def token1(self) -> Token:
        return self._token1

    @property
    def tokens(self) -> tuple[Token, Token]:
        return (self._token0, self._token1)

    @property
    def fee(self) -> float:
        return self._fee

    @property
    def amplification(self) -> float:
        return self._amplification

    @property
    def reserve0(self) -> float:
        """Current reserve of ``token0`` (duck-parity with ``Pool``)."""
        return self._reserve0

    @property
    def reserve1(self) -> float:
        """Current reserve of ``token1``."""
        return self._reserve1

    @property
    def events(self) -> tuple[MarketEvent, ...]:
        return tuple(self._events)

    @property
    def event_count(self) -> int:
        return len(self._events)

    @property
    def last_event(self) -> MarketEvent | None:
        return self._events[-1] if self._events else None

    def events_after(self, count: int) -> tuple[MarketEvent, ...]:
        return tuple(self._events[count:])

    def discard_events_after(self, count: int) -> None:
        """Drop events recorded after the first ``count`` (revert support)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        del self._events[count:]

    def __contains__(self, token: Token) -> bool:
        return token == self._token0 or token == self._token1

    def other(self, token: Token) -> Token:
        if token == self._token0:
            return self._token1
        if token == self._token1:
            return self._token0
        raise UnknownTokenError(f"{token} is not in {self!r}")

    def reserve_of(self, token: Token) -> float:
        if token == self._token0:
            return self._reserve0
        if token == self._token1:
            return self._reserve1
        raise UnknownTokenError(f"{token} is not in {self!r}")

    def reserves_oriented(self, token_in: Token) -> tuple[float, float]:
        return (self.reserve_of(token_in), self.reserve_of(self.other(token_in)))

    def __repr__(self) -> str:
        return (
            f"StableSwapPool({self._pool_id}: {self._reserve0:g} "
            f"{self._token0.symbol} / {self._reserve1:g} {self._token1.symbol}, "
            f"A={self._amplification:g}, fee={self._fee})"
        )

    # ------------------------------------------------------------------
    # quotes
    # ------------------------------------------------------------------

    def invariant(self) -> float:
        """Current invariant ``D`` of the pool."""
        return calculate_d(self._reserve0, self._reserve1, self._amplification)

    def quote_out(self, token_in: Token, amount_in: float) -> float:
        """Exact-in: ``dy = y - Y(x + gamma * dx)`` on the invariant.

        ``amount_in == 0`` short-circuits to exactly ``0.0`` — the
        Newton residual (~``STABLESWAP_TOL * y``) would otherwise make
        a zero-size quote nonzero; the batched kernel replicates the
        guard with a ``where`` mask so the paths stay in lockstep.
        """
        if not math.isfinite(amount_in) or amount_in < 0:
            raise ValueError(f"input amount must be >= 0 and finite, got {amount_in}")
        if amount_in == 0.0:
            return 0.0
        x, y = self.reserves_oriented(token_in)
        gamma = 1.0 - self._fee
        d = calculate_d(x, y, self._amplification)
        y_new = calculate_y(x + gamma * amount_in, d, self._amplification)
        return y - y_new

    def spot_price(self, token_in: Token) -> float:
        """Fee-adjusted marginal price at zero size: ``gamma * (-dy/dx)``."""
        x, y = self.reserves_oriented(token_in)
        d = calculate_d(x, y, self._amplification)
        return (1.0 - self._fee) * invariant_rate(x, y, d, self._amplification)

    def marginal_rate(self, token_in: Token, amount_in: float) -> float:
        """``d(amount_out)/d(amount_in)`` at trade size ``amount_in``:
        ``gamma`` times the curve slope at ``(x + gamma*t, Y(x + gamma*t))``.
        """
        if not math.isfinite(amount_in) or amount_in < 0:
            raise ValueError(f"input amount must be >= 0 and finite, got {amount_in}")
        x, y = self.reserves_oriented(token_in)
        gamma = 1.0 - self._fee
        d = calculate_d(x, y, self._amplification)
        x_cur = x + gamma * amount_in
        if amount_in == 0.0:
            y_cur = y
        else:
            y_cur = calculate_y(x_cur, d, self._amplification)
        return gamma * invariant_rate(x_cur, y_cur, d, self._amplification)

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------

    def swap(self, token_in: Token, amount_in: float) -> float:
        """Execute an exact-in swap; mutates reserves, logs an event."""
        token_out = self.other(token_in)
        amount_out = self.quote_out(token_in, amount_in)
        if token_in == self._token0:
            self._reserve0 += amount_in
            self._reserve1 -= amount_out
        else:
            self._reserve1 += amount_in
            self._reserve0 -= amount_out
        self._events.append(
            SwapEvent(
                pool_id=self._pool_id,
                token_in=token_in,
                token_out=token_out,
                amount_in=amount_in,
                amount_out=amount_out,
            )
        )
        return amount_out

    def copy(self) -> "StableSwapPool":
        return StableSwapPool(
            self._token0,
            self._token1,
            self._reserve0,
            self._reserve1,
            amplification=self._amplification,
            fee=self._fee,
            pool_id=self._pool_id,
        )

    def add_liquidity(self, amount0: float, amount1: float) -> None:
        """Proportional deposit (ratio-matched, like Pool.add_liquidity).

        ``D`` is homogeneous of degree 1 (scaling both reserves by
        ``k`` scales ``D`` by ``k``), so a ratio-matched deposit keeps
        the pool's balance point — the same protocol the other
        families use, and what replay's Mint events encode.
        """
        if amount0 <= 0 or amount1 <= 0:
            raise InvalidReserveError(
                f"liquidity amounts must be positive, got ({amount0}, {amount1})"
            )
        ratio_pool = self._reserve0 / self._reserve1
        ratio_in = amount0 / amount1
        if abs(ratio_in - ratio_pool) > 1e-3 * ratio_pool:
            raise InvalidReserveError(
                f"deposit ratio {ratio_in:g} does not match pool ratio "
                f"{ratio_pool:g} in {self._pool_id}"
            )
        self._reserve0 += amount0
        self._reserve1 += amount1
        self._events.append(
            MintEvent(pool_id=self._pool_id, amount0=amount0, amount1=amount1)
        )

    def remove_liquidity(self, fraction: float) -> tuple[float, float]:
        """Withdraw a fraction of both reserves."""
        if not 0.0 < fraction < 1.0:
            raise InvalidReserveError(f"fraction must be in (0, 1), got {fraction}")
        out0 = self._reserve0 * fraction
        out1 = self._reserve1 * fraction
        self._reserve0 -= out0
        self._reserve1 -= out1
        self._events.append(
            BurnEvent(
                pool_id=self._pool_id, fraction=fraction, amount0=out0, amount1=out1
            )
        )
        return (out0, out1)

    def tvl(self, prices) -> float:
        """Total value locked under a price map."""
        return (
            prices[self._token0] * self._reserve0
            + prices[self._token1] * self._reserve1
        )

    # ------------------------------------------------------------------
    # snapshot / restore (atomicity protocol shared with Pool)
    # ------------------------------------------------------------------

    def snapshot(self) -> StableSwapSnapshot:
        return StableSwapSnapshot(
            pool_id=self._pool_id,
            reserve0=self._reserve0,
            reserve1=self._reserve1,
            amplification=self._amplification,
            fee=self._fee,
        )

    def restore(self, snap: StableSwapSnapshot) -> None:
        if snap.pool_id != self._pool_id:
            raise ValueError(
                f"snapshot of {snap.pool_id} cannot restore {self._pool_id}"
            )
        self._reserve0 = snap.reserve0
        self._reserve1 = snap.reserve1
