"""Pool registry: the in-memory equivalent of the Uniswap V2 factory.

A :class:`PoolRegistry` owns a set of :class:`~repro.amm.pool.Pool`
objects, indexed by pool id and by token pair, and provides the
snapshot/restore primitives the atomic execution simulator builds on.
Unlike the real factory it permits *multiple* pools per token pair
(paper §VI treats every qualifying pool as a distinct graph edge).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..core.errors import UnknownTokenError
from ..core.types import Token
from .pool import Pool, PoolSnapshot

__all__ = ["PoolRegistry", "RegistrySnapshot"]


class RegistrySnapshot:
    """Frozen state of every pool in a registry at one instant."""

    __slots__ = ("_snaps",)

    def __init__(self, snaps: Mapping[str, PoolSnapshot]):
        self._snaps = dict(snaps)

    def __len__(self) -> int:
        return len(self._snaps)

    def __iter__(self) -> Iterator[PoolSnapshot]:
        return iter(self._snaps.values())

    def __getitem__(self, pool_id: str) -> PoolSnapshot:
        return self._snaps[pool_id]

    def __contains__(self, pool_id: str) -> bool:
        return pool_id in self._snaps


class PoolRegistry:
    """Mutable collection of pools with pair and token indices."""

    def __init__(self, pools: Iterable[Pool] = ()):
        self._pools: dict[str, Pool] = {}
        self._by_pair: dict[frozenset[Token], list[Pool]] = {}
        self._by_token: dict[Token, list[Pool]] = {}
        for pool in pools:
            self.add(pool)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pools)

    def __iter__(self) -> Iterator[Pool]:
        return iter(self._pools.values())

    def __contains__(self, pool_id: str) -> bool:
        return pool_id in self._pools

    def __getitem__(self, pool_id: str) -> Pool:
        try:
            return self._pools[pool_id]
        except KeyError:
            raise KeyError(f"no pool with id {pool_id!r}") from None

    def add(self, pool: Pool) -> Pool:
        """Register a pool; pool ids must be unique."""
        if pool.pool_id in self._pools:
            raise ValueError(f"duplicate pool id {pool.pool_id!r}")
        self._pools[pool.pool_id] = pool
        pair = frozenset(pool.tokens)
        self._by_pair.setdefault(pair, []).append(pool)
        for token in pool.tokens:
            self._by_token.setdefault(token, []).append(pool)
        return pool

    def create(
        self,
        token0: Token,
        token1: Token,
        reserve0: float,
        reserve1: float,
        fee: float = 0.003,
        pool_id: str | None = None,
    ) -> Pool:
        """Factory shorthand: build a pool and register it."""
        return self.add(Pool(token0, token1, reserve0, reserve1, fee=fee, pool_id=pool_id))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def tokens(self) -> frozenset[Token]:
        """All tokens that appear in at least one pool."""
        return frozenset(self._by_token)

    def pools_for_pair(self, token_a: Token, token_b: Token) -> tuple[Pool, ...]:
        """All pools (possibly several) between two tokens."""
        return tuple(self._by_pair.get(frozenset((token_a, token_b)), ()))

    def pools_with_token(self, token: Token) -> tuple[Pool, ...]:
        """All pools that hold ``token`` on either side."""
        if token not in self._by_token:
            raise UnknownTokenError(f"no pool holds {token}")
        return tuple(self._by_token[token])

    def best_pool_for_pair(self, token_in: Token, token_out: Token) -> Pool:
        """Among parallel pools, the one with the best spot price for
        ``token_in -> token_out`` (deterministic tie-break on pool id)."""
        candidates = self.pools_for_pair(token_in, token_out)
        if not candidates:
            raise UnknownTokenError(
                f"no pool between {token_in} and {token_out}"
            )
        return max(candidates, key=lambda p: (p.spot_price(token_in), p.pool_id))

    # ------------------------------------------------------------------
    # snapshot / restore (atomicity primitive)
    # ------------------------------------------------------------------

    def snapshot(self) -> RegistrySnapshot:
        return RegistrySnapshot({pid: p.snapshot() for pid, p in self._pools.items()})

    def restore(self, snap: RegistrySnapshot) -> None:
        """Roll every pool captured in ``snap`` back to its saved state.

        Pools added after the snapshot are left untouched; pools in the
        snapshot but since removed raise ``KeyError`` (registries are
        append-only in normal use, so this indicates a bug).
        """
        for pool_snap in snap:
            self._pools[pool_snap.pool_id].restore(pool_snap)

    def copy(self) -> "PoolRegistry":
        """Deep copy with independent pool states."""
        return PoolRegistry(pool.copy() for pool in self)
