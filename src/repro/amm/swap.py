"""Pure constant-product (Uniswap V2) swap math.

These are stateless functions over ``(x, y, fee)`` triples; the stateful
:class:`~repro.amm.pool.Pool` delegates to them.  Notation follows the
paper's Section III:

* ``x``, ``y`` — reserves of the input and output token;
* ``lam`` (λ) — the transaction tax (fee) rate, 0.003 on Uniswap V2;
* ``gamma`` (γ) = ``1 - lam``;
* exact-in swap:  ``dy = y - x*y / (x + gamma*dx)  =  y*gamma*dx / (x + gamma*dx)``;
* the invariant after an exact-in swap satisfies
  ``(x + gamma*dx) * (y - dy) = x*y`` exactly (up to float rounding).

All functions validate their arguments and raise subclasses of
:class:`~repro.core.errors.AmmError` on misuse.
"""

from __future__ import annotations

import math

from ..core.errors import (
    InsufficientLiquidityError,
    InvalidFeeError,
    InvalidReserveError,
)

__all__ = [
    "validate_reserves",
    "validate_fee",
    "amount_out",
    "amount_in",
    "spot_price",
    "effective_price",
    "marginal_rate",
    "max_amount_out",
]


def validate_reserves(x: float, y: float) -> None:
    """Raise :class:`InvalidReserveError` unless both reserves are positive finite."""
    for name, value in (("x", x), ("y", y)):
        if not math.isfinite(value) or value <= 0:
            raise InvalidReserveError(
                f"reserve {name} must be positive and finite, got {value}"
            )


def validate_fee(fee: float) -> None:
    """Raise :class:`InvalidFeeError` unless ``0 <= fee < 1``."""
    if not math.isfinite(fee) or not 0.0 <= fee < 1.0:
        raise InvalidFeeError(f"fee must satisfy 0 <= fee < 1, got {fee}")


def amount_out(x: float, y: float, dx: float, fee: float) -> float:
    """Output amount for an exact-in swap (paper eq. ``F(dx | theta)``).

    ``dy = y * gamma * dx / (x + gamma * dx)``.

    ``dx = 0`` returns 0; negative ``dx`` is rejected.
    """
    validate_reserves(x, y)
    validate_fee(fee)
    if not math.isfinite(dx) or dx < 0:
        raise ValueError(f"input amount must be >= 0 and finite, got {dx}")
    if dx == 0.0:
        return 0.0
    gamma = 1.0 - fee
    effective_in = gamma * dx
    return y * effective_in / (x + effective_in)


def amount_in(x: float, y: float, dy: float, fee: float) -> float:
    """Input amount needed for an exact-out swap (inverse of :func:`amount_out`).

    Solves ``dy = y*gamma*dx / (x + gamma*dx)`` for ``dx``:
    ``dx = x*dy / (gamma * (y - dy))``.

    Raises :class:`InsufficientLiquidityError` if ``dy >= y`` — a CPMM
    pool can never emit its entire reserve.
    """
    validate_reserves(x, y)
    validate_fee(fee)
    if not math.isfinite(dy) or dy < 0:
        raise ValueError(f"output amount must be >= 0 and finite, got {dy}")
    if dy == 0.0:
        return 0.0
    if dy >= y:
        raise InsufficientLiquidityError(
            f"cannot withdraw {dy} from a reserve of {y}"
        )
    gamma = 1.0 - fee
    return x * dy / (gamma * (y - dy))


def spot_price(x: float, y: float, fee: float) -> float:
    """Fee-adjusted relative price of the input token in output units.

    Paper §III: ``p_ij = (1 - lam) * r_j / r_i``.  This is the marginal
    exchange rate at zero trade size: ``d(amount_out)/d(dx)`` at
    ``dx = 0``.
    """
    validate_reserves(x, y)
    validate_fee(fee)
    return (1.0 - fee) * y / x


def effective_price(x: float, y: float, dx: float, fee: float) -> float:
    """Average execution price ``dy/dx`` for a trade of size ``dx``.

    Always below :func:`spot_price` for ``dx > 0`` (price slippage).
    """
    if dx <= 0:
        raise ValueError(f"trade size must be positive, got {dx}")
    return amount_out(x, y, dx, fee) / dx


def marginal_rate(x: float, y: float, dx: float, fee: float) -> float:
    """Derivative ``d(amount_out)/d(dx)`` at trade size ``dx``.

    ``F'(dx) = x*y*gamma / (x + gamma*dx)^2``.  Used by the bisection
    optimizer: a rotation's optimum is where the *composed* marginal
    rate equals 1 (paper Fig. 1).
    """
    validate_reserves(x, y)
    validate_fee(fee)
    if not math.isfinite(dx) or dx < 0:
        raise ValueError(f"input amount must be >= 0 and finite, got {dx}")
    gamma = 1.0 - fee
    denom = x + gamma * dx
    return x * y * gamma / (denom * denom)


def max_amount_out(y: float) -> float:
    """Supremum of extractable output: the full reserve ``y`` (never reached)."""
    return y
