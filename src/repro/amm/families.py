"""Pool-family codes — the integer taxonomy behind columnar dispatch.

Every pool class advertises an integer ``family`` attribute; the market
layer stores it in a per-row ``MarketArrays.family`` column (and in the
shared-memory segment) and routes batch application, loop compilation,
kernel quoting, and bound rules through the per-family descriptor
registry in :mod:`repro.market.families`.  Adding a pool family means
adding a code here, a pool class in ``amm/``, and one descriptor there —
no per-layer boolean surgery.

Codes are part of the shared-memory layout contract (``np.int8``
column), so they are append-only: never renumber an existing family.
"""

from __future__ import annotations

__all__ = [
    "FAMILY_CPMM",
    "FAMILY_G3M",
    "FAMILY_NAMES",
    "FAMILY_STABLESWAP",
    "pool_family",
]

#: Constant-product (Uniswap-V2-style) pools — ``x * y = k``.
FAMILY_CPMM = 0
#: Weighted constant-mean (Balancer-style G3M) pools — ``x^wx * y^wy = k``.
FAMILY_G3M = 1
#: Amplified-invariant (Curve-style stableswap) pools.
FAMILY_STABLESWAP = 2

FAMILY_NAMES = {
    FAMILY_CPMM: "cpmm",
    FAMILY_G3M: "g3m",
    FAMILY_STABLESWAP: "stableswap",
}


def pool_family(pool) -> int:
    """The family code of a pool-like object.

    Objects that predate the taxonomy (plain duck-typed pools in tests)
    default to CPMM, matching the old ``is_constant_product`` default.
    """
    return getattr(pool, "family", FAMILY_CPMM)
