"""Swap event records.

Mirrors the trade event log that McLaughlin et al. (paper ref [7]) mine
for historic arbitrages: every state-changing swap on a
:class:`~repro.amm.pool.Pool` appends one :class:`SwapEvent`.  The
execution simulator uses these to reconcile predicted vs realized
profits, and tests use them to assert exactly which swaps ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import Token

__all__ = ["SwapEvent"]


@dataclass(frozen=True)
class SwapEvent:
    """One executed swap: ``amount_in`` of ``token_in`` entered
    ``pool_id`` and ``amount_out`` of ``token_out`` left it."""

    pool_id: str
    token_in: Token
    token_out: Token
    amount_in: float
    amount_out: float

    def __str__(self) -> str:
        return (
            f"{self.amount_in:g} {self.token_in.symbol} -> "
            f"{self.amount_out:g} {self.token_out.symbol} @ {self.pool_id}"
        )
