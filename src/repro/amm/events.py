"""Typed market events: the canonical state-change vocabulary.

Mirrors the trade event log that McLaughlin et al. (paper ref [7]) mine
for historic arbitrages, widened from swaps alone to the full set of
state changes a live DEX market streams: swaps, liquidity mints and
burns, CEX price ticks, and block boundaries.  Every event carries the
``block`` it happened in, so an ordered sequence of events *is* a
replayable market history (see :mod:`repro.replay`).

Producers:

* :meth:`~repro.amm.pool.Pool.swap`, ``add_liquidity`` and
  ``remove_liquidity`` append the matching event to the pool's log;
* :class:`~repro.simulation.engine.SimulationEngine` stamps block
  numbers and collects everything its agents did into one
  :class:`~repro.replay.MarketEventLog`;
* :func:`~repro.replay.generate_event_stream` synthesizes seeded
  streams for benchmarks and tests.

The execution simulator uses pool event logs to reconcile predicted vs
realized profits, and tests use them to assert exactly which state
changes ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.types import Token

__all__ = [
    "BlockEvent",
    "BurnEvent",
    "MarketEvent",
    "MintEvent",
    "PriceTickEvent",
    "SwapEvent",
]


@dataclass(frozen=True)
class MarketEvent:
    """Base of the event family: anything that happened in some block.

    ``block`` is keyword-only so subclasses list their payload fields
    positionally; producers that do not know the block yet (e.g. a pool
    recording its own swaps) leave the default and the collector stamps
    it with :func:`dataclasses.replace`.
    """

    block: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class SwapEvent(MarketEvent):
    """One executed swap: ``amount_in`` of ``token_in`` entered
    ``pool_id`` and ``amount_out`` of ``token_out`` left it."""

    pool_id: str
    token_in: Token
    token_out: Token
    amount_in: float
    amount_out: float

    def __str__(self) -> str:
        return (
            f"{self.amount_in:g} {self.token_in.symbol} -> "
            f"{self.amount_out:g} {self.token_out.symbol} @ {self.pool_id}"
        )


@dataclass(frozen=True)
class MintEvent(MarketEvent):
    """A proportional liquidity deposit (V2 ``mint``): ``amount0`` /
    ``amount1`` entered ``pool_id`` in token0/token1 order."""

    pool_id: str
    amount0: float
    amount1: float

    def __str__(self) -> str:
        return f"mint {self.amount0:g} / {self.amount1:g} @ {self.pool_id}"


@dataclass(frozen=True)
class BurnEvent(MarketEvent):
    """A proportional liquidity withdrawal (V2 ``burn``): ``fraction``
    of both reserves left ``pool_id``; ``amount0`` / ``amount1`` record
    the realized outputs in token0/token1 order."""

    pool_id: str
    fraction: float
    amount0: float = 0.0
    amount1: float = 0.0

    def __str__(self) -> str:
        return f"burn {self.fraction:.4%} @ {self.pool_id}"


@dataclass(frozen=True)
class PriceTickEvent(MarketEvent):
    """A CEX quote update: ``token`` now trades at ``price`` USD."""

    token: Token
    price: float

    def __str__(self) -> str:
        return f"tick {self.token.symbol} = {self.price:g}"


@dataclass(frozen=True)
class BlockEvent(MarketEvent):
    """A block boundary marker: block ``block`` started.

    Carries no payload; it keeps empty blocks representable in a
    serialized stream (a block in which nothing traded still advances
    the clock, and a replay still emits its per-block report).
    """

    def __str__(self) -> str:
        return f"block {self.block}"
