"""Linear-fractional algebra of composed constant-product swaps.

The exact-in swap function of one CPMM hop,

    F(t) = y * gamma * t / (x + gamma * t),

is a *linear-fractional* (Moebius-like) map of the special form
``a*t / (b + c*t)`` with ``a = y*gamma``, ``b = x``, ``c = gamma``.
That form is closed under composition:

    F2(F1(t)) = a2*a1*t / (b2*b1 + (b2*c1 + c2*a1) * t),

so an entire arbitrage rotation ``X -> Y -> ... -> X`` collapses to a
single :class:`SwapComposition` with three coefficients.  This gives:

* O(1) evaluation of the composed output for any input;
* a *closed-form* optimal input.  Profit ``f(t) = a*t/(b+c*t) - t`` has
  ``f'(t) = a*b/(b+c*t)^2 - 1``, so ``f'(t*) = 0`` at

      t* = (sqrt(a*b) - b) / c,

  positive iff ``a > b`` (equivalently: the product of fee-adjusted
  spot prices around the loop exceeds 1 — the paper's arbitrage-loop
  condition).

The closed form is used by the fast strategies and cross-validated in
tests against bisection, golden-section search and hop-by-hop pool
simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["SwapComposition", "compose_hops", "IDENTITY"]


@dataclass(frozen=True)
class SwapComposition:
    """The map ``t -> a*t / (b + c*t)`` with ``a, b > 0`` and ``c >= 0``.

    ``c == 0`` degenerates to a linear map ``(a/b) * t`` (it arises only
    from the identity or zero-fee algebra edge cases, never from a real
    hop where ``c = gamma > 0``).
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.a) and math.isfinite(self.b) and math.isfinite(self.c)):
            raise ValueError(f"coefficients must be finite, got {self}")
        if self.a <= 0 or self.b <= 0 or self.c < 0:
            raise ValueError(
                f"need a > 0, b > 0, c >= 0, got a={self.a}, b={self.b}, c={self.c}"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_hop(cls, x: float, y: float, fee: float) -> "SwapComposition":
        """Composition representing a single pool hop with reserves (x, y)."""
        if x <= 0 or y <= 0:
            raise ValueError(f"reserves must be positive, got x={x}, y={y}")
        if not 0.0 <= fee < 1.0:
            raise ValueError(f"fee must satisfy 0 <= fee < 1, got {fee}")
        gamma = 1.0 - fee
        return cls(a=y * gamma, b=x, c=gamma)

    def then(self, nxt: "SwapComposition") -> "SwapComposition":
        """Composition ``nxt(self(t))`` — feed this map's output into ``nxt``."""
        return SwapComposition(
            a=self.a * nxt.a,
            b=self.b * nxt.b,
            c=nxt.b * self.c + nxt.c * self.a,
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def __call__(self, t: float) -> float:
        """Composed output for input ``t >= 0``."""
        if t < 0:
            raise ValueError(f"input must be >= 0, got {t}")
        if t == 0.0:
            return 0.0
        return self.a * t / (self.b + self.c * t)

    def derivative(self, t: float) -> float:
        """``d(output)/d(input)`` at ``t`` — equals ``a*b/(b+c*t)^2``."""
        if t < 0:
            raise ValueError(f"input must be >= 0, got {t}")
        denom = self.b + self.c * t
        return self.a * self.b / (denom * denom)

    def profit(self, t: float) -> float:
        """Round-trip profit ``self(t) - t``."""
        return self(t) - t

    # ------------------------------------------------------------------
    # arbitrage analytics
    # ------------------------------------------------------------------

    @property
    def rate_at_zero(self) -> float:
        """Marginal round-trip rate at zero input, ``a / b``.

        This is the product of fee-adjusted spot prices around the loop;
        the loop is an arbitrage loop iff it exceeds 1 (paper §III).
        """
        return self.a / self.b

    @property
    def is_profitable(self) -> bool:
        """True iff a strictly positive-profit input exists (``a > b``)."""
        return self.a > self.b

    @property
    def asymptote(self) -> float:
        """Supremum of achievable output, ``a / c`` (infinite input)."""
        if self.c == 0.0:
            return math.inf
        return self.a / self.c

    def optimal_input(self) -> float:
        """Closed-form profit-maximizing input ``t* = (sqrt(a*b) - b)/c``.

        Returns 0.0 when the loop is not profitable (the optimum of
        ``max(f, 0)`` is the boundary).  For ``c == 0`` (no slippage)
        profit grows without bound when profitable; that cannot arise
        from real hops, so we raise.
        """
        if not self.is_profitable:
            return 0.0
        if self.c == 0.0:
            raise ValueError("profitable slippage-free composition is unbounded")
        return (math.sqrt(self.a * self.b) - self.b) / self.c

    def optimal_profit(self) -> float:
        """Profit at the closed-form optimum: ``(sqrt(a) - sqrt(b))^2 / c``."""
        if not self.is_profitable:
            return 0.0
        root = math.sqrt(self.a) - math.sqrt(self.b)
        return root * root / self.c


#: The identity composition (output == input); unit of :func:`compose_hops`.
IDENTITY = SwapComposition(a=1.0, b=1.0, c=0.0)


def compose_hops(hops: Iterable[tuple[float, float, float]] | Sequence[tuple[float, float, float]]) -> SwapComposition:
    """Compose a sequence of hops given as ``(x, y, fee)`` triples.

    The first triple is the first pool entered.  An empty sequence
    yields :data:`IDENTITY`.
    """
    composed = IDENTITY
    for x, y, fee in hops:
        composed = composed.then(SwapComposition.from_hop(x, y, fee))
    return composed
