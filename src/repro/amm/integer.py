"""Exact integer Uniswap-V2 swap math (the contract's arithmetic).

The analysis layer works in real arithmetic, like the paper.  The
actual UniswapV2Library works in unsigned integers with floor
division and a hard-coded 0.3 % fee expressed as 997/1000:

    amountOut = amountIn * 997 * reserveOut
              / (reserveIn * 1000 + amountIn * 997)        (floor)

    amountIn  = reserveIn * amountOut * 1000
              / ((reserveOut - amountOut) * 997) + 1       (floor, +1)

This module reproduces that arithmetic exactly (arbitrary-precision
Python ints stand in for uint112/uint256) so the float layer can be
validated against it: floor rounding only ever *reduces* the output,
by less than one base unit.  With 18-decimal tokens one unit is 1e-18
of a token — negligible for profit estimates, but the property tests
pin the direction and magnitude of the discrepancy.

Fees generalize beyond the V2 constant: every function accepts a
``fee_numerator / fee_denominator`` pair (the *retained*-input
fraction, ``gamma`` as a rational), so V3-style parts-per-million
fee tiers — and the per-pool quantized fees the columnar integer
kernel (:mod:`repro.market.integer_kernel`) carries — use the same
arithmetic.  The defaults stay 997/1000.

:class:`IntegerPool` is a minimal stateful pair contract on this
arithmetic, mirroring :class:`~repro.amm.pool.Pool` closely enough for
the differential tests in ``tests/unit/test_integer_amm.py``.  Both
swap directions exist in both quoting modes: exact-in
(:meth:`IntegerPool.quote_out` / :meth:`IntegerPool.swap`) and
exact-out (:meth:`IntegerPool.quote_in` / :meth:`IntegerPool.swap_out`).
Multi-hop loops are quoted chain-exactly end-to-end by
:func:`loop_quote_out` / :func:`loop_quote_in` and executed (with
reserve mutation) by :func:`execute_loop` — the sequential reference
the batched integer kernel is asserted bit-identical against.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import InsufficientLiquidityError, InvalidReserveError

__all__ = [
    "FEE_NUMERATOR",
    "FEE_DENOMINATOR",
    "get_amount_out",
    "get_amount_in",
    "IntegerPool",
    "loop_quote_out",
    "loop_quote_in",
    "execute_loop",
]

#: The V2 fee as the contract encodes it: input is scaled by 997/1000.
FEE_NUMERATOR = 997
FEE_DENOMINATOR = 1000


def _validate_reserves(reserve_in: int, reserve_out: int) -> None:
    if reserve_in <= 0 or reserve_out <= 0:
        raise InvalidReserveError(
            f"INSUFFICIENT_LIQUIDITY: reserves ({reserve_in}, {reserve_out})"
        )


def _validate_fee(fee_numerator: int, fee_denominator: int) -> None:
    if not 0 < fee_numerator <= fee_denominator:
        raise ValueError(
            "fee must satisfy 0 < numerator <= denominator, got "
            f"{fee_numerator}/{fee_denominator}"
        )


def get_amount_out(
    amount_in: int,
    reserve_in: int,
    reserve_out: int,
    fee_numerator: int = FEE_NUMERATOR,
    fee_denominator: int = FEE_DENOMINATOR,
) -> int:
    """``UniswapV2Library.getAmountOut`` — exact integer semantics."""
    if amount_in <= 0:
        raise ValueError(f"INSUFFICIENT_INPUT_AMOUNT: {amount_in}")
    _validate_reserves(reserve_in, reserve_out)
    _validate_fee(fee_numerator, fee_denominator)
    amount_in_with_fee = amount_in * fee_numerator
    numerator = amount_in_with_fee * reserve_out
    denominator = reserve_in * fee_denominator + amount_in_with_fee
    return numerator // denominator


def get_amount_in(
    amount_out: int,
    reserve_in: int,
    reserve_out: int,
    fee_numerator: int = FEE_NUMERATOR,
    fee_denominator: int = FEE_DENOMINATOR,
) -> int:
    """``UniswapV2Library.getAmountIn`` — exact integer semantics.

    The ``+ 1`` makes the quote conservative: paying the returned
    amount always yields at least ``amount_out``.
    """
    if amount_out <= 0:
        raise ValueError(f"INSUFFICIENT_OUTPUT_AMOUNT: {amount_out}")
    _validate_reserves(reserve_in, reserve_out)
    _validate_fee(fee_numerator, fee_denominator)
    if amount_out >= reserve_out:
        raise InsufficientLiquidityError(
            f"cannot withdraw {amount_out} from a reserve of {reserve_out}"
        )
    numerator = reserve_in * amount_out * fee_denominator
    denominator = (reserve_out - amount_out) * fee_numerator
    return numerator // denominator + 1


class IntegerPool:
    """A stateful pair on exact contract arithmetic.

    Reserves are plain ints (base units, e.g. wei for 18-decimal
    tokens).  Only the swap path is modeled — no LP shares, no oracle
    accumulators — because that is all the arbitrage analysis touches.
    The fee is a per-pool rational (retained-input fraction), default
    the V2 constant 997/1000.
    """

    __slots__ = ("_reserve0", "_reserve1", "_fee_numerator", "_fee_denominator")

    def __init__(
        self,
        reserve0: int,
        reserve1: int,
        fee_numerator: int = FEE_NUMERATOR,
        fee_denominator: int = FEE_DENOMINATOR,
    ):
        if reserve0 <= 0 or reserve1 <= 0:
            raise InvalidReserveError(
                f"reserves must be positive ints, got ({reserve0}, {reserve1})"
            )
        _validate_fee(fee_numerator, fee_denominator)
        self._reserve0 = int(reserve0)
        self._reserve1 = int(reserve1)
        self._fee_numerator = int(fee_numerator)
        self._fee_denominator = int(fee_denominator)

    @property
    def reserves(self) -> tuple[int, int]:
        return (self._reserve0, self._reserve1)

    @property
    def fee_fraction(self) -> tuple[int, int]:
        """``(numerator, denominator)`` of the retained-input fraction."""
        return (self._fee_numerator, self._fee_denominator)

    @property
    def k(self) -> int:
        return self._reserve0 * self._reserve1

    def _oriented(self, zero_for_one: bool) -> tuple[int, int]:
        if zero_for_one:
            return self._reserve0, self._reserve1
        return self._reserve1, self._reserve0

    def quote_out(self, amount_in: int, zero_for_one: bool = True) -> int:
        """Exact-in quote; ``zero_for_one`` selects the direction."""
        reserve_in, reserve_out = self._oriented(zero_for_one)
        return get_amount_out(
            amount_in, reserve_in, reserve_out,
            self._fee_numerator, self._fee_denominator,
        )

    def quote_in(self, amount_out: int, zero_for_one: bool = True) -> int:
        """Exact-out quote: the input that guarantees ``amount_out``.

        ``zero_for_one`` names the direction of the *input* token, like
        :meth:`quote_out` — ``True`` pays token0 to withdraw token1.
        """
        reserve_in, reserve_out = self._oriented(zero_for_one)
        return get_amount_in(
            amount_out, reserve_in, reserve_out,
            self._fee_numerator, self._fee_denominator,
        )

    def swap(self, amount_in: int, zero_for_one: bool = True) -> int:
        """Execute an exact-in swap and mutate reserves."""
        amount_out = self.quote_out(amount_in, zero_for_one)
        if zero_for_one:
            self._reserve0 += amount_in
            self._reserve1 -= amount_out
        else:
            self._reserve1 += amount_in
            self._reserve0 -= amount_out
        return amount_out

    def swap_out(self, amount_out: int, zero_for_one: bool = True) -> int:
        """Execute an exact-out swap; returns the input paid.

        The input is :meth:`quote_in`'s conservative quote, so the
        pool's ``k`` never decreases (the ``+ 1`` rounds in the pool's
        favor, exactly like the contract).
        """
        amount_in = self.quote_in(amount_out, zero_for_one)
        if zero_for_one:
            self._reserve0 += amount_in
            self._reserve1 -= amount_out
        else:
            self._reserve1 += amount_in
            self._reserve0 -= amount_out
        return amount_in

    def __repr__(self) -> str:
        return f"IntegerPool({self._reserve0}, {self._reserve1})"


# ----------------------------------------------------------------------
# multi-hop loops
# ----------------------------------------------------------------------

#: One loop hop: the pool plus the input direction through it.
Hop = tuple


def loop_quote_out(
    hops: Sequence[tuple[IntegerPool, bool]], amount_in: int
) -> list[int]:
    """Chain-exact exact-in quote of a multi-hop loop.

    Returns the amounts vector ``[in, after hop 1, ..., out]`` —
    integer twin of :meth:`repro.core.loop.Rotation.simulate`.  An
    ``amount_in`` of 0 yields all zeros, and a hop whose floor-divided
    output hits 0 zeroes the rest of the path (there is nothing left
    to swap) — both cases mirror the float kernels' zero rows instead
    of raising like a single-hop :func:`get_amount_out` would.
    """
    if amount_in < 0:
        raise ValueError(f"input amount must be >= 0, got {amount_in}")
    amounts = [int(amount_in)]
    current = int(amount_in)
    for pool, zero_for_one in hops:
        current = (
            pool.quote_out(current, zero_for_one) if current > 0 else 0
        )
        amounts.append(current)
    return amounts


def loop_quote_in(
    hops: Sequence[tuple[IntegerPool, bool]], amount_out: int
) -> list[int]:
    """Chain-exact exact-out quote of a multi-hop loop.

    Walks the hops backwards with :func:`get_amount_in`, so
    ``amounts[0]`` is an input that guarantees at least ``amount_out``
    from the final hop (each hop's ``+ 1`` compounds conservatively —
    the property suite pins that paying ``amounts[0]`` forward yields
    ``>= amount_out``).  Raises
    :class:`~repro.core.errors.InsufficientLiquidityError` when any
    intermediate amount meets or exceeds its hop's out-side reserve.
    """
    if amount_out <= 0:
        raise ValueError(f"output amount must be > 0, got {amount_out}")
    amounts = [int(amount_out)]
    current = int(amount_out)
    for pool, zero_for_one in reversed(hops):
        current = pool.quote_in(current, zero_for_one)
        amounts.append(current)
    amounts.reverse()
    return amounts


def execute_loop(
    hops: Sequence[tuple[IntegerPool, bool]], amount_in: int
) -> list[int]:
    """Execute a loop's swaps in sequence, mutating every pool.

    Same amounts vector as :func:`loop_quote_out` when every pool
    appears at most once in ``hops``; with a repeated pool the later
    hop sees the earlier hop's post-swap reserves — exactly the
    on-chain semantics.  This is the sequential reference the batched
    integer kernel is asserted bit-identical against.
    """
    if amount_in < 0:
        raise ValueError(f"input amount must be >= 0, got {amount_in}")
    amounts = [int(amount_in)]
    current = int(amount_in)
    for pool, zero_for_one in hops:
        current = pool.swap(current, zero_for_one) if current > 0 else 0
        amounts.append(current)
    return amounts
