"""Exact integer Uniswap-V2 swap math (the contract's arithmetic).

The analysis layer works in real arithmetic, like the paper.  The
actual UniswapV2Library works in unsigned integers with floor
division and a hard-coded 0.3 % fee expressed as 997/1000:

    amountOut = amountIn * 997 * reserveOut
              / (reserveIn * 1000 + amountIn * 997)        (floor)

    amountIn  = reserveIn * amountOut * 1000
              / ((reserveOut - amountOut) * 997) + 1       (floor, +1)

This module reproduces that arithmetic exactly (arbitrary-precision
Python ints stand in for uint112/uint256) so the float layer can be
validated against it: floor rounding only ever *reduces* the output,
by less than one base unit.  With 18-decimal tokens one unit is 1e-18
of a token — negligible for profit estimates, but the property tests
pin the direction and magnitude of the discrepancy.

:class:`IntegerPool` is a minimal stateful pair contract on this
arithmetic, mirroring :class:`~repro.amm.pool.Pool` closely enough for
the differential tests in ``tests/unit/test_integer_amm.py``.
"""

from __future__ import annotations

from ..core.errors import InsufficientLiquidityError, InvalidReserveError

__all__ = [
    "FEE_NUMERATOR",
    "FEE_DENOMINATOR",
    "get_amount_out",
    "get_amount_in",
    "IntegerPool",
]

#: The V2 fee as the contract encodes it: input is scaled by 997/1000.
FEE_NUMERATOR = 997
FEE_DENOMINATOR = 1000


def _validate_reserves(reserve_in: int, reserve_out: int) -> None:
    if reserve_in <= 0 or reserve_out <= 0:
        raise InvalidReserveError(
            f"INSUFFICIENT_LIQUIDITY: reserves ({reserve_in}, {reserve_out})"
        )


def get_amount_out(amount_in: int, reserve_in: int, reserve_out: int) -> int:
    """``UniswapV2Library.getAmountOut`` — exact integer semantics."""
    if amount_in <= 0:
        raise ValueError(f"INSUFFICIENT_INPUT_AMOUNT: {amount_in}")
    _validate_reserves(reserve_in, reserve_out)
    amount_in_with_fee = amount_in * FEE_NUMERATOR
    numerator = amount_in_with_fee * reserve_out
    denominator = reserve_in * FEE_DENOMINATOR + amount_in_with_fee
    return numerator // denominator


def get_amount_in(amount_out: int, reserve_in: int, reserve_out: int) -> int:
    """``UniswapV2Library.getAmountIn`` — exact integer semantics.

    The ``+ 1`` makes the quote conservative: paying the returned
    amount always yields at least ``amount_out``.
    """
    if amount_out <= 0:
        raise ValueError(f"INSUFFICIENT_OUTPUT_AMOUNT: {amount_out}")
    _validate_reserves(reserve_in, reserve_out)
    if amount_out >= reserve_out:
        raise InsufficientLiquidityError(
            f"cannot withdraw {amount_out} from a reserve of {reserve_out}"
        )
    numerator = reserve_in * amount_out * FEE_DENOMINATOR
    denominator = (reserve_out - amount_out) * FEE_NUMERATOR
    return numerator // denominator + 1


class IntegerPool:
    """A stateful pair on exact contract arithmetic.

    Reserves are plain ints (base units, e.g. wei for 18-decimal
    tokens).  Only the swap path is modeled — no LP shares, no oracle
    accumulators — because that is all the arbitrage analysis touches.
    """

    __slots__ = ("_reserve0", "_reserve1")

    def __init__(self, reserve0: int, reserve1: int):
        if reserve0 <= 0 or reserve1 <= 0:
            raise InvalidReserveError(
                f"reserves must be positive ints, got ({reserve0}, {reserve1})"
            )
        self._reserve0 = int(reserve0)
        self._reserve1 = int(reserve1)

    @property
    def reserves(self) -> tuple[int, int]:
        return (self._reserve0, self._reserve1)

    @property
    def k(self) -> int:
        return self._reserve0 * self._reserve1

    def quote_out(self, amount_in: int, zero_for_one: bool = True) -> int:
        """Exact-in quote; ``zero_for_one`` selects the direction."""
        if zero_for_one:
            return get_amount_out(amount_in, self._reserve0, self._reserve1)
        return get_amount_out(amount_in, self._reserve1, self._reserve0)

    def swap(self, amount_in: int, zero_for_one: bool = True) -> int:
        """Execute an exact-in swap and mutate reserves."""
        amount_out = self.quote_out(amount_in, zero_for_one)
        if zero_for_one:
            self._reserve0 += amount_in
            self._reserve1 -= amount_out
        else:
            self._reserve1 += amount_in
            self._reserve0 -= amount_out
        return amount_out

    def __repr__(self) -> str:
        return f"IntegerPool({self._reserve0}, {self._reserve1})"
