"""Uniswap-V2-style constant-product AMM substrate (DESIGN.md S2/S3).

Public surface:

* pure swap math — :mod:`repro.amm.swap`;
* stateful pools — :class:`~repro.amm.pool.Pool`;
* pool collections — :class:`~repro.amm.registry.PoolRegistry`;
* the linear-fractional composition algebra that makes single-rotation
  optimization closed-form — :class:`~repro.amm.composition.SwapComposition`.
"""

from .composition import IDENTITY, SwapComposition, compose_hops
from .events import (
    BlockEvent,
    BurnEvent,
    MarketEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from .integer import (
    FEE_DENOMINATOR,
    FEE_NUMERATOR,
    IntegerPool,
    execute_loop,
    get_amount_in,
    get_amount_out,
    loop_quote_in,
    loop_quote_out,
)
from .families import (
    FAMILY_CPMM,
    FAMILY_G3M,
    FAMILY_NAMES,
    FAMILY_STABLESWAP,
    pool_family,
)
from .pool import DEFAULT_FEE, Pool, PoolSnapshot
from .registry import PoolRegistry, RegistrySnapshot
from .stableswap import StableSwapPool
from .weighted import WeightedPool
from .swap import (
    amount_in,
    amount_out,
    effective_price,
    marginal_rate,
    max_amount_out,
    spot_price,
)

__all__ = [
    "BlockEvent",
    "BurnEvent",
    "DEFAULT_FEE",
    "FAMILY_CPMM",
    "FAMILY_G3M",
    "FAMILY_NAMES",
    "FAMILY_STABLESWAP",
    "FEE_DENOMINATOR",
    "FEE_NUMERATOR",
    "IDENTITY",
    "IntegerPool",
    "MarketEvent",
    "MintEvent",
    "Pool",
    "PriceTickEvent",
    "PoolRegistry",
    "PoolSnapshot",
    "RegistrySnapshot",
    "StableSwapPool",
    "SwapComposition",
    "SwapEvent",
    "WeightedPool",
    "amount_in",
    "amount_out",
    "compose_hops",
    "effective_price",
    "execute_loop",
    "get_amount_in",
    "get_amount_out",
    "loop_quote_in",
    "loop_quote_out",
    "marginal_rate",
    "max_amount_out",
    "pool_family",
    "spot_price",
]
