"""Weighted constant-mean pools (Balancer-style G3M) — an extension.

The paper treats Uniswap V2's constant-product rule.  Its strategies,
however, only rely on each hop's swap function being concave and
increasing — which holds for the wider *geometric-mean* family used by
Balancer:

    invariant:  x^(w_x) * y^(w_y) = const
    exact-in:   dy = y * (1 - (x / (x + gamma*dx))^(w_x / w_y))
    spot price: gamma * (y / w_y) / (x / w_x)

With ``w_x == w_y`` this reduces exactly to the V2 formula (the test
suite pins that).  A :class:`WeightedPool` implements the same duck
interface as :class:`~repro.amm.pool.Pool` (``quote_out``,
``spot_price``, ``marginal_rate``, ``reserves_oriented``, ``swap``,
...), so :class:`~repro.core.loop.ArbitrageLoop` and the strategies
work on mixed loops — *except* the linear-fractional composition
algebra, which is constant-product-specific; the generic chain-rule
optimizer (:mod:`repro.optimize.chain`) covers weighted hops.

``is_constant_product`` distinguishes the families so the composition
path can refuse weighted pools instead of silently mis-pricing them.

All fractional powers route through :func:`pinned_pow` — the same
``np.power`` ufunc the columnar weighted kernel
(:mod:`repro.market.weighted_kernel`) applies array-wide — so the
scalar object path and the batched path agree bit for bit on any one
platform (see ``pinned_pow`` for why ``**`` would not).
"""

from __future__ import annotations

import itertools
import logging
import math

import numpy as np

from ..core.errors import InvalidReserveError, UnknownTokenError
from ..core.types import Token
from .events import BurnEvent, MarketEvent, MintEvent, SwapEvent
from .families import FAMILY_G3M
from .swap import validate_fee, validate_reserves

__all__ = ["WeightedPool", "WeightedPoolSnapshot", "pinned_pow"]

logger = logging.getLogger("repro.amm.weighted")

_weighted_counter = itertools.count()


def pinned_pow(base: float, exponent: float) -> float:
    """``base ** exponent`` via numpy's ``power`` ufunc.

    Unlike the other arithmetic in the AMM layer (whose ``+ - * /`` and
    ``sqrt`` are IEEE-754-pinned, making the constant-product kernels
    *bit-exact* against the object path), ``pow`` is not correctly
    rounded, and CPython's ``**`` and numpy's ``power`` can disagree by
    an ulp.  Every scalar weighted-pool quote therefore calls the same
    ufunc the batched weighted kernel applies array-wide: on any one
    platform the two paths then produce identical bits (the replay
    incremental-vs-full and service parity suites assert ``==``), while
    *cross*-platform reproducibility of weighted quotes is only
    guaranteed to the documented kernel tolerance.

    ``**``'s overflow contract is preserved: a non-finite result from
    finite operands raises ``OverflowError`` (where ``np.power`` alone
    would return ``inf`` and let a later ``inf/inf`` poison quotes
    with silent NaNs) — absurd-magnitude markets fail loudly on the
    scalar path, like the composition algebra's finiteness check does
    for constant-product coefficients.

    Callers pass ``base > 0`` (reserves and reserve ratios).  The
    common can't-overflow case — ``exponent * log2(base)`` safely
    under float64's 1024 exponent cap — skips the ``np.errstate``
    guard entirely; entering that context costs more than the pow
    itself, and this function sits inside the scalar chain
    optimizer's innermost loop.
    """
    if exponent * math.log2(base) < 1023.0:
        return float(np.power(base, exponent))
    with np.errstate(over="ignore"):
        result = float(np.power(base, exponent))
    if not math.isfinite(result) and math.isfinite(base) and math.isfinite(exponent):
        logger.warning(
            "pinned_pow(%r, %r) overflowed a float64; "
            "degenerate-magnitude market state fails loudly",
            base,
            exponent,
        )
        raise OverflowError(
            f"pow({base!r}, {exponent!r}) overflows a float64"
        )
    return result


class WeightedPoolSnapshot:
    """Frozen reserves of a weighted pool (atomic revert support)."""

    __slots__ = ("pool_id", "reserve0", "reserve1", "weight0", "weight1", "fee")

    def __init__(self, pool_id, reserve0, reserve1, weight0, weight1, fee):
        self.pool_id = pool_id
        self.reserve0 = reserve0
        self.reserve1 = reserve1
        self.weight0 = weight0
        self.weight1 = weight1
        self.fee = fee


class WeightedPool:
    """A two-token weighted constant-mean pool.

    Parameters
    ----------
    token0, token1:
        The pooled tokens (normalized so token0.symbol < token1.symbol).
    reserve0, reserve1:
        Reserves matching the argument order before normalization.
    weight0, weight1:
        Positive weights; only their ratio matters (Balancer uses
        fractions summing to 1, e.g. an 80/20 pool).
    fee:
        Swap fee, default 0.003.
    """

    is_constant_product = False
    family = FAMILY_G3M

    __slots__ = (
        "_token0", "_token1", "_reserve0", "_reserve1",
        "_weight0", "_weight1", "_fee", "_pool_id", "_events",
    )

    def __init__(
        self,
        token0: Token,
        token1: Token,
        reserve0: float,
        reserve1: float,
        weight0: float = 0.5,
        weight1: float = 0.5,
        fee: float = 0.003,
        pool_id: str | None = None,
    ):
        if token0 == token1:
            raise InvalidReserveError(
                f"a pool needs two distinct tokens, got {token0} twice"
            )
        validate_reserves(reserve0, reserve1)
        validate_fee(fee)
        if weight0 <= 0 or weight1 <= 0:
            raise InvalidReserveError(
                f"weights must be positive, got ({weight0}, {weight1})"
            )
        if token1.symbol < token0.symbol:
            token0, token1 = token1, token0
            reserve0, reserve1 = reserve1, reserve0
            weight0, weight1 = weight1, weight0
        self._token0 = token0
        self._token1 = token1
        self._reserve0 = float(reserve0)
        self._reserve1 = float(reserve1)
        self._weight0 = float(weight0)
        self._weight1 = float(weight1)
        self._fee = float(fee)
        self._pool_id = (
            pool_id if pool_id is not None else f"wpool-{next(_weighted_counter)}"
        )
        self._events: list[MarketEvent] = []

    # ------------------------------------------------------------------
    # identity & orientation
    # ------------------------------------------------------------------

    @property
    def pool_id(self) -> str:
        return self._pool_id

    @property
    def token0(self) -> Token:
        return self._token0

    @property
    def token1(self) -> Token:
        return self._token1

    @property
    def tokens(self) -> tuple[Token, Token]:
        return (self._token0, self._token1)

    @property
    def fee(self) -> float:
        return self._fee

    @property
    def reserve0(self) -> float:
        """Current reserve of ``token0`` (duck-parity with ``Pool``)."""
        return self._reserve0

    @property
    def reserve1(self) -> float:
        """Current reserve of ``token1``."""
        return self._reserve1

    @property
    def events(self) -> tuple[MarketEvent, ...]:
        return tuple(self._events)

    @property
    def event_count(self) -> int:
        return len(self._events)

    @property
    def last_event(self) -> MarketEvent | None:
        return self._events[-1] if self._events else None

    def events_after(self, count: int) -> tuple[MarketEvent, ...]:
        return tuple(self._events[count:])

    def discard_events_after(self, count: int) -> None:
        """Drop events recorded after the first ``count`` (revert support)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        del self._events[count:]

    def __contains__(self, token: Token) -> bool:
        return token == self._token0 or token == self._token1

    def other(self, token: Token) -> Token:
        if token == self._token0:
            return self._token1
        if token == self._token1:
            return self._token0
        raise UnknownTokenError(f"{token} is not in {self!r}")

    def reserve_of(self, token: Token) -> float:
        if token == self._token0:
            return self._reserve0
        if token == self._token1:
            return self._reserve1
        raise UnknownTokenError(f"{token} is not in {self!r}")

    def weight_of(self, token: Token) -> float:
        if token == self._token0:
            return self._weight0
        if token == self._token1:
            return self._weight1
        raise UnknownTokenError(f"{token} is not in {self!r}")

    def reserves_oriented(self, token_in: Token) -> tuple[float, float]:
        return (self.reserve_of(token_in), self.reserve_of(self.other(token_in)))

    def weight_ratio(self, token_in: Token) -> float:
        """``w_in / w_out`` — the exponent in the swap formula."""
        return self.weight_of(token_in) / self.weight_of(self.other(token_in))

    def __repr__(self) -> str:
        return (
            f"WeightedPool({self._pool_id}: {self._reserve0:g} {self._token0.symbol}"
            f"@{self._weight0:g} / {self._reserve1:g} {self._token1.symbol}"
            f"@{self._weight1:g}, fee={self._fee})"
        )

    # ------------------------------------------------------------------
    # quotes
    # ------------------------------------------------------------------

    def quote_out(self, token_in: Token, amount_in: float) -> float:
        """Exact-in: ``dy = y * (1 - (x/(x + gamma*dx))^(w_x/w_y))``."""
        if not math.isfinite(amount_in) or amount_in < 0:
            raise ValueError(f"input amount must be >= 0 and finite, got {amount_in}")
        if amount_in == 0.0:
            return 0.0
        x, y = self.reserves_oriented(token_in)
        gamma = 1.0 - self._fee
        ratio = self.weight_ratio(token_in)
        base = x / (x + gamma * amount_in)
        return y * (1.0 - pinned_pow(base, ratio))

    def spot_price(self, token_in: Token) -> float:
        """Fee-adjusted marginal price at zero size:
        ``gamma * (y / w_y) / (x / w_x)``."""
        x, y = self.reserves_oriented(token_in)
        w_in = self.weight_of(token_in)
        w_out = self.weight_of(self.other(token_in))
        return (1.0 - self._fee) * (y / w_out) / (x / w_in)

    def marginal_rate(self, token_in: Token, amount_in: float) -> float:
        """``d(amount_out)/d(amount_in)`` at trade size ``amount_in``:
        ``y * r * gamma * x^r / (x + gamma*t)^(r+1)`` with
        ``r = w_in/w_out``."""
        if not math.isfinite(amount_in) or amount_in < 0:
            raise ValueError(f"input amount must be >= 0 and finite, got {amount_in}")
        x, y = self.reserves_oriented(token_in)
        gamma = 1.0 - self._fee
        r = self.weight_ratio(token_in)
        return (
            y * r * gamma * pinned_pow(x, r)
            / pinned_pow(x + gamma * amount_in, r + 1.0)
        )

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------

    def swap(self, token_in: Token, amount_in: float) -> float:
        """Execute an exact-in swap; mutates reserves, logs an event."""
        token_out = self.other(token_in)
        amount_out = self.quote_out(token_in, amount_in)
        if token_in == self._token0:
            self._reserve0 += amount_in
            self._reserve1 -= amount_out
        else:
            self._reserve1 += amount_in
            self._reserve0 -= amount_out
        self._events.append(
            SwapEvent(
                pool_id=self._pool_id,
                token_in=token_in,
                token_out=token_out,
                amount_in=amount_in,
                amount_out=amount_out,
            )
        )
        return amount_out

    def copy(self) -> "WeightedPool":
        return WeightedPool(
            self._token0,
            self._token1,
            self._reserve0,
            self._reserve1,
            weight0=self._weight0,
            weight1=self._weight1,
            fee=self._fee,
            pool_id=self._pool_id,
        )

    def add_liquidity(self, amount0: float, amount1: float) -> None:
        """Proportional deposit (ratio-matched, like Pool.add_liquidity)."""
        if amount0 <= 0 or amount1 <= 0:
            raise InvalidReserveError(
                f"liquidity amounts must be positive, got ({amount0}, {amount1})"
            )
        ratio_pool = self._reserve0 / self._reserve1
        ratio_in = amount0 / amount1
        if abs(ratio_in - ratio_pool) > 1e-3 * ratio_pool:
            raise InvalidReserveError(
                f"deposit ratio {ratio_in:g} does not match pool ratio "
                f"{ratio_pool:g} in {self._pool_id}"
            )
        self._reserve0 += amount0
        self._reserve1 += amount1
        self._events.append(
            MintEvent(pool_id=self._pool_id, amount0=amount0, amount1=amount1)
        )

    def remove_liquidity(self, fraction: float) -> tuple[float, float]:
        """Withdraw a fraction of both reserves."""
        if not 0.0 < fraction < 1.0:
            raise InvalidReserveError(f"fraction must be in (0, 1), got {fraction}")
        out0 = self._reserve0 * fraction
        out1 = self._reserve1 * fraction
        self._reserve0 -= out0
        self._reserve1 -= out1
        self._events.append(
            BurnEvent(
                pool_id=self._pool_id, fraction=fraction, amount0=out0, amount1=out1
            )
        )
        return (out0, out1)

    def tvl(self, prices) -> float:
        """Total value locked under a price map."""
        return (
            prices[self._token0] * self._reserve0
            + prices[self._token1] * self._reserve1
        )

    # ------------------------------------------------------------------
    # snapshot / restore (atomicity protocol shared with Pool)
    # ------------------------------------------------------------------

    def snapshot(self) -> WeightedPoolSnapshot:
        return WeightedPoolSnapshot(
            pool_id=self._pool_id,
            reserve0=self._reserve0,
            reserve1=self._reserve1,
            weight0=self._weight0,
            weight1=self._weight1,
            fee=self._fee,
        )

    def restore(self, snap: WeightedPoolSnapshot) -> None:
        if snap.pool_id != self._pool_id:
            raise ValueError(
                f"snapshot of {snap.pool_id} cannot restore {self._pool_id}"
            )
        self._reserve0 = snap.reserve0
        self._reserve1 = snap.reserve1
