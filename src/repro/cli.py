"""Command-line interface: run any paper experiment from a shell.

Examples::

    repro-arb section5                 # the §V worked example numbers
    repro-arb fig2 --csv fig2.csv      # Px sweep behind Fig. 2
    repro-arb fig7 --length 3          # Convex vs MaxMax scatter
    repro-arb runtime --lengths 3,5,10
    repro-arb calibrate --seed 42      # synthetic snapshot §VI counts
    repro-arb detect --length 3        # list profitable loops
    repro-arb detect --jobs 4          # ... scored on 4 worker processes
    repro-arb sweep --strategies maxmax,maxprice --step 0.1
    repro-arb replay --blocks 12       # stream a synthetic event log
    repro-arb replay --events stream.jsonl --snapshot market.json
    repro-arb serve --shards 4         # live top-K book off a stream
    repro-arb loadgen --rates 0,500    # measure sustained throughput

(Equivalently ``python -m repro ...``.)

Every evaluation-heavy command routes through the batched
:class:`~repro.engine.EvaluationEngine`; ``--jobs N`` (where offered)
swaps in the process-pool executor.
"""

from __future__ import annotations

import argparse
import sys

from . import analysis
from .analysis import report
from .data.synthetic import paper_market
from .engine import EvaluationEngine, ParallelExecutor

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """Version of the code actually running.

    The source tree's ``repro.__version__`` is authoritative — it
    travels with the executing code, whereas distribution metadata can
    describe a stale installed wheel when running via PYTHONPATH.  The
    metadata lookup is only a fallback for exotic repackaged installs
    that strip the attribute."""
    try:
        from . import __version__

        return __version__
    except ImportError:  # pragma: no cover - repackaged installs only
        from importlib.metadata import version

        return version("repro-arb")


def _make_engine(jobs: int | None) -> EvaluationEngine:
    """Serial engine for ``--jobs 1``; process-pool backed above that."""
    if jobs is not None and jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    if jobs is not None and jobs > 1:
        return EvaluationEngine(executor=ParallelExecutor(max_workers=jobs))
    return EvaluationEngine()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-arb",
        description="Reproduce experiments from 'Profit Maximization In Arbitrage Loops'",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {package_version()}"
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable structured 'repro.*' logging at this level "
        "(queue shedding, subscriber gaps, solver fallbacks, ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("section5", help="the §V worked-example numbers")

    p = sub.add_parser("fig1", help="profit curve of the §V example")
    p.add_argument("--points", type=int, default=200)

    for name, help_text in (
        ("fig2", "Px sweep: rotations + MaxMax envelope"),
        ("fig3", "Px sweep: Convex vs MaxMax"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--csv", help="write the series to a CSV file")

    p = sub.add_parser("fig4", help="Px sweep: convex profit composition")

    for name, help_text, has_length in (
        ("fig5", "scatter: MaxMax vs traditional", True),
        ("fig6", "scatter: MaxPrice vs MaxMax", True),
        ("fig7", "scatter: Convex vs MaxMax", True),
        ("fig9", "scatter: length-4 traditional vs Convex", False),
        ("fig10", "scatter: length-4 MaxMax vs Convex", False),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=20230901)
        p.add_argument("--csv", help="write the scatter points to a CSV file")
        if has_length:
            p.add_argument("--length", type=int, default=3, choices=(3, 4))

    p = sub.add_parser("fig8", help="per-token profit overlap, Convex vs MaxMax")
    p.add_argument("--seed", type=int, default=20230901)

    p = sub.add_parser("runtime", help="§VII runtime scaling")
    p.add_argument("--lengths", default="3,4,5,6,8,10")
    p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser("calibrate", help="§VI snapshot calibration counts")
    p.add_argument("--seed", type=int, default=20230901)

    p = sub.add_parser("detect", help="list profitable loops in a snapshot")
    p.add_argument("--seed", type=int, default=20230901)
    p.add_argument("--stableswap-fraction", type=float, default=0.0,
                   dest="stableswap_fraction", metavar="FRAC",
                   help="fraction of synthetic pools built as amplified-"
                   "invariant stableswap pools (default 0 = pure "
                   "constant-product, byte-identical to older builds)")
    p.add_argument("--length", type=int, default=3)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for scoring (1 = serial)")
    p.add_argument("--scalar", action="store_true",
                   help="disable the cross-loop batch kernels (closed-form, "
                   "iterative, and weighted) and score every loop on the "
                   "scalar path (correctness oracle; identical numbers, "
                   "slower, composable with --jobs)")
    p.add_argument("--csv", help="write the full ranked list to a CSV file "
                   "(deterministic: profit desc, canonical loop id asc)")
    p.add_argument("--no-prune", action="store_true",
                   help="quote every loop exactly instead of pruning the "
                   "ranking with profit upper bounds (identical top-K "
                   "either way; pruning is auto-disabled by --scalar, "
                   "--csv, and --jobs > 1)")
    p.add_argument("--exact", action="store_true",
                   help="audit every quote in contract integer arithmetic "
                   "(floor division, 18-decimal base units): adds the "
                   "base-unit profit the chain would actually pay next to "
                   "the float estimate; runs serial whatever --jobs says, "
                   "so output is byte-stable across job counts")
    p.add_argument("--trace", metavar="FILE",
                   help="record pipeline spans and write a trace on exit "
                   "(.jsonl = span lines, anything else = Chrome/Perfetto "
                   "JSON)")

    p = sub.add_parser(
        "sweep", help="price sweep of the §V loop through the batched engine"
    )
    p.add_argument("--strategies", default="maxmax,maxprice",
                   help="comma-separated registry names (see --help of figs)")
    p.add_argument("--token", default="X", help="loop token whose price sweeps")
    p.add_argument("--max", type=float, default=20.0, dest="max_price")
    p.add_argument("--step", type=float, default=0.2)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for non-vectorizable strategies")
    p.add_argument("--csv", help="write the series to a CSV file")

    p = sub.add_parser("harvest", help="sequential greedy harvest of a snapshot")
    p.add_argument("--seed", type=int, default=20230901)
    p.add_argument("--rounds", type=int, default=25)
    p.add_argument("--floor", type=float, default=1.0, help="min profit per round ($)")
    p.add_argument("--gwei", type=float, default=None, help="gas price; overrides --floor with the gas breakeven")

    p = sub.add_parser(
        "discrepancy", help="Convex-vs-MaxMax gap vs mispricing level"
    )
    p.add_argument("--levels", default="0.01,0.15,0.4")

    p = sub.add_parser(
        "efficiency", help="market efficiency with vs without arbitrage"
    )
    p.add_argument("--blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser(
        "replay",
        help="stream swap/mint/burn events through the engine, "
        "re-detecting arbitrage incrementally per block",
    )
    p.add_argument("--events", help="JSONL event log (needs --snapshot)")
    p.add_argument("--snapshot", help="market snapshot JSON the log starts from")
    # synthetic-stream parameters: None = "not given", so combining
    # them with --events can be rejected instead of silently ignored
    p.add_argument("--seed", type=int, default=None,
                   help="synthetic stream seed (default 7)")
    p.add_argument("--tokens", type=int, default=None, help="default 12")
    p.add_argument("--pools", type=int, default=None, help="default 30")
    p.add_argument("--blocks", type=int, default=None, help="default 12")
    p.add_argument("--events-per-block", type=int, default=None,
                   dest="events_per_block", help="default 6")
    p.add_argument("--stableswap-fraction", type=float, default=None,
                   dest="stableswap_fraction", metavar="FRAC",
                   help="fraction of synthetic pools built as stableswap "
                   "pools (default 0)")
    p.add_argument("--length", type=int, default=3, help="candidate loop length")
    p.add_argument("--strategies", default="maxmax",
                   help="comma-separated registry names to score loops with")
    p.add_argument("--mode", choices=("incremental", "full"), default="incremental")
    p.add_argument("--scalar", action="store_true",
                   help="disable the cross-loop batch kernels for per-block "
                   "re-quotes (correctness oracle; identical numbers, slower)")
    p.add_argument("--no-prune", action="store_true",
                   help="disable the two-phase bound pass that skips exact "
                   "quotes for provably-unprofitable dirty loops (reports "
                   "are bit-identical either way; pruning is auto-disabled "
                   "by --scalar and --mode full)")
    p.add_argument("--save-events", help="write the replayed stream to a JSONL file")
    p.add_argument("--save-snapshot",
                   help="write the starting market to a JSON file "
                   "(a stream is only replayable together with its snapshot)")
    p.add_argument("--csv", help="write the per-block report to a CSV file")
    p.add_argument("--trace", metavar="FILE",
                   help="record pipeline spans and write a trace on exit "
                   "(.jsonl = span lines, anything else = Chrome/Perfetto "
                   "JSON)")

    p = sub.add_parser(
        "serve",
        help="run the streaming opportunity service: sharded ingest of an "
        "event stream into a live top-K arbitrage book",
    )
    p.add_argument("--events", help="JSONL event log (needs --snapshot)")
    p.add_argument("--snapshot", help="market snapshot JSON the log starts from")
    p.add_argument("--simulate", type=int, default=None, metavar="BLOCKS",
                   help="ingest live from a running simulation instead of a "
                   "prerecorded stream (retail flow over the synthetic market)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--tokens", type=int, default=12)
    p.add_argument("--pools", type=int, default=30)
    p.add_argument("--blocks", type=int, default=12)
    p.add_argument("--events-per-block", type=int, default=6,
                   dest="events_per_block")
    p.add_argument("--stableswap-fraction", type=float, default=0.0,
                   dest="stableswap_fraction", metavar="FRAC",
                   help="fraction of synthetic pools built as stableswap "
                   "pools (default 0)")
    p.add_argument("--length", type=int, default=3, help="candidate loop length")
    p.add_argument("--strategy", default="maxmax",
                   help="registry name of the book's scoring strategy")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--backend", choices=("inline", "process"), default="inline",
                   help="process = one worker process per shard (multi-core)")
    shared = p.add_mutually_exclusive_group()
    shared.add_argument("--shared", action="store_true", default=None,
                        dest="shared",
                        help="back the market with one read-only shared-memory "
                        "segment instead of per-shard private copies (default: "
                        "auto — on for the process backend whenever the "
                        "strategy has a batch kernel)")
    shared.add_argument("--no-shared", action="store_false", default=None,
                        dest="shared",
                        help="force per-shard private market copies")
    p.add_argument("--start-method", choices=("fork", "spawn"), default=None,
                   dest="start_method",
                   help="multiprocessing start method for --backend process "
                   "(default: platform default)")
    p.add_argument("--policy", choices=("block", "drop"), default="block",
                   help="full-queue behaviour: backpressure or shed blocks")
    p.add_argument("--queue-size", type=int, default=64, dest="queue_size")
    p.add_argument("--rate", type=float, default=0.0,
                   help="offered events/sec (0 = as fast as possible)")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--no-prune", action="store_true",
                   help="disable bound-based re-quote pruning (by default "
                   "shards skip exact quotes for dirty loops provably below "
                   "the book's --top'th profit; the displayed book is "
                   "identical either way)")
    p.add_argument("--json", help="write the full service report to a JSON file")
    p.add_argument("--csv", help="write the final book (top-K) to a CSV file")
    p.add_argument("--trace", metavar="FILE",
                   help="record pipeline spans and write a trace on exit "
                   "(.jsonl = span lines, anything else = Chrome/Perfetto "
                   "JSON)")
    p.add_argument("--metrics-port", type=int, default=None, dest="metrics_port",
                   metavar="PORT",
                   help="serve a live Prometheus /metrics (and /json) "
                   "endpoint on this port for the duration of the run "
                   "(0 = ephemeral; the bound port is printed)")

    p = sub.add_parser(
        "loadgen",
        help="load-generate against the opportunity service and report "
        "sustained events/sec and end-to-end latency percentiles",
    )
    p.add_argument("--seed", type=int, default=20240601)
    p.add_argument("--tokens", type=int, default=40)
    p.add_argument("--pools", type=int, default=100)
    p.add_argument("--blocks", type=int, default=20)
    p.add_argument("--events-per-block", type=int, default=8,
                   dest="events_per_block")
    p.add_argument("--pools-per-block", type=int, default=None,
                   dest="pools_per_block",
                   help="touch sparsity: max distinct pools per block")
    p.add_argument("--stableswap-fraction", type=float, default=0.0,
                   dest="stableswap_fraction", metavar="FRAC",
                   help="fraction of synthetic pools built as stableswap "
                   "pools (default 0)")
    p.add_argument("--length", type=int, default=3)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--backend", choices=("inline", "process"), default="inline")
    shared = p.add_mutually_exclusive_group()
    shared.add_argument("--shared", action="store_true", default=None,
                        dest="shared",
                        help="one shared-memory market segment for all shards "
                        "(default: auto — on for the process backend whenever "
                        "the strategy has a batch kernel)")
    shared.add_argument("--no-shared", action="store_false", default=None,
                        dest="shared",
                        help="force per-shard private market copies")
    p.add_argument("--start-method", choices=("fork", "spawn"), default=None,
                   dest="start_method",
                   help="multiprocessing start method for --backend process")
    p.add_argument("--policy", choices=("block", "drop"), default="block")
    p.add_argument("--queue-size", type=int, default=64, dest="queue_size")
    p.add_argument("--prune-top-k", type=int, default=None, dest="prune_top_k",
                   help="enable bound-based re-quote pruning with this "
                   "book rank as the feedback threshold (default: off)")
    p.add_argument("--rates", default="0",
                   help="comma-separated offered rates (events/sec, 0 = "
                   "unthrottled); one run and one report row per rate")
    p.add_argument("--json", help="write the reports to a JSON file")
    p.add_argument("--csv", help="write one CSV row per run")
    p.add_argument("--trace", metavar="FILE",
                   help="record pipeline spans and write a trace on exit "
                   "(.jsonl = span lines, anything else = Chrome/Perfetto "
                   "JSON)")

    return parser


def _configure_logging(level: str) -> None:
    """Root handler + threshold for the ``repro.*`` logger hierarchy."""
    import logging

    logging.basicConfig(
        level=getattr(logging, level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        _configure_logging(args.log_level)
    handler = _HANDLERS[args.command]
    trace_file = getattr(args, "trace", None)
    if not trace_file:
        handler(args)
        return 0

    from .telemetry import trace
    from .telemetry.export import write_trace

    trace.clear()
    trace.enable()
    try:
        handler(args)
    finally:
        trace.disable()
        recorded = trace.spans()
        path = write_trace(recorded, trace_file)
        trace.clear()
        print(f"wrote {path} ({len(recorded)} spans)")
    return 0


# ----------------------------------------------------------------------
# per-command handlers
# ----------------------------------------------------------------------


def _cmd_section5(args) -> None:
    numbers = analysis.section5_numbers()
    rows = sorted(numbers.items())
    print(report.format_table(["quantity", "value"], rows))


def _cmd_fig1(args) -> None:
    result = analysis.fig1_profit_curve(n_points=args.points)
    print("Fig. 1: profit vs input (X -> Y -> Z -> X)")
    print(report.sparkline(result.profits))
    print(
        f"optimal input = {result.optimal_input:.4f}, "
        f"optimal profit = {result.optimal_profit:.4f}, "
        f"d out/d in at optimum = {result.derivative_at_optimum:.6f}"
    )


def _cmd_fig2(args) -> None:
    series = analysis.fig2_rotation_sweep()
    print(report.render_sweep(series, title="Fig. 2: rotations + MaxMax vs Px"))
    if args.csv:
        report.sweep_to_csv(series, args.csv)
        print(f"wrote {args.csv}")


def _cmd_fig3(args) -> None:
    series = analysis.fig3_convex_vs_maxmax_sweep()
    print(report.render_sweep(series, title="Fig. 3: Convex vs MaxMax vs Px"))
    if args.csv:
        report.sweep_to_csv(series, args.csv)
        print(f"wrote {args.csv}")


def _cmd_fig4(args) -> None:
    grid, rows, monetized = analysis.fig4_profit_composition()
    print("Fig. 4: convex profit composition (X, Y, Z amounts) across Px")
    table_rows = [
        (f"{px:.1f}", *(f"{a:.4f}" for a in row), f"{m:.2f}")
        for px, row, m in zip(grid[::10], rows[::10], monetized[::10])
    ]
    print(report.format_table(["Px", "X", "Y", "Z", "monetized $"], table_rows))


def _scatter_command(fn):
    def handler(args):
        snapshot = paper_market(seed=args.seed)
        kwargs = {}
        if hasattr(args, "length"):
            kwargs["length"] = args.length
        result = fn(snapshot, **kwargs)
        print(report.render_scatter(result, title=fn.__name__))
        if getattr(args, "csv", None):
            report.scatter_to_csv(result, args.csv)
            print(f"wrote {args.csv}")

    return handler


def _cmd_fig8(args) -> None:
    snapshot = paper_market(seed=args.seed)
    result = analysis.fig8_token_profit_overlap(snapshot)
    print(
        f"Fig. 8: {len(result.loops)} loops; max per-token relative gap "
        f"between Convex and MaxMax profit vectors = {result.max_component_gap:.3e}"
    )


def _cmd_runtime(args) -> None:
    lengths = tuple(int(piece) for piece in args.lengths.split(","))
    result = analysis.runtime_scaling(lengths=lengths, repeats=args.repeats)
    print(report.render_runtime(result))


def _cmd_calibrate(args) -> None:
    result = analysis.snapshot_calibration(seed=args.seed)
    rows = [
        ("tokens", result.tokens, result.paper_tokens),
        ("pools", result.pools, result.paper_pools),
        ("profitable 3-loops", result.profitable_loops_len3, result.paper_loops_len3),
        ("profitable 4-loops", result.profitable_loops_len4, "n/a"),
    ]
    print(report.format_table(["quantity", "generated", "paper"], rows))


def _cmd_detect(args) -> None:
    snapshot = paper_market(
        seed=args.seed, stableswap_fraction=args.stableswap_fraction
    )
    from .service.book import opportunity_sort_key
    from .strategies.maxmax import MaxMaxStrategy

    _snapshot, loops = analysis.profitable_loops(snapshot, args.length)
    if args.exact and args.scalar:
        raise SystemExit(
            "--exact needs the batch evaluator; it cannot combine with "
            "--scalar"
        )
    # the bound-ordered pruned ranking only makes sense for the plain
    # top-K table: --csv needs the full exact list, --exact audits every
    # loop, and --scalar / --jobs pick explicit evaluation paths
    prune = not (
        args.no_prune or args.scalar or args.csv or args.jobs != 1
        or args.exact
    ) and bool(loops)
    pruned = 0
    exact_details: dict[int, dict | None] = {}
    if prune:
        from .market import BatchEvaluator, MarketArrays

        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(snapshot.registry)
        )
        topk, pruned = evaluator.evaluate_top_k(
            MaxMaxStrategy(), snapshot.prices, k=args.top
        )
        scored = sorted(
            ((profit, loops[position]) for profit, position in topk),
            key=lambda pair: opportunity_sort_key(pair[0], pair[1].canonical_id),
        )
    elif args.exact:
        from .market import BatchEvaluator, MarketArrays

        # exact quotes are integer statements: evaluate on the serial
        # batch evaluator whatever --jobs says, so the ranked output
        # (and any CSV) is byte-stable across job counts
        evaluator = BatchEvaluator(
            loops,
            arrays=MarketArrays.from_registry(snapshot.registry),
            exact=True,
        )
        results = evaluator.evaluate_many(MaxMaxStrategy(), snapshot.prices)
        exact_details = {
            id(loop): result.details.get("exact")
            for result, loop in zip(results, loops)
        }
        scored = sorted(
            ((result.monetized_profit, loop) for result, loop in zip(results, loops)),
            key=lambda pair: opportunity_sort_key(pair[0], pair[1].canonical_id),
        )
    else:
        engine = _make_engine(args.jobs)
        if args.scalar:
            engine.vectorize = False
        results = engine.evaluate_strategy(MaxMaxStrategy(), loops, snapshot.prices)
        # profit descending, canonical loop id ascending on ties: the same
        # total order the opportunity book uses, so output (and any CSV
        # golden file) is fully deterministic across runs
        scored = sorted(
            ((result.monetized_profit, loop) for result, loop in zip(results, loops)),
            key=lambda pair: opportunity_sort_key(pair[0], pair[1].canonical_id),
        )
    print(f"{len(loops)} profitable length-{args.length} loops; top {args.top}:")
    if args.exact:
        # integer base-unit profit next to the float estimate ("-" for
        # weighted loops, which have no floor-arithmetic twin)
        def _units(loop) -> str:
            detail = exact_details.get(id(loop))
            return str(detail["profit"]) if detail is not None else "-"

        rows = [
            (f"${profit:,.2f}", _units(loop), repr(loop))
            for profit, loop in scored[: args.top]
        ]
        print(report.format_table(
            ["maxmax profit", "exact profit (base units)", "loop"], rows
        ))
    else:
        rows = [
            (f"${profit:,.2f}", repr(loop))
            for profit, loop in scored[: args.top]
        ]
        print(report.format_table(["maxmax profit", "loop"], rows))
    if prune:
        print(
            f"bound pruning skipped {pruned}/{len(loops)} exact quotes "
            "(--no-prune for the exhaustive pass)"
        )
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            header = ["rank", "profit_usd", "loop_id", "path"]
            if args.exact:
                header += [
                    "exact_scale", "exact_amount_in", "exact_amount_out",
                    "exact_profit_units",
                ]
            writer.writerow(header)
            for rank, (profit, loop) in enumerate(scored, start=1):
                row = [rank, repr(profit), loop.canonical_id,
                       " -> ".join(t.symbol for t in loop.tokens)]
                if args.exact:
                    detail = exact_details.get(id(loop))
                    row += (
                        [detail["scale"], detail["amount_in"],
                         detail["amount_out"], detail["profit"]]
                        if detail is not None
                        else ["", "", "", ""]
                    )
                writer.writerow(row)
        print(f"wrote {args.csv}")


def _cmd_sweep(args) -> None:
    from .core.types import Token
    from .data.example import section5_loop, section5_prices
    from .strategies import make_strategy

    loop = section5_loop()
    token = Token(args.token)
    if token not in loop.tokens:
        raise SystemExit(
            f"token {args.token!r} is not in the §V loop "
            f"({', '.join(t.symbol for t in loop.tokens)})"
        )
    names = [name.strip() for name in args.strategies.split(",") if name.strip()]
    if not names:
        raise SystemExit("--strategies needs at least one strategy name")
    try:
        strategies = {name: make_strategy(name) for name in names}
        grid = analysis.paper_px_grid(max_price=args.max_price, step=args.step)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    series = analysis.price_sweep(
        loop,
        section5_prices(),
        token,
        grid,
        strategies,
        engine=_make_engine(args.jobs),
    )
    title = f"engine sweep of P{args.token} ({', '.join(strategies)})"
    print(report.render_sweep(series, title=title))
    if args.csv:
        report.sweep_to_csv(series, args.csv)
        print(f"wrote {args.csv}")


def _cmd_harvest(args) -> None:
    from .analysis import greedy_harvest
    from .strategies.maxmax import MaxMaxStrategy

    snapshot = paper_market(seed=args.seed)
    floor = args.floor
    if args.gwei is not None:
        from .execution import GasModel

        floor = GasModel(gas_price_gwei=args.gwei).breakeven_gross_usd(3)
        print(f"gas breakeven at {args.gwei:g} gwei: {floor:.2f}$ per 3-loop")
    harvest = greedy_harvest(
        snapshot, MaxMaxStrategy(), min_profit_usd=floor, max_rounds=args.rounds
    )
    rows = [
        (i, f"${r.predicted_usd:,.2f}", f"${r.realized_usd:,.2f}",
         " -> ".join(t.symbol for t in r.loop.tokens))
        for i, r in enumerate(harvest.rounds)
    ]
    print(report.format_table(["round", "predicted", "realized", "loop"], rows))
    print(harvest)


def _cmd_discrepancy(args) -> None:
    from .analysis import discrepancy_vs_noise

    levels = tuple(float(piece) for piece in args.levels.split(","))
    points = discrepancy_vs_noise(noise_levels=levels)
    rows = [
        (
            p.price_noise,
            p.n_loops,
            f"{p.mean_rel_gap:.5%}",
            f"{p.max_rel_gap:.5%}",
            f"{p.frac_loops_with_gap:.1%}",
            f"{p.mean_log_rate:.4f}",
        )
        for p in points
    ]
    print("Convex - MaxMax gap vs market mispricing:")
    print(
        report.format_table(
            ["noise", "loops", "mean gap", "max gap", "loops w/ gap", "mean log-rate"],
            rows,
        )
    )


def _cmd_efficiency(args) -> None:
    from .data.synthetic import SyntheticMarketGenerator
    from .simulation import efficiency_experiment

    market = SyntheticMarketGenerator(
        n_tokens=15, n_pools=40, seed=args.seed, price_noise=0.015
    ).generate()
    without, with_arb = efficiency_experiment(market, n_blocks=args.blocks, seed=args.seed)
    print(f"mean mispricing index over {args.blocks} blocks:")
    print(f"  without arbitrage: {without.mean_mispricing():.5f}")
    print(f"  with arbitrage:    {with_arb.mean_mispricing():.5f}")
    print(f"profitable loops at final block: "
          f"{without.loop_series()[-1]} vs {with_arb.loop_series()[-1]}")
    arb = with_arb.agents[1]
    print(f"arbitrageur: {arb.trades} trades, ${arb.cumulative_usd:,.2f} profit")


def _cmd_replay(args) -> None:
    from .data.snapshot import MarketSnapshot
    from .data.synthetic import SyntheticMarketGenerator
    from .replay import MarketEventLog, ReplayDriver, generate_event_stream
    from .strategies import make_strategy

    if (args.events is None) != (args.snapshot is None):
        raise SystemExit("--events and --snapshot must be given together")
    synthetic_given = {
        "--seed": args.seed,
        "--tokens": args.tokens,
        "--pools": args.pools,
        "--blocks": args.blocks,
        "--events-per-block": args.events_per_block,
        "--stableswap-fraction": args.stableswap_fraction,
    }
    if args.events:
        extras = [flag for flag, value in synthetic_given.items() if value is not None]
        if extras:
            raise SystemExit(
                f"{', '.join(extras)} only shape generated streams; "
                "they cannot apply to a stream loaded with --events"
            )
        market = MarketSnapshot.load(args.snapshot)
        log = MarketEventLog.load(args.events)
    else:
        seed = args.seed if args.seed is not None else 7
        market = SyntheticMarketGenerator(
            n_tokens=args.tokens if args.tokens is not None else 12,
            n_pools=args.pools if args.pools is not None else 30,
            seed=seed,
            price_noise=0.015,
            stableswap_fraction=(
                args.stableswap_fraction
                if args.stableswap_fraction is not None
                else 0.0
            ),
        ).generate()
        log = generate_event_stream(
            market,
            n_blocks=args.blocks if args.blocks is not None else 12,
            events_per_block=(
                args.events_per_block if args.events_per_block is not None else 6
            ),
            seed=seed,
        )
    if args.save_events:
        log.save(args.save_events)
        print(f"wrote {args.save_events}")
    if args.save_snapshot:
        market.save(args.save_snapshot)
        print(f"wrote {args.save_snapshot}")

    names = [name.strip() for name in args.strategies.split(",") if name.strip()]
    if not names:
        raise SystemExit("--strategies needs at least one strategy name")
    try:
        strategies = {name: make_strategy(name) for name in names}
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    engine = None
    if args.scalar:
        from .engine import EvaluationEngine

        engine = EvaluationEngine(vectorize=False)
    prune = (
        args.mode == "incremental" and not args.scalar and not args.no_prune
    )
    driver = ReplayDriver(
        market, strategies=strategies, length=args.length, mode=args.mode,
        engine=engine, prune=prune,
    )
    result = driver.replay(log)

    header = ["block", "events", "dirty", "evaluated", "loops>0", "mispricing"]
    header += [f"{name} $" for name in strategies]
    rows = [
        (
            r.block,
            r.n_events,
            len(r.dirty_pools),
            f"{r.evaluated_loops}/{r.total_loops}",
            r.profitable_loops,
            f"{r.mispricing_index:.5f}",
            *(f"{r.profit_usd[name]:,.2f}" for name in strategies),
        )
        for r in result.reports
    ]
    print(
        f"{args.mode} replay: {result.events_applied} events over "
        f"{len(result.reports)} blocks, {driver.total_loops} candidate "
        f"length-{args.length} loops"
    )
    print(report.format_table(header, rows))
    totals = ", ".join(
        f"{name} ${result.total_profit(name):,.2f}" for name in strategies
    )
    print(f"cumulative profit surface: {totals}")
    print(
        f"loop evaluations: {result.evaluations()} "
        f"(full recompute would be {driver.total_loops * len(result.reports)}); "
        f"cache {driver.engine.cache!r}"
    )
    if prune and driver.evaluator_stats is not None:
        print(
            f"bound pruning skipped {driver.evaluator_stats.pruned_loops} "
            "exact quotes (--no-prune to disable; numbers are identical)"
        )
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["block", "n_events", "dirty_pools", "evaluated_loops",
                 "total_loops", "profitable_loops", "mispricing_index"]
                + [f"profit_usd_{name}" for name in strategies]
            )
            for r in result.reports:
                writer.writerow(
                    [r.block, r.n_events, len(r.dirty_pools), r.evaluated_loops,
                     r.total_loops, r.profitable_loops, r.mispricing_index]
                    + [r.profit_usd[name] for name in strategies]
                )
        print(f"wrote {args.csv}")


def _resolve_shared(shared: bool | None, backend: str, strategy) -> bool:
    """``--shared``/``--no-shared`` tri-state: None = auto.

    Auto enables the zero-copy segment exactly where it pays: the
    process backend (private copies cost one market per shard) with a
    strategy the batch kernels cover (shared shards evaluate
    kernel-only).  Inline runs and scalar-only strategies stay on
    private copies unless forced.
    """
    if shared is not None:
        return shared
    if backend != "process":
        return False
    from .market import batch_kind

    return batch_kind(strategy) is not None


def _install_sigterm_exit() -> None:
    """Make SIGTERM unwind as SystemExit so ``finally`` blocks run.

    The serve/loadgen paths own a shared-memory segment; a default
    SIGTERM would kill the process without running the cleanup that
    unlinks it from /dev/shm.  Raising SystemExit routes termination
    through the normal ``finally``/atexit path instead.  Main thread
    only; harmless to call twice.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return

    def _exit(signum, frame):
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, _exit)


def _cmd_serve(args) -> None:
    import asyncio

    from .data.snapshot import MarketSnapshot
    from .data.synthetic import SyntheticMarketGenerator
    from .replay import MarketEventLog, generate_event_stream
    from .service import OpportunityService, log_source, paced, simulation_source
    from .strategies import make_strategy

    if (args.events is None) != (args.snapshot is None):
        raise SystemExit("--events and --snapshot must be given together")
    if args.events and args.simulate is not None:
        raise SystemExit("--simulate and --events are mutually exclusive sources")
    try:
        strategy = make_strategy(args.strategy)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")

    if args.events:
        market = MarketSnapshot.load(args.snapshot)
        log = MarketEventLog.load(args.events)
        source = log_source(log)
        origin = f"{args.events} ({len(log)} events)"
    else:
        market = SyntheticMarketGenerator(
            n_tokens=args.tokens, n_pools=args.pools, seed=args.seed,
            price_noise=0.015,
            stableswap_fraction=args.stableswap_fraction,
        ).generate()
        if args.simulate is not None:
            from .simulation import SimulationEngine
            from .simulation.agents import RetailTrader

            source = simulation_source(
                SimulationEngine(
                    market, [RetailTrader(seed=args.seed)], price_seed=args.seed
                ),
                args.simulate,
            )
            origin = f"live simulation ({args.simulate} blocks)"
        else:
            log = generate_event_stream(
                market, n_blocks=args.blocks,
                events_per_block=args.events_per_block, seed=args.seed,
            )
            source = log_source(log)
            origin = f"synthetic stream ({len(log)} events, {args.blocks} blocks)"
    if args.rate > 0:
        source = paced(source, args.rate)

    shared = _resolve_shared(args.shared, args.backend, strategy)
    _install_sigterm_exit()
    try:
        service = OpportunityService(
            market,
            n_shards=args.shards,
            length=args.length,
            strategy=strategy,
            backend=args.backend,
            queue_size=args.queue_size,
            ingest_policy=args.policy,
            prune_top_k=None if args.no_prune else max(1, args.top),
            shared=shared,
            start_method=args.start_method,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"serving {origin} over {service.total_loops} candidate "
        f"length-{args.length} loops, {args.shards} shard(s) "
        f"[{args.backend}{', shared memory' if shared else ''}], "
        f"loops per shard {service.plan.loops_per_shard()}"
    )

    async def _run():
        if args.metrics_port is None:
            return await service.run(source)
        from .telemetry.server import MetricsServer

        # scrapes hit the live run (window metrics + process registry);
        # the endpoint lives exactly as long as the stream
        async with MetricsServer(
            service.scrape_registry, port=args.metrics_port
        ) as server:
            print(f"metrics endpoint: http://{server.host}:{server.port}/metrics")
            return await service.run(source)

    try:
        result = asyncio.run(_run())
    finally:
        service.close()

    top = result.top(args.top)
    rows = [
        (i + 1, f"${o.profit_usd:,.2f}", o.path, o.block, o.shard)
        for i, o in enumerate(top)
    ]
    print(f"top {len(top)} opportunities (book seq {result.book.seq}):")
    print(report.format_table(["#", f"{args.strategy} $", "loop", "block", "shard"], rows))
    e2e = result.metrics["latencies"].get("end_to_end", {})
    print(
        f"{result.events_ingested} events ({result.events_dropped} dropped) in "
        f"{result.duration_s:.3f}s -> {result.events_per_s:,.0f} ev/s; "
        f"{result.evaluations} loop evaluations "
        f"({result.loops_pruned} pruned by bounds), "
        f"cache hit-rate {result.cache_hit_rate:.1%}; "
        f"end-to-end p50 {e2e.get('p50_ms', 0.0):.2f}ms / "
        f"p99 {e2e.get('p99_ms', 0.0):.2f}ms"
    )
    memory = result.memory
    if memory.get("shared"):
        counters = result.metrics.get("counters", {})
        print(
            f"shared market: segment {memory['segment_name']} "
            f"({memory['segment_nbytes']:,}B), per-shard private state "
            f"{memory['aggregate_shard_market_bytes']:,}B total; "
            f"seqlock epoch waits {counters.get('shm_epoch_waits', 0)}, "
            f"torn-read retries {counters.get('shm_torn_retries', 0)}"
        )
    elif memory:
        print(
            f"market state: {memory['aggregate_shard_market_bytes']:,}B "
            f"across {result.n_shards} private shard cop"
            f"{'y' if result.n_shards == 1 else 'ies'}"
        )
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["rank", "profit_usd", "loop_id", "path", "amount_in",
                 "start", "block", "shard"]
            )
            for rank, o in enumerate(top, start=1):
                writer.writerow(
                    [rank, repr(o.profit_usd), o.loop_id, o.path,
                     "" if o.amount_in is None else repr(o.amount_in),
                     o.start_symbol or "", o.block, o.shard]
                )
        print(f"wrote {args.csv}")


def _cmd_loadgen(args) -> None:
    from .service import loadgen

    try:
        rates = [float(piece) for piece in args.rates.split(",") if piece.strip()]
    except ValueError:
        raise SystemExit(f"--rates must be comma-separated numbers, got {args.rates!r}") from None
    if not rates:
        raise SystemExit("--rates needs at least one rate")
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")

    market, log = loadgen.make_workload(
        args.tokens, args.pools, args.blocks, args.events_per_block, args.seed,
        pools_per_block=args.pools_per_block,
        stableswap_fraction=args.stableswap_fraction,
    )
    from .strategies.maxmax import MaxMaxStrategy

    shared = _resolve_shared(args.shared, args.backend, MaxMaxStrategy())
    _install_sigterm_exit()
    print(
        f"loadgen: {len(log)} events over {args.blocks} blocks, "
        f"{args.pools} pools, {args.shards} shard(s) "
        f"[{args.backend}{', shared memory' if shared else ''}]"
    )
    reports = []
    for rate in rates:
        reports.append(
            loadgen.run_load(
                market, log,
                rate=rate,
                n_shards=args.shards,
                length=args.length,
                backend=args.backend,
                ingest_policy=args.policy,
                queue_size=args.queue_size,
                n_tokens=args.tokens,
                n_blocks=args.blocks,
                prune_top_k=args.prune_top_k,
                shared=shared,
                start_method=args.start_method,
            )
        )
    rows = [
        (
            "max" if row["rate"] == 0 else f"{row['rate']:,.0f}",
            f"{row['events_per_s']:,.0f}",
            row["events_dropped"],
            f"{row['e2e_p50_ms']:.2f}",
            f"{row['e2e_p95_ms']:.2f}",
            f"{row['e2e_p99_ms']:.2f}",
            f"{row['cache_hit_rate']:.1%}",
            row["evaluations"],
            row["loops_pruned"],
        )
        for row in (r.to_row() for r in reports)
    ]
    print(report.format_table(
        ["offered ev/s", "achieved ev/s", "dropped", "p50 ms", "p95 ms",
         "p99 ms", "cache hit %", "evals", "pruned"],
        rows,
    ))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"wrote {args.json}")
    if args.csv:
        loadgen.save_rows_csv(reports, args.csv)
        print(f"wrote {args.csv}")


_HANDLERS = {
    "section5": _cmd_section5,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _scatter_command(analysis.fig5_maxmax_vs_traditional),
    "fig6": _scatter_command(analysis.fig6_maxprice_vs_maxmax),
    "fig7": _scatter_command(analysis.fig7_convex_vs_maxmax),
    "fig9": _scatter_command(analysis.fig9_len4_traditional),
    "fig10": _scatter_command(analysis.fig10_len4_maxmax),
    "fig8": _cmd_fig8,
    "runtime": _cmd_runtime,
    "calibrate": _cmd_calibrate,
    "detect": _cmd_detect,
    "sweep": _cmd_sweep,
    "harvest": _cmd_harvest,
    "discrepancy": _cmd_discrepancy,
    "efficiency": _cmd_efficiency,
    "replay": _cmd_replay,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
}


if __name__ == "__main__":
    sys.exit(main())
