"""Command-line interface: run any paper experiment from a shell.

Examples::

    repro-arb section5                 # the §V worked example numbers
    repro-arb fig2 --csv fig2.csv      # Px sweep behind Fig. 2
    repro-arb fig7 --length 3          # Convex vs MaxMax scatter
    repro-arb runtime --lengths 3,5,10
    repro-arb calibrate --seed 42      # synthetic snapshot §VI counts
    repro-arb detect --length 3        # list profitable loops
    repro-arb detect --jobs 4          # ... scored on 4 worker processes
    repro-arb sweep --strategies maxmax,maxprice --step 0.1
    repro-arb replay --blocks 12       # stream a synthetic event log
    repro-arb replay --events stream.jsonl --snapshot market.json

(Equivalently ``python -m repro ...``.)

Every evaluation-heavy command routes through the batched
:class:`~repro.engine.EvaluationEngine`; ``--jobs N`` (where offered)
swaps in the process-pool executor.
"""

from __future__ import annotations

import argparse
import sys

from . import analysis
from .analysis import report
from .data.synthetic import paper_market
from .engine import EvaluationEngine, ParallelExecutor

__all__ = ["main", "build_parser"]


def _make_engine(jobs: int | None) -> EvaluationEngine:
    """Serial engine for ``--jobs 1``; process-pool backed above that."""
    if jobs is not None and jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    if jobs is not None and jobs > 1:
        return EvaluationEngine(executor=ParallelExecutor(max_workers=jobs))
    return EvaluationEngine()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-arb",
        description="Reproduce experiments from 'Profit Maximization In Arbitrage Loops'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("section5", help="the §V worked-example numbers")

    p = sub.add_parser("fig1", help="profit curve of the §V example")
    p.add_argument("--points", type=int, default=200)

    for name, help_text in (
        ("fig2", "Px sweep: rotations + MaxMax envelope"),
        ("fig3", "Px sweep: Convex vs MaxMax"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--csv", help="write the series to a CSV file")

    p = sub.add_parser("fig4", help="Px sweep: convex profit composition")

    for name, help_text, has_length in (
        ("fig5", "scatter: MaxMax vs traditional", True),
        ("fig6", "scatter: MaxPrice vs MaxMax", True),
        ("fig7", "scatter: Convex vs MaxMax", True),
        ("fig9", "scatter: length-4 traditional vs Convex", False),
        ("fig10", "scatter: length-4 MaxMax vs Convex", False),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=20230901)
        p.add_argument("--csv", help="write the scatter points to a CSV file")
        if has_length:
            p.add_argument("--length", type=int, default=3, choices=(3, 4))

    p = sub.add_parser("fig8", help="per-token profit overlap, Convex vs MaxMax")
    p.add_argument("--seed", type=int, default=20230901)

    p = sub.add_parser("runtime", help="§VII runtime scaling")
    p.add_argument("--lengths", default="3,4,5,6,8,10")
    p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser("calibrate", help="§VI snapshot calibration counts")
    p.add_argument("--seed", type=int, default=20230901)

    p = sub.add_parser("detect", help="list profitable loops in a snapshot")
    p.add_argument("--seed", type=int, default=20230901)
    p.add_argument("--length", type=int, default=3)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for scoring (1 = serial)")

    p = sub.add_parser(
        "sweep", help="price sweep of the §V loop through the batched engine"
    )
    p.add_argument("--strategies", default="maxmax,maxprice",
                   help="comma-separated registry names (see --help of figs)")
    p.add_argument("--token", default="X", help="loop token whose price sweeps")
    p.add_argument("--max", type=float, default=20.0, dest="max_price")
    p.add_argument("--step", type=float, default=0.2)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for non-vectorizable strategies")
    p.add_argument("--csv", help="write the series to a CSV file")

    p = sub.add_parser("harvest", help="sequential greedy harvest of a snapshot")
    p.add_argument("--seed", type=int, default=20230901)
    p.add_argument("--rounds", type=int, default=25)
    p.add_argument("--floor", type=float, default=1.0, help="min profit per round ($)")
    p.add_argument("--gwei", type=float, default=None, help="gas price; overrides --floor with the gas breakeven")

    p = sub.add_parser(
        "discrepancy", help="Convex-vs-MaxMax gap vs mispricing level"
    )
    p.add_argument("--levels", default="0.01,0.15,0.4")

    p = sub.add_parser(
        "efficiency", help="market efficiency with vs without arbitrage"
    )
    p.add_argument("--blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser(
        "replay",
        help="stream swap/mint/burn events through the engine, "
        "re-detecting arbitrage incrementally per block",
    )
    p.add_argument("--events", help="JSONL event log (needs --snapshot)")
    p.add_argument("--snapshot", help="market snapshot JSON the log starts from")
    # synthetic-stream parameters: None = "not given", so combining
    # them with --events can be rejected instead of silently ignored
    p.add_argument("--seed", type=int, default=None,
                   help="synthetic stream seed (default 7)")
    p.add_argument("--tokens", type=int, default=None, help="default 12")
    p.add_argument("--pools", type=int, default=None, help="default 30")
    p.add_argument("--blocks", type=int, default=None, help="default 12")
    p.add_argument("--events-per-block", type=int, default=None,
                   dest="events_per_block", help="default 6")
    p.add_argument("--length", type=int, default=3, help="candidate loop length")
    p.add_argument("--strategies", default="maxmax",
                   help="comma-separated registry names to score loops with")
    p.add_argument("--mode", choices=("incremental", "full"), default="incremental")
    p.add_argument("--save-events", help="write the replayed stream to a JSONL file")
    p.add_argument("--save-snapshot",
                   help="write the starting market to a JSON file "
                   "(a stream is only replayable together with its snapshot)")
    p.add_argument("--csv", help="write the per-block report to a CSV file")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    handler(args)
    return 0


# ----------------------------------------------------------------------
# per-command handlers
# ----------------------------------------------------------------------


def _cmd_section5(args) -> None:
    numbers = analysis.section5_numbers()
    rows = sorted(numbers.items())
    print(report.format_table(["quantity", "value"], rows))


def _cmd_fig1(args) -> None:
    result = analysis.fig1_profit_curve(n_points=args.points)
    print("Fig. 1: profit vs input (X -> Y -> Z -> X)")
    print(report.sparkline(result.profits))
    print(
        f"optimal input = {result.optimal_input:.4f}, "
        f"optimal profit = {result.optimal_profit:.4f}, "
        f"d out/d in at optimum = {result.derivative_at_optimum:.6f}"
    )


def _cmd_fig2(args) -> None:
    series = analysis.fig2_rotation_sweep()
    print(report.render_sweep(series, title="Fig. 2: rotations + MaxMax vs Px"))
    if args.csv:
        report.sweep_to_csv(series, args.csv)
        print(f"wrote {args.csv}")


def _cmd_fig3(args) -> None:
    series = analysis.fig3_convex_vs_maxmax_sweep()
    print(report.render_sweep(series, title="Fig. 3: Convex vs MaxMax vs Px"))
    if args.csv:
        report.sweep_to_csv(series, args.csv)
        print(f"wrote {args.csv}")


def _cmd_fig4(args) -> None:
    grid, rows, monetized = analysis.fig4_profit_composition()
    print("Fig. 4: convex profit composition (X, Y, Z amounts) across Px")
    table_rows = [
        (f"{px:.1f}", *(f"{a:.4f}" for a in row), f"{m:.2f}")
        for px, row, m in zip(grid[::10], rows[::10], monetized[::10])
    ]
    print(report.format_table(["Px", "X", "Y", "Z", "monetized $"], table_rows))


def _scatter_command(fn):
    def handler(args):
        snapshot = paper_market(seed=args.seed)
        kwargs = {}
        if hasattr(args, "length"):
            kwargs["length"] = args.length
        result = fn(snapshot, **kwargs)
        print(report.render_scatter(result, title=fn.__name__))
        if getattr(args, "csv", None):
            report.scatter_to_csv(result, args.csv)
            print(f"wrote {args.csv}")

    return handler


def _cmd_fig8(args) -> None:
    snapshot = paper_market(seed=args.seed)
    result = analysis.fig8_token_profit_overlap(snapshot)
    print(
        f"Fig. 8: {len(result.loops)} loops; max per-token relative gap "
        f"between Convex and MaxMax profit vectors = {result.max_component_gap:.3e}"
    )


def _cmd_runtime(args) -> None:
    lengths = tuple(int(piece) for piece in args.lengths.split(","))
    result = analysis.runtime_scaling(lengths=lengths, repeats=args.repeats)
    print(report.render_runtime(result))


def _cmd_calibrate(args) -> None:
    result = analysis.snapshot_calibration(seed=args.seed)
    rows = [
        ("tokens", result.tokens, result.paper_tokens),
        ("pools", result.pools, result.paper_pools),
        ("profitable 3-loops", result.profitable_loops_len3, result.paper_loops_len3),
        ("profitable 4-loops", result.profitable_loops_len4, "n/a"),
    ]
    print(report.format_table(["quantity", "generated", "paper"], rows))


def _cmd_detect(args) -> None:
    snapshot = paper_market(seed=args.seed)
    from .strategies.maxmax import MaxMaxStrategy

    _snapshot, loops = analysis.profitable_loops(snapshot, args.length)
    engine = _make_engine(args.jobs)
    results = engine.evaluate_strategy(MaxMaxStrategy(), loops, snapshot.prices)
    scored = sorted(
        ((result.monetized_profit, loop) for result, loop in zip(results, loops)),
        key=lambda pair: -pair[0],
    )
    print(f"{len(loops)} profitable length-{args.length} loops; top {args.top}:")
    rows = [
        (f"${profit:,.2f}", repr(loop))
        for profit, loop in scored[: args.top]
    ]
    print(report.format_table(["maxmax profit", "loop"], rows))


def _cmd_sweep(args) -> None:
    from .core.types import Token
    from .data.example import section5_loop, section5_prices
    from .strategies import make_strategy

    loop = section5_loop()
    token = Token(args.token)
    if token not in loop.tokens:
        raise SystemExit(
            f"token {args.token!r} is not in the §V loop "
            f"({', '.join(t.symbol for t in loop.tokens)})"
        )
    names = [name.strip() for name in args.strategies.split(",") if name.strip()]
    if not names:
        raise SystemExit("--strategies needs at least one strategy name")
    try:
        strategies = {name: make_strategy(name) for name in names}
        grid = analysis.paper_px_grid(max_price=args.max_price, step=args.step)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    series = analysis.price_sweep(
        loop,
        section5_prices(),
        token,
        grid,
        strategies,
        engine=_make_engine(args.jobs),
    )
    title = f"engine sweep of P{args.token} ({', '.join(strategies)})"
    print(report.render_sweep(series, title=title))
    if args.csv:
        report.sweep_to_csv(series, args.csv)
        print(f"wrote {args.csv}")


def _cmd_harvest(args) -> None:
    from .analysis import greedy_harvest
    from .strategies.maxmax import MaxMaxStrategy

    snapshot = paper_market(seed=args.seed)
    floor = args.floor
    if args.gwei is not None:
        from .execution import GasModel

        floor = GasModel(gas_price_gwei=args.gwei).breakeven_gross_usd(3)
        print(f"gas breakeven at {args.gwei:g} gwei: {floor:.2f}$ per 3-loop")
    harvest = greedy_harvest(
        snapshot, MaxMaxStrategy(), min_profit_usd=floor, max_rounds=args.rounds
    )
    rows = [
        (i, f"${r.predicted_usd:,.2f}", f"${r.realized_usd:,.2f}",
         " -> ".join(t.symbol for t in r.loop.tokens))
        for i, r in enumerate(harvest.rounds)
    ]
    print(report.format_table(["round", "predicted", "realized", "loop"], rows))
    print(harvest)


def _cmd_discrepancy(args) -> None:
    from .analysis import discrepancy_vs_noise

    levels = tuple(float(piece) for piece in args.levels.split(","))
    points = discrepancy_vs_noise(noise_levels=levels)
    rows = [
        (
            p.price_noise,
            p.n_loops,
            f"{p.mean_rel_gap:.5%}",
            f"{p.max_rel_gap:.5%}",
            f"{p.frac_loops_with_gap:.1%}",
            f"{p.mean_log_rate:.4f}",
        )
        for p in points
    ]
    print("Convex - MaxMax gap vs market mispricing:")
    print(
        report.format_table(
            ["noise", "loops", "mean gap", "max gap", "loops w/ gap", "mean log-rate"],
            rows,
        )
    )


def _cmd_efficiency(args) -> None:
    from .data.synthetic import SyntheticMarketGenerator
    from .simulation import efficiency_experiment

    market = SyntheticMarketGenerator(
        n_tokens=15, n_pools=40, seed=args.seed, price_noise=0.015
    ).generate()
    without, with_arb = efficiency_experiment(market, n_blocks=args.blocks, seed=args.seed)
    print(f"mean mispricing index over {args.blocks} blocks:")
    print(f"  without arbitrage: {without.mean_mispricing():.5f}")
    print(f"  with arbitrage:    {with_arb.mean_mispricing():.5f}")
    print(f"profitable loops at final block: "
          f"{without.loop_series()[-1]} vs {with_arb.loop_series()[-1]}")
    arb = with_arb.agents[1]
    print(f"arbitrageur: {arb.trades} trades, ${arb.cumulative_usd:,.2f} profit")


def _cmd_replay(args) -> None:
    from .data.snapshot import MarketSnapshot
    from .data.synthetic import SyntheticMarketGenerator
    from .replay import MarketEventLog, ReplayDriver, generate_event_stream
    from .strategies import make_strategy

    if (args.events is None) != (args.snapshot is None):
        raise SystemExit("--events and --snapshot must be given together")
    synthetic_given = {
        "--seed": args.seed,
        "--tokens": args.tokens,
        "--pools": args.pools,
        "--blocks": args.blocks,
        "--events-per-block": args.events_per_block,
    }
    if args.events:
        extras = [flag for flag, value in synthetic_given.items() if value is not None]
        if extras:
            raise SystemExit(
                f"{', '.join(extras)} only shape generated streams; "
                "they cannot apply to a stream loaded with --events"
            )
        market = MarketSnapshot.load(args.snapshot)
        log = MarketEventLog.load(args.events)
    else:
        seed = args.seed if args.seed is not None else 7
        market = SyntheticMarketGenerator(
            n_tokens=args.tokens if args.tokens is not None else 12,
            n_pools=args.pools if args.pools is not None else 30,
            seed=seed,
            price_noise=0.015,
        ).generate()
        log = generate_event_stream(
            market,
            n_blocks=args.blocks if args.blocks is not None else 12,
            events_per_block=(
                args.events_per_block if args.events_per_block is not None else 6
            ),
            seed=seed,
        )
    if args.save_events:
        log.save(args.save_events)
        print(f"wrote {args.save_events}")
    if args.save_snapshot:
        market.save(args.save_snapshot)
        print(f"wrote {args.save_snapshot}")

    names = [name.strip() for name in args.strategies.split(",") if name.strip()]
    if not names:
        raise SystemExit("--strategies needs at least one strategy name")
    try:
        strategies = {name: make_strategy(name) for name in names}
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    driver = ReplayDriver(
        market, strategies=strategies, length=args.length, mode=args.mode
    )
    result = driver.replay(log)

    header = ["block", "events", "dirty", "evaluated", "loops>0", "mispricing"]
    header += [f"{name} $" for name in strategies]
    rows = [
        (
            r.block,
            r.n_events,
            len(r.dirty_pools),
            f"{r.evaluated_loops}/{r.total_loops}",
            r.profitable_loops,
            f"{r.mispricing_index:.5f}",
            *(f"{r.profit_usd[name]:,.2f}" for name in strategies),
        )
        for r in result.reports
    ]
    print(
        f"{args.mode} replay: {result.events_applied} events over "
        f"{len(result.reports)} blocks, {driver.total_loops} candidate "
        f"length-{args.length} loops"
    )
    print(report.format_table(header, rows))
    totals = ", ".join(
        f"{name} ${result.total_profit(name):,.2f}" for name in strategies
    )
    print(f"cumulative profit surface: {totals}")
    print(
        f"loop evaluations: {result.evaluations()} "
        f"(full recompute would be {driver.total_loops * len(result.reports)}); "
        f"cache {driver.engine.cache!r}"
    )
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["block", "n_events", "dirty_pools", "evaluated_loops",
                 "total_loops", "profitable_loops", "mispricing_index"]
                + [f"profit_usd_{name}" for name in strategies]
            )
            for r in result.reports:
                writer.writerow(
                    [r.block, r.n_events, len(r.dirty_pools), r.evaluated_loops,
                     r.total_loops, r.profitable_loops, r.mispricing_index]
                    + [r.profit_usd[name] for name in strategies]
                )
        print(f"wrote {args.csv}")


_HANDLERS = {
    "section5": _cmd_section5,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _scatter_command(analysis.fig5_maxmax_vs_traditional),
    "fig6": _scatter_command(analysis.fig6_maxprice_vs_maxmax),
    "fig7": _scatter_command(analysis.fig7_convex_vs_maxmax),
    "fig9": _scatter_command(analysis.fig9_len4_traditional),
    "fig10": _scatter_command(analysis.fig10_len4_maxmax),
    "fig8": _cmd_fig8,
    "runtime": _cmd_runtime,
    "calibrate": _cmd_calibrate,
    "detect": _cmd_detect,
    "sweep": _cmd_sweep,
    "harvest": _cmd_harvest,
    "discrepancy": _cmd_discrepancy,
    "efficiency": _cmd_efficiency,
    "replay": _cmd_replay,
}


if __name__ == "__main__":
    sys.exit(main())
