"""Foundational value types shared across the library.

The types here are deliberately small and immutable:

* :class:`Token` — an interned token symbol with optional metadata;
* :class:`TokenAmount` — a (token, amount) pair with arithmetic;
* :class:`PriceMap` — an immutable mapping token -> USD price used to
  monetize arbitrage profits (the paper's CEX prices);
* :class:`ProfitVector` — per-token net profit of an arbitrage, with
  monetization against a :class:`PriceMap`.

Amounts are plain ``float``.  Uniswap V2 itself uses 112.112 fixed
point; the paper's analysis (and its reference numbers, e.g. "33.7$")
is done in real arithmetic, so floats reproduce it faithfully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .errors import MissingPriceError

__all__ = [
    "Token",
    "TokenAmount",
    "PriceMap",
    "ProfitVector",
]


@dataclass(frozen=True, order=True)
class Token:
    """A token identified by its symbol.

    Tokens compare and hash by symbol only, so ``Token("WETH")`` created
    in two places is the same node in the token graph.  ``decimals`` and
    ``address`` are carried for realism (snapshots serialized from
    chain-like data keep them) but do not affect identity.
    """

    symbol: str
    decimals: int = field(default=18, compare=False)
    address: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.symbol:
            raise ValueError("token symbol must be non-empty")
        if self.decimals < 0:
            raise ValueError(f"decimals must be >= 0, got {self.decimals}")

    def __str__(self) -> str:
        return self.symbol

    def __repr__(self) -> str:
        return f"Token({self.symbol!r})"


@dataclass(frozen=True)
class TokenAmount:
    """An amount of a specific token.

    Supports addition/subtraction with amounts of the same token and
    scalar multiplication, so strategy code reads like the paper's
    algebra (``delta_out - delta_in``).
    """

    token: Token
    amount: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.amount):
            raise ValueError(f"amount must be finite, got {self.amount}")

    def _check_same_token(self, other: "TokenAmount") -> None:
        if self.token != other.token:
            raise ValueError(
                f"cannot combine amounts of {self.token} and {other.token}"
            )

    def __add__(self, other: "TokenAmount") -> "TokenAmount":
        self._check_same_token(other)
        return TokenAmount(self.token, self.amount + other.amount)

    def __sub__(self, other: "TokenAmount") -> "TokenAmount":
        self._check_same_token(other)
        return TokenAmount(self.token, self.amount - other.amount)

    def __mul__(self, scalar: float) -> "TokenAmount":
        return TokenAmount(self.token, self.amount * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "TokenAmount":
        return TokenAmount(self.token, -self.amount)

    def __str__(self) -> str:
        return f"{self.amount:g} {self.token.symbol}"


class PriceMap(Mapping[Token, float]):
    """Immutable token -> USD price mapping (the paper's CEX prices).

    Monetized profit is ``sum(price[t] * net_amount[t])``; this class is
    the single place where that lookup happens, raising
    :class:`~repro.core.errors.MissingPriceError` with a clear message
    when a token is not quoted.
    """

    __slots__ = ("_prices",)

    def __init__(self, prices: Mapping[Token, float] | Iterable[tuple[Token, float]]):
        items = dict(prices)
        for token, price in items.items():
            if not isinstance(token, Token):
                raise TypeError(f"PriceMap keys must be Token, got {token!r}")
            if not math.isfinite(price) or price < 0:
                raise ValueError(
                    f"price of {token} must be finite and >= 0, got {price}"
                )
        self._prices: dict[Token, float] = items

    @classmethod
    def from_symbols(cls, prices: Mapping[str, float]) -> "PriceMap":
        """Build a price map from ``{"WETH": 1650.0, ...}`` shorthand."""
        return cls({Token(sym): p for sym, p in prices.items()})

    def __getitem__(self, token: Token) -> float:
        try:
            return self._prices[token]
        except KeyError:
            raise MissingPriceError(
                f"no CEX price for token {token.symbol!r}"
            ) from None

    def __iter__(self) -> Iterator[Token]:
        return iter(self._prices)

    def __len__(self) -> int:
        return len(self._prices)

    def __repr__(self) -> str:
        inner = ", ".join(f"{t.symbol}={p:g}" for t, p in self._prices.items())
        return f"PriceMap({inner})"

    def price_of(self, token: Token) -> float:
        """Alias for ``self[token]`` that reads well in strategy code."""
        return self[token]

    def with_price(self, token: Token, price: float) -> "PriceMap":
        """Return a copy with one price replaced (used by sweeps)."""
        updated = dict(self._prices)
        updated[token] = price
        return PriceMap(updated)

    def max_price_token(self, candidates: Iterable[Token]) -> Token:
        """Token with the highest CEX price among ``candidates``.

        This is the start-token selection rule of the MaxPrice strategy.
        Ties break deterministically by symbol so experiments are
        reproducible.
        """
        ranked = sorted(candidates, key=lambda t: (-self[t], t.symbol))
        if not ranked:
            raise ValueError("candidates must be non-empty")
        return ranked[0]


@dataclass(frozen=True)
class ProfitVector:
    """Net per-token profit of an arbitrage (possibly multiple tokens).

    The traditional / MaxMax strategies produce a vector with a single
    non-zero component; the ConvexOptimization strategy can keep a
    surplus of *every* loop token (paper §V keeps 5 Y and 7.7 Z).
    """

    amounts: tuple[TokenAmount, ...]

    @classmethod
    def from_mapping(cls, net: Mapping[Token, float]) -> "ProfitVector":
        ordered = tuple(
            TokenAmount(token, amount)
            for token, amount in sorted(net.items(), key=lambda kv: kv[0].symbol)
        )
        return cls(ordered)

    @classmethod
    def single(cls, token: Token, amount: float) -> "ProfitVector":
        """Profit held entirely in one token (fixed-start strategies)."""
        return cls((TokenAmount(token, amount),))

    @classmethod
    def zero(cls) -> "ProfitVector":
        return cls(())

    def as_mapping(self) -> dict[Token, float]:
        return {ta.token: ta.amount for ta in self.amounts}

    def monetize(self, prices: PriceMap) -> float:
        """Monetized profit: ``sum(P_t * pi_t)`` (paper's core metric)."""
        return sum(prices[ta.token] * ta.amount for ta in self.amounts)

    def nonzero(self, tol: float = 0.0) -> "ProfitVector":
        """Drop components with ``|amount| <= tol``."""
        return ProfitVector(
            tuple(ta for ta in self.amounts if abs(ta.amount) > tol)
        )

    def __str__(self) -> str:
        if not self.amounts:
            return "<no profit>"
        return " + ".join(str(ta) for ta in self.amounts)
