"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystem layout described in ``DESIGN.md``:

* :class:`AmmError` — constant-product pool violations (bad reserves,
  over-withdrawal, invariant breaches);
* :class:`GraphError` — token-graph construction and loop enumeration;
* :class:`OptimizationError` — solver failures and infeasible programs;
* :class:`StrategyError` — strategy-level misuse (missing prices, empty
  loops);
* :class:`ExecutionError` — atomic plan execution failures;
* :class:`DataError` — snapshot / serialization problems;
* :class:`ReplayError` — event-log and market-replay problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AmmError",
    "InvalidReserveError",
    "InsufficientLiquidityError",
    "InvalidFeeError",
    "InvariantViolationError",
    "UnknownTokenError",
    "GraphError",
    "LoopError",
    "DegenerateLoopError",
    "OptimizationError",
    "InfeasibleProgramError",
    "SolverConvergenceError",
    "StrategyError",
    "MissingPriceError",
    "ExecutionError",
    "PlanValidationError",
    "ExecutionRevertedError",
    "DataError",
    "SnapshotFormatError",
    "ReplayError",
    "EventLogFormatError",
    "EventOrderError",
    "UnknownPoolError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class AmmError(ReproError):
    """Base class for AMM / liquidity-pool errors."""


class InvalidReserveError(AmmError, ValueError):
    """A pool was created or mutated with a non-positive reserve."""


class InsufficientLiquidityError(AmmError, ValueError):
    """A swap asked for more output than the pool reserve can supply."""


class InvalidFeeError(AmmError, ValueError):
    """Fee (tax) rate outside the half-open interval ``[0, 1)``."""


class InvariantViolationError(AmmError, RuntimeError):
    """The constant-product invariant ``x*y >= k`` was violated.

    This is an internal consistency check: if it fires, the swap math
    itself is broken, not the caller's input.
    """


class UnknownTokenError(AmmError, KeyError):
    """A token was referenced that the pool / registry does not hold."""


class GraphError(ReproError):
    """Base class for token-graph errors."""


class LoopError(GraphError, ValueError):
    """An arbitrage-loop object is structurally invalid."""


class DegenerateLoopError(LoopError):
    """A loop with fewer than two hops, or hops that do not chain."""


class OptimizationError(ReproError):
    """Base class for optimizer errors."""


class InfeasibleProgramError(OptimizationError, ValueError):
    """A convex program has no feasible point (or no interior point)."""


class SolverConvergenceError(OptimizationError, RuntimeError):
    """A solver exhausted its iteration budget without converging."""


class StrategyError(ReproError):
    """Base class for strategy-layer errors."""


class MissingPriceError(StrategyError, KeyError):
    """A CEX price was required for a token the oracle does not quote."""


class ExecutionError(ReproError):
    """Base class for execution-simulator errors."""


class PlanValidationError(ExecutionError, ValueError):
    """An execution plan is malformed (hops do not chain, bad amounts)."""


class ExecutionRevertedError(ExecutionError, RuntimeError):
    """Atomic execution failed and all pool state was rolled back."""


class DataError(ReproError):
    """Base class for snapshot / data errors."""


class SnapshotFormatError(DataError, ValueError):
    """A serialized snapshot could not be parsed."""


class ReplayError(ReproError):
    """Base class for event-log / market-replay errors."""


class EventLogFormatError(ReplayError, ValueError):
    """A serialized event log (JSONL) could not be parsed."""


class EventOrderError(ReplayError, ValueError):
    """Events were appended out of block order (blocks must be
    non-decreasing; a log is a time-ordered stream)."""


class UnknownPoolError(ReplayError, KeyError):
    """A replayed event referenced a pool id the market does not hold."""
