"""Arbitrage-loop model.

An :class:`ArbitrageLoop` is an ordered cycle of tokens connected by
pools: ``tokens[0] --pools[0]--> tokens[1] --pools[1]--> ...
--pools[-1]--> tokens[0]``.  The loop stores *which pool* serves each
hop (there can be parallel pools between the same pair), so two loops
over the same tokens through different pools are distinct objects.

Key operations:

* :meth:`ArbitrageLoop.rotations` — the *n* rotations of an *n*-token
  loop; a rotation fixes the start token, which is exactly what the
  traditional / MaxPrice / MaxMax strategies iterate over;
* :meth:`ArbitrageLoop.composition` — collapse the loop into a single
  :class:`~repro.amm.composition.SwapComposition` (see S3);
* :meth:`ArbitrageLoop.log_rate_sum` — the paper's arbitrage criterion
  ``sum(log p_ij) > 0``.

Loops hash/compare by their *canonical* form (rotated so the
lexicographically smallest hop key comes first), so cycle enumeration
can deduplicate rotations of the same cycle while keeping direction:
a loop and its reverse are different objects (they use the pools in
opposite directions and generally only one direction is profitable).
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import TYPE_CHECKING, Iterator, Sequence

from .errors import DegenerateLoopError
from .types import Token

if TYPE_CHECKING:  # imported lazily at runtime to avoid package cycles
    from ..amm.composition import SwapComposition
    from ..amm.pool import Pool

__all__ = ["ArbitrageLoop", "Rotation"]


class Rotation:
    """One rotation of a loop: a fixed start token and hop order.

    A rotation of the 3-loop in the paper is e.g. ``X -> Y -> Z -> X``;
    the other rotations are ``Y -> Z -> X -> Y`` and ``Z -> X -> Y -> Z``.
    """

    __slots__ = ("_loop", "_offset")

    def __init__(self, loop: "ArbitrageLoop", offset: int):
        self._loop = loop
        self._offset = offset % len(loop)

    @property
    def loop(self) -> "ArbitrageLoop":
        return self._loop

    @property
    def offset(self) -> int:
        """Start position of this rotation in the loop's token order."""
        return self._offset

    @property
    def start_token(self) -> Token:
        return self._loop.tokens[self._offset]

    @property
    def tokens(self) -> tuple[Token, ...]:
        """Token sequence starting at the rotation's start token."""
        t = self._loop.tokens
        return t[self._offset:] + t[: self._offset]

    @property
    def pools(self) -> tuple[Pool, ...]:
        """Pools in the order this rotation traverses them."""
        p = self._loop.pools
        return p[self._offset:] + p[: self._offset]

    def hops(self) -> Iterator[tuple[Token, Token, Pool]]:
        """Yield ``(token_in, token_out, pool)`` per hop."""
        toks = self.tokens
        pools = self.pools
        n = len(toks)
        for i in range(n):
            yield toks[i], toks[(i + 1) % n], pools[i]

    def composition(self) -> "SwapComposition":
        """Collapse this rotation into one linear-fractional map.

        Only defined for constant-product hops: the linear-fractional
        family is not closed under weighted (G3M) swaps, so mixing one
        in raises ``TypeError`` instead of silently mis-pricing —
        generic loops use :mod:`repro.optimize.chain` instead.
        """
        from ..amm.composition import compose_hops

        for pool in self.pools:
            if not getattr(pool, "is_constant_product", True):
                raise TypeError(
                    f"{pool!r} is not constant-product; use the chain-rule "
                    "optimizer for this rotation"
                )
        triples = []
        for token_in, _token_out, pool in self.hops():
            x, y = pool.reserves_oriented(token_in)
            triples.append((x, y, pool.fee))
        return compose_hops(triples)

    def simulate(self, amount_in: float) -> list[float]:
        """Hop-by-hop amounts ``[in, after hop 1, ..., out]`` without
        mutating pool state.  Cross-checks the composition algebra."""
        amounts = [amount_in]
        current = amount_in
        for token_in, _token_out, pool in self.hops():
            current = pool.quote_out(token_in, current)
            amounts.append(current)
        return amounts

    def __repr__(self) -> str:
        path = " -> ".join(t.symbol for t in self.tokens)
        return f"Rotation({path} -> {self.start_token.symbol})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rotation):
            return NotImplemented
        return self._loop == other._loop and self._offset == other._offset

    def __hash__(self) -> int:
        return hash((self._loop, self._offset))


class ArbitrageLoop:
    """An ordered token cycle with one pool per hop."""

    __slots__ = ("_tokens", "_pools", "__dict__")

    def __init__(self, tokens: Sequence[Token], pools: Sequence[Pool]):
        tokens = tuple(tokens)
        pools = tuple(pools)
        if len(tokens) < 2:
            raise DegenerateLoopError(
                f"a loop needs at least 2 tokens, got {len(tokens)}"
            )
        if len(tokens) != len(pools):
            raise DegenerateLoopError(
                f"{len(tokens)} tokens but {len(pools)} pools; a loop has "
                "exactly one pool per hop"
            )
        if len(set(tokens)) != len(tokens):
            raise DegenerateLoopError(
                f"loop tokens must be distinct, got {[t.symbol for t in tokens]}"
            )
        n = len(tokens)
        for i in range(n):
            token_in, token_out = tokens[i], tokens[(i + 1) % n]
            pool = pools[i]
            if token_in not in pool or token_out not in pool:
                raise DegenerateLoopError(
                    f"hop {token_in.symbol}->{token_out.symbol} does not match "
                    f"pool {pool!r}"
                )
        self._tokens = tokens
        self._pools = pools

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def tokens(self) -> tuple[Token, ...]:
        return self._tokens

    @property
    def pools(self) -> tuple[Pool, ...]:
        return self._pools

    def __len__(self) -> int:
        return len(self._tokens)

    def rotations(self) -> tuple[Rotation, ...]:
        """All ``len(self)`` rotations (one per possible start token)."""
        return tuple(Rotation(self, i) for i in range(len(self)))

    def rotation_from(self, start: Token) -> Rotation:
        """The rotation starting at ``start``."""
        try:
            offset = self._tokens.index(start)
        except ValueError:
            raise DegenerateLoopError(f"{start} is not in {self!r}") from None
        return Rotation(self, offset)

    def reversed(self) -> "ArbitrageLoop":
        """The same cycle traversed in the opposite direction.

        Keeps the same start token; hop ``i`` of the reverse uses the
        pool of hop ``n-1-i`` of the original.
        """
        rev_tokens = (self._tokens[0],) + tuple(reversed(self._tokens[1:]))
        rev_pools = tuple(reversed(self._pools))
        return ArbitrageLoop(rev_tokens, rev_pools)

    # ------------------------------------------------------------------
    # canonical identity
    # ------------------------------------------------------------------

    @cached_property
    def _canonical_key(self) -> tuple:
        """Rotation-invariant, direction-sensitive identity key."""
        n = len(self._tokens)
        hop_keys = tuple(
            (self._tokens[i].symbol, self._pools[i].pool_id) for i in range(n)
        )
        best = min(range(n), key=lambda i: hop_keys[i:] + hop_keys[:i])
        return hop_keys[best:] + hop_keys[:best]

    @cached_property
    def rotation_key_statics(self) -> tuple:
        """Per-rotation static key material, computed once per loop.

        Entry ``offset`` is ``(static, hop_refs)``: ``static`` is the
        hashable reserve-independent identity of the rotation (per hop:
        pool id, input-token symbol, fee — all immutable), ``hop_refs``
        the ``(pool, token_in, is_token0)`` triples a caller needs to
        gather *only the reserves* per lookup.  ``is_token0`` is
        ``None`` for pools without the ``token0`` / ``reserve0``
        fast-path attributes.  The engine's reserve-keyed cache builds
        its keys from this instead of re-walking the hops every call.
        """
        n = len(self._tokens)
        statics = []
        for offset in range(n):
            static = []
            refs = []
            for i in range(n):
                token_in = self._tokens[(offset + i) % n]
                pool = self._pools[(offset + i) % n]
                static.append((pool.pool_id, token_in.symbol, pool.fee))
                token0 = getattr(pool, "token0", None)
                if token0 is not None and hasattr(pool, "reserve0"):
                    refs.append((pool, token_in, token_in == token0))
                else:
                    refs.append((pool, token_in, None))
            statics.append((tuple(static), tuple(refs)))
        return tuple(statics)

    @property
    def canonical_id(self) -> str:
        """Stable string identity: ``token/pool`` hops from the
        canonical rotation.  Rotation-invariant and direction-sensitive
        like ``__eq__``; the total order it induces is what makes
        profit-tied rankings (detect output, the service's opportunity
        book) deterministic across runs."""
        return "|".join(f"{sym}/{pid}" for sym, pid in self._canonical_key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArbitrageLoop):
            return NotImplemented
        return self._canonical_key == other._canonical_key

    def __hash__(self) -> int:
        return hash(self._canonical_key)

    def __repr__(self) -> str:
        path = " -> ".join(t.symbol for t in self._tokens)
        return f"ArbitrageLoop({path} -> {self._tokens[0].symbol})"

    # ------------------------------------------------------------------
    # arbitrage analytics
    # ------------------------------------------------------------------

    def composition(self) -> SwapComposition:
        """Composition of the default rotation (start = ``tokens[0]``)."""
        return Rotation(self, 0).composition()

    def log_rate_sum(self) -> float:
        """``sum(log p_ij)`` around the loop (fee-adjusted).

        The paper's arbitrage criterion: the loop is an arbitrage loop
        iff this is strictly positive.  Rotation-invariant.
        """
        total = 0.0
        n = len(self._tokens)
        for i in range(n):
            pool = self._pools[i]
            total += math.log(pool.spot_price(self._tokens[i]))
        return total

    def is_arbitrage(self, tol: float = 0.0) -> bool:
        """True iff the loop currently admits risk-free profit."""
        return self.log_rate_sum() > tol
