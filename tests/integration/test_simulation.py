"""Integration tests for the block simulation package."""

from __future__ import annotations

import pytest

from repro.data import SyntheticMarketGenerator
from repro.replay import ReplayDriver
from repro.simulation import (
    Arbitrageur,
    LiquidityProvider,
    RetailTrader,
    SimulationEngine,
    collect_metrics,
    efficiency_experiment,
    mispricing_index,
)
from repro.strategies import MaxMaxStrategy


@pytest.fixture(scope="module")
def small_market():
    """A small market so per-block loop counting stays fast."""
    return SyntheticMarketGenerator(
        n_tokens=12, n_pools=30, seed=99, price_noise=0.015
    ).generate()


class TestAgents:
    def test_retail_trader_moves_reserves(self, small_market):
        market = small_market.copy()
        before = market.to_json()
        trader = RetailTrader(seed=1, trades_per_block=10)
        trader.on_block(market, market.prices, block=0)
        assert market.to_json() != before
        assert trader.total_trades == 10

    def test_retail_trader_validation(self):
        with pytest.raises(ValueError, match="min_size"):
            RetailTrader(seed=1, min_size=0.5, max_size=0.1)

    def test_lp_changes_depth_not_price(self, small_market):
        market = small_market.copy()
        pool = next(iter(market.registry))
        price_before = pool.spot_price(pool.token0)
        lp = LiquidityProvider(seed=2, actions_per_block=20)
        lp.on_block(market, market.prices, block=0)
        assert lp.mints + lp.burns > 0
        assert pool.spot_price(pool.token0) == pytest.approx(price_before, rel=1e-9)

    def test_lp_validation(self):
        with pytest.raises(ValueError, match="max_fraction"):
            LiquidityProvider(seed=1, max_fraction=1.5)

    def test_arbitrageur_books_profit(self, small_market):
        market = small_market.copy()
        arb = Arbitrageur(strategy=MaxMaxStrategy(), max_loops_per_block=10)
        arb.on_block(market, market.prices, block=0)
        assert arb.trades > 0
        assert arb.cumulative_usd > 0
        assert arb.reverts == 0
        assert len(arb.profits_by_block) == 1


class TestMispricingIndex:
    def test_zero_for_parity_market(self):
        snap = SyntheticMarketGenerator(
            n_tokens=8, n_pools=15, seed=1, price_noise=0.0
        ).generate()
        assert mispricing_index(snap, snap.prices) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_noisy_market(self, small_market):
        assert mispricing_index(small_market, small_market.prices) > 0.001

    def test_collect_metrics(self, small_market):
        metrics = collect_metrics(small_market, small_market.prices, block=7)
        assert metrics.block == 7
        assert metrics.total_tvl_usd > 0
        assert metrics.profitable_loops >= 0


class TestEngine:
    def test_run_is_deterministic(self, small_market):
        def run():
            engine = SimulationEngine(
                small_market,
                [RetailTrader(seed=5), Arbitrageur(strategy=MaxMaxStrategy())],
                price_seed=5,
                count_loops=False,
            )
            return engine.run(5)

        a, b = run(), run()
        assert a.mispricing_series() == b.mispricing_series()
        assert a.agents[1].cumulative_usd == b.agents[1].cumulative_usd

    def test_source_market_untouched(self, small_market):
        before = small_market.to_json()
        SimulationEngine(
            small_market, [RetailTrader(seed=1)], count_loops=False
        ).run(3)
        assert small_market.to_json() == before

    def test_metrics_per_block(self, small_market):
        result = SimulationEngine(
            small_market, [RetailTrader(seed=1)], count_loops=False
        ).run(4)
        assert len(result.metrics) == 4
        assert [m.block for m in result.metrics] == [0, 1, 2, 3]

    def test_negative_blocks_rejected(self, small_market):
        engine = SimulationEngine(small_market, [], count_loops=False)
        with pytest.raises(ValueError, match="n_blocks"):
            engine.run(-1)


class TestEventEmission:
    """Simulation runs are replayable artifacts: the emitted event log
    applied to the initial snapshot reproduces the final market."""

    def test_run_emits_canonical_events(self, small_market):
        result = SimulationEngine(
            small_market,
            [RetailTrader(seed=3, trades_per_block=4), LiquidityProvider(seed=4)],
            price_seed=3,
            count_loops=False,
        ).run(3)
        assert result.event_log is not None
        assert result.initial_market is not None
        assert result.event_log.blocks() == (0, 1, 2)
        # retail flow: 4 swaps per block land in the log
        from repro.amm.events import SwapEvent

        swaps = [e for e in result.event_log if isinstance(e, SwapEvent)]
        assert len(swaps) == 12

    def test_replay_reproduces_simulation_exactly(self, small_market):
        engine = SimulationEngine(
            small_market,
            [
                RetailTrader(seed=5),
                LiquidityProvider(seed=6),
                Arbitrageur(strategy=MaxMaxStrategy(), max_loops_per_block=4),
            ],
            price_seed=5,
            count_loops=False,
        )
        result = engine.run(5)
        driver = ReplayDriver(result.initial_market, mode="incremental")
        driver.replay(result.event_log)
        for pool in result.market.registry:
            replayed = driver.market.registry[pool.pool_id]
            assert replayed.reserve_of(replayed.token0) == pool.reserve_of(pool.token0)
            assert replayed.reserve_of(replayed.token1) == pool.reserve_of(pool.token1)
        final_prices = engine.oracle.snapshot()
        assert all(driver.prices[t] == p for t, p in final_prices.items())

    def test_record_events_off(self, small_market):
        result = SimulationEngine(
            small_market, [RetailTrader(seed=1)], count_loops=False,
            record_events=False,
        ).run(2)
        assert result.event_log is None
        assert result.initial_market is None


class TestEfficiencyExperiment:
    def test_arbitrage_aligns_prices(self, small_market):
        """The paper's economic premise: arbitrageurs pull pools back
        toward CEX parity and exhaust profitable loops."""
        without, with_arb = efficiency_experiment(small_market, n_blocks=6)
        assert with_arb.mean_mispricing() < without.mean_mispricing()
        # an aggressive searcher clears every detectable loop
        assert with_arb.loop_series()[-1] <= without.loop_series()[-1]
        arb = with_arb.agents[1]
        assert arb.cumulative_usd > 0
