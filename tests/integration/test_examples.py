"""Smoke tests: the shipped examples must run and print sane output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "206.15" in out  # convex monetized profit
        assert "reverted: False" in out

    def test_runtime_study(self):
        out = run_example("runtime_study.py", "--max-length", "4", "--repeats", "1")
        assert "loop length" in out
        assert "convex/maxmax" in out

    def test_replay_stream(self, tmp_path):
        out = run_example(
            "replay_stream.py", "--blocks", "4", "--pools", "18",
            "--tokens", "9", "--out-dir", str(tmp_path),
        )
        assert "bit-identical to full recompute" in out
        assert (tmp_path / "stream.jsonl").exists()
        assert (tmp_path / "market.json").exists()

    def test_opportunity_service(self):
        out = run_example(
            "opportunity_service.py", "--blocks", "4", "--pools", "18",
            "--tokens", "9", "--shards", "3",
        )
        assert "parity with batch detect: OK" in out
        assert "top opportunities:" in out
        assert "throughput" in out

    @pytest.mark.slow
    def test_price_sweep_figures(self, tmp_path):
        out = run_example("price_sweep_figures.py", "--csv-dir", str(tmp_path))
        assert "distinct optimum positions (rounded): 6" in out
        assert (tmp_path / "fig2.csv").exists()
        assert (tmp_path / "fig3.csv").exists()

    @pytest.mark.slow
    def test_empirical_study(self):
        out = run_example("empirical_study.py")
        assert "profitable length-3 loops:" in out
        assert "Fig. 7" in out

    @pytest.mark.slow
    def test_live_bot(self):
        out = run_example("live_bot.py", "--blocks", "5")
        assert "maxmax-bot" in out
        assert "cumulative profit" in out

    @pytest.mark.slow
    def test_searcher_playbook(self):
        out = run_example("searcher_playbook.py")
        assert "bundle" in out
        assert "sequential harvest" in out
