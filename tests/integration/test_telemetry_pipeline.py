"""Integration tests for telemetry across the pipeline.

A traced service run must cover the whole hot path —
ingest → apply → bounds → quote → publish — on one monotonic
timeline; child-process shards must ship their spans back; the
structured logs must fire on shedding and subscriber gaps; and the
scrape registry must expose the routing/prune counters the
acceptance list names.
"""

from __future__ import annotations

import logging

import pytest

from repro.replay import ReplayDriver, generate_event_stream
from repro.service import OpportunityService, log_source, make_workload
from repro.telemetry import trace
from repro.telemetry.export import chrome_trace_events, prometheus_text
from repro.telemetry.metrics import MetricRegistry


@pytest.fixture(scope="module")
def workload():
    return make_workload(10, 24, 8, 6, seed=11)


@pytest.fixture
def traced():
    trace.clear()
    trace.enable()
    yield
    trace.disable()
    trace.clear()


class TestTracedServiceRun:
    async def test_spans_cover_the_hot_path(self, workload, traced):
        market, log = workload
        service = OpportunityService(market, n_shards=2)
        await service.run(log_source(log))
        names = {s.name for s in trace.spans()}
        assert {
            "ingest.block",
            "shard.queue_wait",
            "shard.block",
            "shard.apply",
            "shard.quote",
            "publish.book",
        } <= names
        # and the trace is Chrome/Perfetto-renderable
        events = chrome_trace_events(trace.spans())
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)

    async def test_nesting_shard_stages_under_the_block_span(
        self, workload, traced
    ):
        market, log = workload
        await OpportunityService(market, n_shards=1).run(log_source(log))
        spans = trace.spans()
        blocks = {s.span_id for s in spans if s.name == "shard.block"}
        stages = [s for s in spans if s.name in ("shard.apply", "shard.quote")]
        assert stages
        assert all(s.parent_id in blocks for s in stages)

    async def test_disabled_run_records_nothing(self, workload):
        market, log = workload
        trace.clear()
        await OpportunityService(market, n_shards=2).run(log_source(log))
        assert len(trace.spans()) == 0

    async def test_process_backend_ships_child_spans(self, workload, traced):
        market, log = workload
        service = OpportunityService(market, n_shards=2, backend="process")
        await service.run(log_source(log))
        shipped = [s for s in trace.spans() if s.name == "shard.block"]
        assert shipped
        # child spans land on the shard's display lane (tid = shard+1)
        assert {s.tid for s in shipped} <= {1, 2}
        # and on the parent's monotonic timeline: publishes happen
        # after the shard block that produced them started
        publishes = [s for s in trace.spans() if s.name == "publish.book"]
        assert publishes
        assert min(p.start_ns for p in publishes) >= min(
            s.start_ns for s in shipped
        )


class TestTracedReplay:
    def test_replay_spans_and_published_metrics(self, workload, traced):
        market, _ = workload
        log = generate_event_stream(market, n_blocks=4, events_per_block=5, seed=3)
        driver = ReplayDriver(market, prune=True)
        driver.replay(log)
        names = {s.name for s in trace.spans()}
        assert {"replay.apply", "replay.quote"} <= names
        registry = driver.publish_metrics(MetricRegistry())
        snap = registry.snapshot()
        assert snap["counters"]['replay_blocks{mode=incremental}'] == 4
        assert (
            snap["counters"]['replay_evaluations{mode=incremental}']
            == sum(r.evaluated_loops for r in driver.reports)
        )
        assert "cache_hits{layer=replay}" in snap["counters"]
        assert "evaluator_pruned_loops{layer=replay}" in snap["counters"]


class TestScrapeRegistry:
    async def test_scrape_exposes_routing_and_prune_counters(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=2, prune_top_k=5)
        await service.run(log_source(log))
        text = prometheus_text(service.scrape_registry())
        lines = text.splitlines()
        assert "# TYPE events_ingested counter" in lines
        assert "# TYPE loops_pruned counter" in lines
        assert "# TYPE evaluator_kernel_loops counter" in lines
        assert any(line.startswith("end_to_end_count") for line in lines)
        assert any(
            line.startswith('evaluator_scalar_loops{shard="0"}')
            for line in lines
        )
        assert any(line.startswith("shard_queue_depth_max") for line in lines)


class TestStructuredLogs:
    async def test_shedding_logs_a_warning(self, workload, caplog):
        market, log = workload

        async def burst():
            for event in log:
                yield event

        service = OpportunityService(
            market, n_shards=1, queue_size=1, ingest_policy="drop"
        )
        with caplog.at_level(logging.WARNING, logger="repro.service.pipeline"):
            report = await service.run(burst())
        if report.blocks_dropped:
            shed = [
                r for r in caplog.records if "shed block" in r.getMessage()
            ]
            assert len(shed) == report.blocks_dropped
            assert all(r.name == "repro.service.pipeline" for r in shed)

    async def test_subscriber_gap_and_resync_log_transitions(self, caplog):
        from repro.service.book import Opportunity, OpportunityBook

        def entry(loop_id, profit):
            return Opportunity(
                loop_id=loop_id, path=loop_id, profit_usd=profit,
                amount_in=None, start_symbol=None, block=0, shard=0,
            )

        book = OpportunityBook()
        sub = book.subscribe(maxsize=1)
        with caplog.at_level(logging.INFO, logger="repro.service.book"):
            book.apply(0, 0, [entry("a", 1.0)])
            book.apply(1, 0, [entry("b", 2.0)])  # overflow -> gap
            book.apply(2, 0, [entry("c", 3.0)])  # still gapped: no new log
            sub.resync()
        gap_logs = [r for r in caplog.records if "gapped" in r.getMessage()]
        assert len(gap_logs) == 1  # transition, not per-delta
        resync_logs = [
            r for r in caplog.records if "resyncing" in r.getMessage()
        ]
        assert len(resync_logs) == 1
        assert "2 deltas dropped" in resync_logs[0].getMessage()
