"""Integration tests for multi-loop portfolio analysis."""

from __future__ import annotations

import pytest

from repro.analysis import (
    conflict_graph,
    greedy_harvest,
    independent_bundle,
    profitable_loops,
)
from repro.execution import ExecutionSimulator, plan_from_result
from repro.strategies import MaxMaxStrategy


@pytest.fixture(scope="module")
def market():
    from repro.data import paper_market

    return paper_market()


@pytest.fixture(scope="module")
def loops_and_results(market):
    _snapshot, loops = profitable_loops(market, 3)
    strategy = MaxMaxStrategy()
    results = [strategy.evaluate(loop, market.prices) for loop in loops]
    return loops, results


class TestConflictGraph:
    def test_nodes_match_loops(self, loops_and_results):
        loops, _ = loops_and_results
        graph = conflict_graph(loops)
        assert graph.number_of_nodes() == len(loops)

    def test_edges_only_between_pool_sharers(self, loops_and_results):
        loops, _ = loops_and_results
        graph = conflict_graph(loops)
        for a, b in list(graph.edges())[:200]:
            pools_a = {p.pool_id for p in loops[a].pools}
            pools_b = {p.pool_id for p in loops[b].pools}
            assert pools_a & pools_b

    def test_hub_markets_conflict_heavily(self, loops_and_results):
        loops, _ = loops_and_results
        graph = conflict_graph(loops)
        # hub-dominated markets: most loops share a pool with another
        assert graph.number_of_edges() > 0


class TestIndependentBundle:
    def test_bundle_is_independent(self, loops_and_results):
        loops, results = loops_and_results
        bundle = independent_bundle(loops, results)
        used_pools: set[str] = set()
        for index in bundle:
            pool_ids = {p.pool_id for p in loops[index].pools}
            assert not (pool_ids & used_pools)
            used_pools |= pool_ids

    def test_bundle_sorted_greedily(self, loops_and_results):
        loops, results = loops_and_results
        bundle = independent_bundle(loops, results)
        profits = [results[i].monetized_profit for i in bundle]
        assert profits == sorted(profits, reverse=True)
        assert all(p > 0 for p in profits)

    def test_bundle_executes_at_predicted_profit(self, market, loops_and_results):
        """Independence means the whole bundle realizes exactly the sum
        of the individual predictions on one shared market copy."""
        loops, results = loops_and_results
        bundle = independent_bundle(loops, results)
        registry = market.registry.copy()
        simulator = ExecutionSimulator(registry=registry)
        realized = 0.0
        predicted = 0.0
        for index in bundle:
            receipt = simulator.execute(
                plan_from_result(results[index], slippage_tolerance=1e-9)
            )
            assert not receipt.reverted
            realized += receipt.monetized(market.prices)
            predicted += results[index].monetized_profit
        assert realized == pytest.approx(predicted, rel=1e-6)

    def test_length_mismatch_rejected(self, loops_and_results):
        loops, results = loops_and_results
        with pytest.raises(ValueError, match="loops but"):
            independent_bundle(loops, results[:-1])


class TestGreedyHarvest:
    def test_harvest_terminates_and_profits(self, market):
        report = greedy_harvest(
            market, MaxMaxStrategy(), min_profit_usd=1.0, max_rounds=20
        )
        assert report.total_usd > 0
        assert len(report.rounds) <= 20
        assert not any(round_.reverted for round_ in report.rounds)

    def test_rounds_respect_floor(self, market):
        """Every executed round clears the floor.  (Round profits are
        NOT monotone: executing one loop can move a shared pool in a
        direction that *improves* another loop, so we only assert the
        floor, not decrease.)"""
        floor = 1.0
        report = greedy_harvest(
            market, MaxMaxStrategy(), min_profit_usd=floor, max_rounds=15
        )
        for round_ in report.rounds:
            assert round_.predicted_usd > floor

    def test_realized_matches_predicted(self, market):
        report = greedy_harvest(
            market, MaxMaxStrategy(), min_profit_usd=1.0, max_rounds=5
        )
        for round_ in report.rounds:
            assert round_.realized_usd == pytest.approx(
                round_.predicted_usd, rel=1e-6
            )

    def test_snapshot_untouched(self, market):
        before = market.to_json()
        greedy_harvest(market, MaxMaxStrategy(), min_profit_usd=1.0, max_rounds=3)
        assert market.to_json() == before

    def test_str_report(self, market):
        report = greedy_harvest(
            market, MaxMaxStrategy(), min_profit_usd=5.0, max_rounds=3
        )
        assert "harvested $" in str(report)


class TestGasAwareHarvest:
    def test_gas_floor_reduces_rounds(self, market):
        from repro.execution import GasModel

        model = GasModel(gas_price_gwei=50.0)
        floor = model.breakeven_gross_usd(3)
        cheap = greedy_harvest(
            market, MaxMaxStrategy(), min_profit_usd=0.01, max_rounds=30
        )
        gas_aware = greedy_harvest(
            market, MaxMaxStrategy(), min_profit_usd=floor, max_rounds=30
        )
        assert len(gas_aware.rounds) <= len(cheap.rounds)
