"""Integration tests for the Convex-vs-MaxMax discrepancy study."""

from __future__ import annotations

import pytest

from repro.analysis import discrepancy_vs_noise, loop_discrepancy
from repro.data import section5_loop, section5_prices


class TestLoopDiscrepancy:
    def test_section5_gap(self):
        """The §V example has a real gap: (206.1 - 205.6)/205.6 ~ 0.27 %."""
        gap = loop_discrepancy(section5_loop(), section5_prices())
        assert gap == pytest.approx(0.0027, abs=0.0005)

    def test_no_arb_loop_zero_gap(self, no_arb_loop, simple_prices):
        assert loop_discrepancy(no_arb_loop, simple_prices) == 0.0

    def test_gap_nonnegative(self, s5_loop, s5_prices):
        assert loop_discrepancy(s5_loop, s5_prices) >= 0.0


class TestDiscrepancyVsNoise:
    @pytest.fixture(scope="class")
    def points(self):
        return discrepancy_vs_noise(noise_levels=(0.01, 0.4))

    def test_small_noise_zero_gap(self, points):
        """At §VI-like mispricing the strategies coincide — the
        quantitative explanation of the paper's Fig. 7."""
        low = points[0]
        assert low.n_loops > 0
        assert low.mean_rel_gap == pytest.approx(0.0, abs=1e-9)
        assert low.frac_loops_with_gap == 0.0

    def test_large_noise_opens_gap(self, points):
        """Only violently mispriced loops (§V-example scale) reward
        holding a mixture of tokens."""
        high = points[-1]
        assert high.n_loops > 0
        assert high.max_rel_gap > 0.01
        assert high.frac_loops_with_gap > 0.0

    def test_log_rate_grows_with_noise(self, points):
        assert points[-1].mean_log_rate > points[0].mean_log_rate
