"""Cross-validation sweeps: independent implementations must agree on
the empirical market, loop by loop."""

from __future__ import annotations

import pytest

from repro.analysis import profitable_loops
from repro.optimize import optimize_rotation_chain
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    TraditionalStrategy,
    optimize_rotation_by,
)


@pytest.fixture(scope="module")
def market_and_loops():
    from repro.data import paper_market

    market = paper_market()
    _snapshot, loops = profitable_loops(market, 3)
    return market, loops


class TestOptimizerAgreementOnEmpiricalLoops:
    def test_three_methods_agree_everywhere(self, market_and_loops):
        _market, loops = market_and_loops
        for loop in loops[:40]:
            for rotation in loop.rotations():
                exact = optimize_rotation_by(rotation, "closed_form")
                bis = optimize_rotation_by(rotation, "bisection")
                assert bis.x == pytest.approx(exact.x, rel=1e-6, abs=1e-9)
                if exact.x > 0:
                    gold = optimize_rotation_by(rotation, "golden")
                    assert gold.value == pytest.approx(
                        exact.value, rel=1e-6, abs=1e-9
                    )

    def test_chain_rule_agrees_with_closed_form(self, market_and_loops):
        _market, loops = market_and_loops
        for loop in loops[:40]:
            rotation = loop.rotations()[0]
            exact = optimize_rotation_by(rotation, "closed_form")
            chain = optimize_rotation_chain(rotation)
            assert chain.x == pytest.approx(exact.x, rel=1e-6, abs=1e-9)


class TestBackendAgreementOnEmpiricalLoops:
    def test_barrier_equals_slsqp(self, market_and_loops):
        market, loops = market_and_loops
        barrier = ConvexOptimizationStrategy(backend="barrier")
        slsqp = ConvexOptimizationStrategy(backend="slsqp")
        for loop in loops[:30]:
            b = barrier.evaluate(loop, market.prices).monetized_profit
            s = slsqp.evaluate(loop, market.prices).monetized_profit
            assert b == pytest.approx(s, rel=1e-4, abs=1e-6 * max(1.0, b))


class TestMethodInvarianceOfStrategies:
    def test_maxmax_method_invariant(self, market_and_loops):
        market, loops = market_and_loops
        for loop in loops[:20]:
            closed = MaxMaxStrategy(method="closed_form").evaluate(loop, market.prices)
            bisect = MaxMaxStrategy(method="bisection").evaluate(loop, market.prices)
            assert closed.monetized_profit == pytest.approx(
                bisect.monetized_profit, rel=1e-6
            )
            assert closed.start_token == bisect.start_token

    def test_traditional_deterministic(self, market_and_loops):
        market, loops = market_and_loops
        loop = loops[0]
        token = loop.tokens[0]
        a = TraditionalStrategy(start_token=token).evaluate(loop, market.prices)
        b = TraditionalStrategy(start_token=token).evaluate(loop, market.prices)
        assert a.monetized_profit == b.monetized_profit
        assert a.hop_amounts == b.hop_amounts
