"""Integration: every figure's harness function reproduces the
paper's qualitative claims (the 'shape' of each figure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    fig1_profit_curve,
    fig2_rotation_sweep,
    fig3_convex_vs_maxmax_sweep,
    fig4_profit_composition,
    fig5_maxmax_vs_traditional,
    fig6_maxprice_vs_maxmax,
    fig7_convex_vs_maxmax,
    fig8_token_profit_overlap,
    fig9_len4_traditional,
    fig10_len4_maxmax,
    runtime_scaling,
    section5_numbers,
    snapshot_calibration,
)
from repro.data import SECTION5_PAPER_NUMBERS


SMALL_GRID = np.array([1e-9, 2.0, 5.0, 10.0, 15.0, 20.0])


@pytest.fixture(scope="module")
def market():
    from repro.data import paper_market

    return paper_market()


class TestFig1:
    def test_optimum_matches_paper(self):
        result = fig1_profit_curve()
        assert result.optimal_input == pytest.approx(27.0, abs=0.1)
        assert result.optimal_profit == pytest.approx(16.87, abs=0.05)

    def test_derivative_one_at_optimum(self):
        result = fig1_profit_curve()
        assert result.derivative_at_optimum == pytest.approx(1.0, rel=1e-9)

    def test_curve_concave_with_interior_max(self):
        result = fig1_profit_curve(n_points=300)
        peak = np.argmax(result.profits)
        assert 0 < peak < len(result.profits) - 1
        second_diff = np.diff(result.profits, 2)
        assert np.all(second_diff < 1e-9)


class TestFig2:
    def test_maxmax_is_pointwise_envelope(self):
        series = fig2_rotation_sweep(grid=SMALL_GRID)
        mm = series.series("maxmax")
        for label in ("start_X", "start_Y", "start_Z"):
            assert np.all(mm >= series.series(label) - 1e-9)

    def test_x_rotation_overtakes_maxprice_at_high_px(self):
        """Paper: at Px ~ 15$, starting from X beats the MaxPrice
        rotation (which starts from Z, price 20$)."""
        series = fig2_rotation_sweep(grid=np.array([15.0]))
        assert series.series("start_X")[0] > series.series("maxprice")[0]

    def test_rotation_y_z_flat_in_px(self):
        series = fig2_rotation_sweep(grid=SMALL_GRID)
        for label in ("start_Y", "start_Z"):
            values = series.series(label)
            assert np.ptp(values) < 1e-9

    def test_known_values_at_px2(self):
        series = fig2_rotation_sweep(grid=np.array([2.0]))
        point = series.points[0]
        assert point.monetized("start_X") == pytest.approx(33.74, abs=0.05)
        assert point.monetized("start_Y") == pytest.approx(201.14, abs=0.05)
        assert point.monetized("start_Z") == pytest.approx(205.59, abs=0.05)


class TestFig3:
    def test_convex_dominates_everywhere(self):
        series = fig3_convex_vs_maxmax_sweep(grid=SMALL_GRID)
        mm = series.series("maxmax")
        cv = series.series("convex")
        assert np.all(cv >= mm - 1e-6)

    def test_gap_is_small_but_real(self):
        series = fig3_convex_vs_maxmax_sweep(grid=np.array([2.0]))
        gap = series.series("convex")[0] - series.series("maxmax")[0]
        assert 0.0 < gap < 2.0  # paper: 206.1 vs 205.6


class TestFig4:
    def test_composition_monetizes_consistently(self):
        grid, rows, monetized = fig4_profit_composition(grid=SMALL_GRID)
        for px, row, total in zip(grid, rows, monetized):
            expected = row[0] * px + row[1] * 10.2 + row[2] * 20.0
            assert total == pytest.approx(expected, rel=1e-6, abs=1e-6)

    def test_profit_amounts_nonnegative(self):
        _grid, rows, _monetized = fig4_profit_composition(grid=SMALL_GRID)
        assert np.all(rows >= -1e-8)

    def test_optimal_points_cluster(self):
        """Paper: optima lie in a small number of positions."""
        _grid, rows, _monetized = fig4_profit_composition(grid=SMALL_GRID)
        rounded = {tuple(np.round(row, 1)) for row in rows}
        assert len(rounded) <= len(SMALL_GRID)


class TestSection5Numbers:
    def test_all_paper_numbers(self):
        ours = section5_numbers()
        paper = SECTION5_PAPER_NUMBERS
        for key in (
            "monetized_from_X",
            "monetized_from_Y",
            "monetized_from_Z",
            "maxmax",
        ):
            assert ours[key] == pytest.approx(paper[key], abs=0.1), key
        assert ours["convex"] == pytest.approx(paper["convex"], abs=0.1)
        assert ours["convex_profit_Y"] == pytest.approx(
            paper["convex_profit_Y"], abs=0.1
        )
        assert ours["convex_profit_Z"] == pytest.approx(
            paper["convex_profit_Z"], abs=0.1
        )


class TestScatterFigures:
    def test_fig5_all_points_below_line(self, market):
        result = fig5_maxmax_vs_traditional(market)
        assert result.stats.n >= 3 * 100  # three points per loop
        assert result.stats.frac_below_or_on == 1.0
        assert result.stats.max_rel_excess <= 1e-9

    def test_fig6_maxprice_below_with_strict_cases(self, market):
        result = fig6_maxprice_vs_maxmax(market)
        assert result.stats.frac_below_or_on == 1.0
        assert result.stats.frac_strictly_below > 0.0

    def test_fig7_convex_equals_maxmax_almost(self, market):
        result = fig7_convex_vs_maxmax(market)
        assert result.stats.frac_below_or_on == 1.0  # maxmax never above convex
        assert result.stats.mean_rel_gap < 0.01      # ... and almost equal
        assert result.stats.pearson_r > 0.999

    def test_fig8_profit_vectors_overlap(self, market):
        result = fig8_token_profit_overlap(market)
        assert len(result.loops) > 0
        # Fig. 8: the clouds overlap; per-token differences are small
        # relative to each loop's profit scale.
        assert result.max_component_gap < 0.2

    @pytest.mark.slow
    def test_fig9_len4_traditional_below_convex(self, market):
        result = fig9_len4_traditional(market)
        assert result.stats.frac_below_or_on == 1.0
        assert result.stats.n >= 4  # 4 points per loop

    @pytest.mark.slow
    def test_fig10_len4_maxmax_below_convex(self, market):
        result = fig10_len4_maxmax(market)
        assert result.stats.frac_below_or_on == 1.0
        assert result.stats.mean_rel_gap < 0.02


class TestRuntime:
    def test_maxmax_milliseconds_convex_slower(self):
        result = runtime_scaling(lengths=(3, 10), repeats=1)
        # paper §VII: MaxMax stays at ms level even for length 10
        assert result.maxmax_seconds[-1] < 0.05
        # the convex program is substantially slower at length 10
        assert result.convex_seconds[-1] > result.maxmax_seconds[-1]
        speedups = result.speedup()
        assert speedups[-1] > 1.0


class TestCalibration:
    def test_counts_near_paper(self):
        result = snapshot_calibration(include_len4=False)
        assert result.tokens == result.paper_tokens == 51
        assert result.pools == result.paper_pools == 208
        assert abs(result.profitable_loops_len3 - result.paper_loops_len3) <= 15
