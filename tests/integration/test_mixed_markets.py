"""End-to-end behaviour on mixed and evolving markets."""

from __future__ import annotations

import pytest

from repro.amm import Pool, PoolRegistry, WeightedPool
from repro.core import PriceMap, Token
from repro.data import MarketSnapshot
from repro.execution import ExecutionSimulator, plan_from_result
from repro.graph import build_token_graph, find_arbitrage_loops
from repro.simulation import LiquidityProvider, RetailTrader, SimulationEngine
from repro.strategies import ConvexOptimizationStrategy, MaxMaxStrategy

A, B, C, D = Token("A"), Token("B"), Token("C"), Token("D")


@pytest.fixture
def mixed_snapshot():
    """A market mixing constant-product and weighted pools."""
    registry = PoolRegistry()
    registry.add(Pool(A, B, 1000.0, 2040.0, pool_id="mx-ab"))
    registry.add(WeightedPool(B, C, 2000.0, 1000.0, weight0=0.6, weight1=0.4, pool_id="mx-bc"))
    registry.add(Pool(C, A, 1000.0, 1015.0, pool_id="mx-ca"))
    registry.add(Pool(A, D, 1000.0, 500.0, pool_id="mx-ad"))
    registry.add(WeightedPool(C, D, 1000.0, 495.0, weight0=0.5, weight1=0.5, pool_id="mx-cd"))
    prices = PriceMap({A: 2.0, B: 1.0, C: 2.1, D: 4.0})
    return MarketSnapshot(registry=registry, prices=prices, label="mixed")


class TestMixedDetection:
    def test_graph_includes_weighted_pools(self, mixed_snapshot):
        graph = build_token_graph(mixed_snapshot.registry)
        assert graph.number_of_edges() == 5
        assert graph.number_of_nodes() == 4

    def test_loops_found_and_evaluated(self, mixed_snapshot):
        graph = build_token_graph(mixed_snapshot.registry)
        loops = find_arbitrage_loops(graph, 3)
        strategy = MaxMaxStrategy()
        for loop in loops:
            result = strategy.evaluate(loop, mixed_snapshot.prices)
            assert result.monetized_profit >= 0.0

    def test_convex_on_mixed_loop(self, mixed_snapshot):
        graph = build_token_graph(mixed_snapshot.registry)
        loops = find_arbitrage_loops(graph, 3)
        mixed_loops = [
            loop
            for loop in loops
            if any(not p.is_constant_product for p in loop.pools)
        ]
        if not mixed_loops:
            pytest.skip("no profitable mixed loop at these reserves")
        convex = ConvexOptimizationStrategy(backend="slsqp")
        maxmax = MaxMaxStrategy()
        for loop in mixed_loops:
            cv = convex.evaluate(loop, mixed_snapshot.prices)
            mm = maxmax.evaluate(loop, mixed_snapshot.prices)
            assert cv.monetized_profit >= mm.monetized_profit - 1e-6

    def test_mixed_loop_executes(self, mixed_snapshot):
        graph = build_token_graph(mixed_snapshot.registry)
        loops = find_arbitrage_loops(graph, 3)
        strategy = MaxMaxStrategy()
        results = [(strategy.evaluate(l, mixed_snapshot.prices), l) for l in loops]
        profitable = [(r, l) for r, l in results if r.monetized_profit > 0]
        assert profitable
        best, _loop = max(profitable, key=lambda pair: pair[0].monetized_profit)
        simulator = ExecutionSimulator(registry=mixed_snapshot.registry)
        receipt = simulator.execute(plan_from_result(best, slippage_tolerance=1e-9))
        assert not receipt.reverted
        assert receipt.monetized(mixed_snapshot.prices) == pytest.approx(
            best.monetized_profit, rel=1e-6
        )


class TestMixedSerialization:
    def test_weighted_pools_roundtrip(self, mixed_snapshot):
        restored = MarketSnapshot.from_json(mixed_snapshot.to_json())
        assert restored.to_json() == mixed_snapshot.to_json()
        weighted = restored.registry["mx-bc"]
        assert not weighted.is_constant_product
        assert weighted.weight_of(B) == pytest.approx(0.6)
        # quotes agree with the original
        original = mixed_snapshot.registry["mx-bc"]
        assert weighted.quote_out(B, 10.0) == pytest.approx(
            original.quote_out(B, 10.0), rel=1e-12
        )


class TestEngineWithAllAgentTypes:
    def test_three_agent_simulation(self, mixed_snapshot):
        engine = SimulationEngine(
            mixed_snapshot,
            [
                RetailTrader(seed=3, trades_per_block=3),
                LiquidityProvider(seed=4, actions_per_block=1),
            ],
            price_seed=3,
            count_loops=True,
        )
        result = engine.run(5)
        assert len(result.metrics) == 5
        lp = result.agents[1]
        assert lp.mints + lp.burns > 0
        # the evolving market keeps valid reserves throughout
        for pool in result.market.registry:
            for token in pool.tokens:
                assert pool.reserve_of(token) > 0


class TestThreeFamilyBatching:
    """PR-10 acceptance: loops crossing all three pool families route
    through the batch chain kernel with zero forced scalar fallbacks,
    and shared-memory serving over such a market is bit-identical to
    the private-copy model."""

    @pytest.fixture
    def three_family_snapshot(self):
        from repro.amm.stableswap import StableSwapPool

        registry = PoolRegistry()
        # a triangle with one hop from each family ...
        registry.add(Pool(A, B, 1_000.0, 2_040.0, pool_id="3f-ab"))
        registry.add(
            WeightedPool(
                B, C, 2_000.0, 1_000.0, weight0=0.6, weight1=0.4,
                pool_id="3f-bc",
            )
        )
        registry.add(
            StableSwapPool(
                C, A, 1_000.0, 1_030.0, amplification=90.0, pool_id="3f-ca"
            )
        )
        # ... plus parallel edges so several loops share the compiled
        # group and every family pairing occurs in some loop
        registry.add(Pool(C, A, 990.0, 1_020.0, pool_id="3f-ca2"))
        registry.add(
            StableSwapPool(
                A, B, 1_500.0, 1_480.0, amplification=40.0, pool_id="3f-ab2"
            )
        )
        prices = PriceMap({A: 2.0, B: 1.0, C: 2.1})
        return MarketSnapshot(registry=registry, prices=prices, label="3fam")

    def test_mixed_loops_never_fall_back_to_scalar(self, three_family_snapshot):
        from repro.amm.families import FAMILY_CPMM, FAMILY_G3M, FAMILY_STABLESWAP
        from repro.market import BatchEvaluator, MarketArrays

        graph = build_token_graph(three_family_snapshot.registry)
        loops = find_arbitrage_loops(graph, 3)
        three_family = [
            loop
            for loop in loops
            if {type(p).__name__ for p in loop.pools}
            >= {"Pool", "WeightedPool", "StableSwapPool"}
        ]
        assert three_family, "fixture must yield a loop crossing all families"
        arrays = MarketArrays.from_registry(three_family_snapshot.registry)
        assert set(arrays.family) == {FAMILY_CPMM, FAMILY_G3M, FAMILY_STABLESWAP}
        evaluator = BatchEvaluator(loops, arrays=arrays, min_batch=1)
        # every loop compiles into a batch group — no foreign-pool fallback
        assert evaluator.fallback_positions == []
        results = evaluator.evaluate_many(MaxMaxStrategy(), three_family_snapshot.prices)
        assert len(results) == len(loops)
        # the acceptance criterion: zero loops took the scalar path
        assert evaluator.stats.scalar_loops == 0
        assert evaluator.stats.kernel_loops == len(loops)
        # and the kernel numbers match the scalar strategy path
        strategy = MaxMaxStrategy()
        for result, loop in zip(results, loops):
            ref = strategy.evaluate_cached(loop, three_family_snapshot.prices, None)
            assert result.monetized_profit == pytest.approx(
                ref.monetized_profit, rel=1e-9, abs=1e-9
            )

    def test_shared_serving_bit_identical_to_private(self, three_family_snapshot):
        import asyncio

        from repro.replay import generate_event_stream
        from repro.service import OpportunityService, log_source

        log = generate_event_stream(
            three_family_snapshot, n_blocks=6, events_per_block=5, seed=31
        )

        def run(shared: bool, backend: str):
            service = OpportunityService(
                three_family_snapshot, n_shards=2, backend=backend, shared=shared
            )
            try:
                return asyncio.run(service.run(log_source(log)))
            finally:
                service.close()

        def book(report):
            return [
                (o.loop_id, o.profit_usd, o.amount_in, o.block)
                for o in report.book.entries
            ]

        private = run(shared=False, backend="process")
        shared = run(shared=True, backend="process")
        assert book(shared) == book(private)
        assert shared.events_ingested == len(log)
        assert shared.events_dropped == 0
